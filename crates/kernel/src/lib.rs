#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-kernel` — compiled execution engine for fused schedules
//!
//! The reference path in `mdf-sim` is a tree-walking interpreter: every
//! statement instance re-traverses its `Expr` AST, every array access
//! re-derives a halo-adjusted 2-D index, and the thread-safe `parallel`
//! runner buffers writes into per-iteration overlays that are applied
//! after each barrier. That is the right substrate for *checking*
//! transformations; it is the wrong substrate for *running* them.
//!
//! This crate lowers a [`FusedSpec`] (program + retiming) once into a
//! flat, allocation-free kernel and executes the planned iteration space
//! directly:
//!
//! * [`lower`] — statement bodies compile to a register bytecode
//!   ([`lower::Instr`]): constants folded, every array reference resolved
//!   to a single precomputed *linear delta* from the iteration cursor in
//!   one dense buffer shared by all arrays (no per-cell halo math);
//! * [`memory`] — [`KernelMemory`], the dense buffer, laid out exactly
//!   like `mdf_sim::Memory` so fingerprints are directly comparable;
//! * [`exec`] — the step drivers: tiled row-DOALL and hyperplane
//!   wavefront, writing **in place** with no buffered-write overlay.
//!
//! ## In-place safety argument
//!
//! Writing in place during a parallel step is sound only when no two
//! iterations of the step touch one cell with at least one write. That is
//! precisely what `mdf-analyze`'s static race certificate proves — for
//! every iteration-space size, not just the one being run. The engine
//! therefore *consumes the certificate*: [`plan_mode`] runs
//! [`certify_doall`] and only a `Certified` verdict unlocks the loop-major
//! traversal and threaded in-place writes; anything else degrades to the
//! canonical sequential serialization (still compiled, still in place —
//! a single thread cannot race itself). Callers who want the buffered
//! interpreter path instead can keep using `mdf_sim::parallel`.
//!
//! A second, independent gate governs *bounds checks*: by default every
//! load and store asserts its flat index against the buffer length. A
//! kernel can instead be **armed** with a machine-checked
//! [`BytecodeCert`] from `mdf-analyze`'s bytecode verifier
//! ([`CompiledKernel::arm`]), which statically proves register
//! discipline, whole-iteration-space bounds, and per-step write
//! disjointness over the *lowered bytecode itself* — at which point the
//! drives for the certified mode take an assert-free path. No cert, no
//! unchecked execution; mutating the lowered loops disarms the kernel.
//!
//! The tiny `unsafe` surface (shared `&[Cell]`-style writes during a
//! certified step) lives in [`exec`] behind that gate; everything else in
//! the crate is `#![deny(unsafe_code)]`-clean.

#![warn(missing_docs)]

pub mod exec;
pub mod lower;
pub mod memory;

pub use exec::{CompiledKernel, ExecMode, TilePlan};
pub use lower::{CompiledLoop, CompiledStmt, Instr};
pub use memory::KernelMemory;
// Re-exported so consumers without an `mdf-analyze` dependency (the
// service plan cache) can store and revalidate bytecode certificates.
pub use mdf_analyze::bytecode::{BytecodeCert, VmImage, VmMode};

use mdf_analyze::{
    certify_doall, certify_doall_traced, certify_elision, certify_elision_traced, ParallelMode,
};
use mdf_core::FusionPlan;
use mdf_ir::retgen::FusedSpec;
use mdf_trace::Span;

/// Picks the execution mode for a plan by consulting the static race
/// certificate: certified plans run loop-major and (on multicore hosts)
/// with threaded in-place writes; uncertified plans fall back to the
/// canonical sequential serialization.
pub fn plan_mode(spec: &FusedSpec, plan: &FusionPlan) -> ExecMode {
    match plan {
        FusionPlan::FullParallel { .. } => {
            if certify_doall(spec, ParallelMode::Rows).is_certified() {
                ExecMode::RowsCertified
            } else {
                ExecMode::RowsSerial
            }
        }
        FusionPlan::Hyperplane { wavefront, .. } => {
            let s = wavefront.schedule;
            let certified = certify_doall(spec, ParallelMode::Hyperplanes(s)).is_certified();
            ExecMode::Wavefront {
                schedule: s,
                certified,
                // Barrier elision rides on top of the hyperplane license:
                // only a certified wavefront may also tile.
                elide: certified && certify_elision(spec, s).is_certified(),
            }
        }
    }
}

/// As [`plan_mode`], reporting the certificate consultation and the
/// decision onto `span`: one of `kernel.mode.rows-certified` /
/// `kernel.mode.rows-serial` / `kernel.mode.wavefront` /
/// `kernel.mode.wavefront-tiled`, plus a `kernel.fallback.row-race`,
/// `kernel.fallback.hyperplane-race`, or
/// `kernel.fallback.elision-blocked` counter when a failed certificate
/// caused a serial(ized)/untiled fallback — the "why is this not
/// parallel" answer, straight from the profile.
pub fn plan_mode_traced(spec: &FusedSpec, plan: &FusionPlan, span: &Span) -> ExecMode {
    let mode = match plan {
        FusionPlan::FullParallel { .. } => {
            if certify_doall_traced(spec, ParallelMode::Rows, span).is_certified() {
                ExecMode::RowsCertified
            } else {
                span.add("kernel.fallback.row-race", 1);
                ExecMode::RowsSerial
            }
        }
        FusionPlan::Hyperplane { wavefront, .. } => {
            let s = wavefront.schedule;
            let certified =
                certify_doall_traced(spec, ParallelMode::Hyperplanes(s), span).is_certified();
            let elide = if !certified {
                span.add("kernel.fallback.hyperplane-race", 1);
                false
            } else {
                let elide = certify_elision_traced(spec, s, span).is_certified();
                if !elide {
                    span.add("kernel.fallback.elision-blocked", 1);
                }
                elide
            };
            ExecMode::Wavefront {
                schedule: s,
                certified,
                elide,
            }
        }
    };
    match mode {
        ExecMode::RowsCertified => span.add("kernel.mode.rows-certified", 1),
        ExecMode::RowsSerial => span.add("kernel.mode.rows-serial", 1),
        ExecMode::Wavefront { elide: true, .. } => span.add("kernel.mode.wavefront-tiled", 1),
        ExecMode::Wavefront { .. } => span.add("kernel.mode.wavefront", 1),
    }
    mode
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_core::plan_fusion;
    use mdf_ir::extract::extract_mldg;
    use mdf_ir::samples::{figure2_program, relaxation_program};

    #[test]
    fn planner_plans_are_certified_by_construction() {
        let p = figure2_program();
        let plan = plan_fusion(&extract_mldg(&p).unwrap().graph).unwrap();
        let spec = FusedSpec::new(p, plan.retiming().offsets().to_vec());
        assert_eq!(plan_mode(&spec, &plan), ExecMode::RowsCertified);

        let p = relaxation_program();
        let plan = plan_fusion(&extract_mldg(&p).unwrap().graph).unwrap();
        let spec = FusedSpec::new(p, plan.retiming().offsets().to_vec());
        match plan_mode(&spec, &plan) {
            ExecMode::Wavefront { certified, .. } => assert!(certified),
            other => panic!("expected wavefront, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_retiming_demotes_to_serial() {
        // An unretimed Figure 2 claims-full-parallel plan must NOT get the
        // in-place parallel mode: the certificate rejects it.
        let p = figure2_program();
        let plan = plan_fusion(&extract_mldg(&p).unwrap().graph).unwrap();
        let spec = FusedSpec::unretimed(p);
        if plan.is_full_parallel() {
            assert_eq!(plan_mode(&spec, &plan), ExecMode::RowsSerial);
        }
    }

    #[test]
    fn traced_mode_choice_matches_untraced_and_records_cause() {
        use mdf_trace::{MemorySink, Tracer};
        use std::sync::Arc;

        let profile_of = |spec: &FusedSpec, plan: &mdf_core::FusionPlan| {
            let sink = Arc::new(MemorySink::new());
            let tracer = Tracer::new(sink.clone());
            let span = tracer.span("plan-mode");
            let mode = plan_mode_traced(spec, plan, &span);
            span.finish();
            assert_eq!(mode, plan_mode(spec, plan), "tracing must not perturb");
            (mode, sink.profile().unwrap())
        };

        // Certified rows: mode counter set, no fallback cause.
        let p = figure2_program();
        let plan = plan_fusion(&extract_mldg(&p).unwrap().graph).unwrap();
        let spec = FusedSpec::new(p, plan.retiming().offsets().to_vec());
        let (mode, profile) = profile_of(&spec, &plan);
        assert_eq!(mode, ExecMode::RowsCertified);
        assert_eq!(profile.counter_total("kernel.mode.rows-certified"), 1);
        assert_eq!(profile.counter_total("kernel.fallback.row-race"), 0);
        assert_eq!(profile.counter_total("analyze.certificates"), 1);

        // Failed certificate: serial fallback with its cause recorded.
        let p = figure2_program();
        let plan = plan_fusion(&extract_mldg(&p).unwrap().graph).unwrap();
        let spec = FusedSpec::unretimed(p);
        if plan.is_full_parallel() {
            let (mode, profile) = profile_of(&spec, &plan);
            assert_eq!(mode, ExecMode::RowsSerial);
            assert_eq!(profile.counter_total("kernel.mode.rows-serial"), 1);
            assert_eq!(profile.counter_total("kernel.fallback.row-race"), 1);
            assert_eq!(profile.counter_total("analyze.witnesses"), 1);
        }

        // Certified wavefront: relaxation's planned schedule also passes
        // the elision certificate, so the tiled mode is chosen.
        let p = relaxation_program();
        let plan = plan_fusion(&extract_mldg(&p).unwrap().graph).unwrap();
        let spec = FusedSpec::new(p, plan.retiming().offsets().to_vec());
        let (mode, profile) = profile_of(&spec, &plan);
        assert!(matches!(
            mode,
            ExecMode::Wavefront {
                certified: true,
                elide: true,
                ..
            }
        ));
        assert_eq!(profile.counter_total("kernel.mode.wavefront-tiled"), 1);
        assert_eq!(profile.counter_total("kernel.mode.wavefront"), 0);
        assert_eq!(profile.counter_total("kernel.fallback.hyperplane-race"), 0);
        assert_eq!(profile.counter_total("kernel.fallback.elision-blocked"), 0);
        assert_eq!(profile.counter_total("analyze.elision.certified"), 1);
    }
}
