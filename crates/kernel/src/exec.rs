//! Step drivers: running a compiled kernel over the planned iteration
//! space.
//!
//! Three modes, picked by [`crate::plan_mode`] from the plan and the
//! static race certificate:
//!
//! * [`ExecMode::RowsCertified`] — row-DOALL execution. Each fused row
//!   runs **loop-major**: every lowered loop sweeps its active column
//!   range as a tight cursor-increment loop (statement-major within the
//!   loop). This reordering of the canonical cell-major serialization is
//!   exactly what the row-DOALL certificate licenses: no dependence binds
//!   two distinct iterations of a row, and same-iteration statement order
//!   is preserved. Long rows additionally split into column tiles executed
//!   on worker threads, writing **in place** through [`SharedCells`].
//! * [`ExecMode::RowsSerial`] — the canonical cell-major serialization,
//!   sequential and in place (a single thread cannot race itself). The
//!   fallback when no certificate exists.
//! * [`ExecMode::Wavefront`] — hyperplane execution: cells grouped by
//!   `t = s · (fi, fj)`, groups ascending, one barrier per group; groups
//!   run threaded in place only when the hyperplane certificate holds.
//!   With the **elision certificate** additionally held (`elide`), the
//!   `(t, fi)` space is cut into rectangular tiles and executed as
//!   anti-diagonal tile *waves* ([`TilePlan`]): barriers survive only
//!   between waves, every in-wave front barrier is elided, and each tile
//!   sweeps its cells row-major — the order the certificate proves
//!   equivalent. Waves too small to amortize a dispatch run serially by
//!   a deterministic cost model ([`SERIAL_WAVE_CELLS`]).
//!
//! Counters ([`ExecStats`]) match the interpreter's accounting exactly:
//! one barrier per fused row / non-empty wavefront group, one statement
//! instance per executed assignment — so BENCH reports are directly
//! comparable across engines.

use std::collections::BTreeMap;

use mdf_analyze::bytecode::{
    self, BytecodeCert, VmImage, VmInstr, VmLoop, VmMode, VmRange, VmStmt,
};
use mdf_analyze::Diagnostic;
use mdf_graph::{BudgetMeter, IVec2, MdfError};
use mdf_ir::retgen::{FusedSpec, IRange};
use mdf_sim::{
    check_resume, deadline_expired, supervise_run, Checkpoint, ExecStats, RetryPolicy, RunOutcome,
    Snapshot, SupervisedOutcome,
};
use mdf_trace::Span;
use rayon::prelude::*;

use crate::lower::{eval_compiled, lower_loop, CompiledLoop, Instr, MAX_REGS};
use crate::memory::{KernelMemory, Layout};

impl Snapshot for KernelMemory {
    fn digest(&self) -> u64 {
        self.fingerprint()
    }
}

/// Minimum row length before a certified row is split into column tiles
/// for threading; below this the barrier and spawn overhead dominates.
const TILE_COLS: i64 = 256;

/// Minimum estimated cell count in a tile wave before its tiles are
/// dispatched to worker threads; below this the spawn overhead dominates
/// and the wave runs serially (`wavefront.serial_fronts`). Part of the
/// deterministic cost model: the decision depends only on the tile plan,
/// the wave index, and the thread count — never on timing.
const SERIAL_WAVE_CELLS: i64 = 2048;

/// How a compiled kernel traverses the fused iteration space. Produced by
/// [`crate::plan_mode`]; constructing a `RowsCertified`/certified
/// wavefront mode by hand asserts that the caller holds a race
/// certificate for the spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Row-DOALL, certificate held: loop-major rows, tiled + threaded.
    RowsCertified,
    /// No certificate: canonical cell-major serialization, sequential.
    RowsSerial,
    /// Hyperplane wavefront with schedule vector `s`.
    Wavefront {
        /// The schedule vector.
        schedule: IVec2,
        /// Whether the hyperplane race certificate holds (gates threading).
        certified: bool,
        /// Whether the barrier-elision certificate holds (gates the tiled
        /// wave executor; meaningful only when `certified`).
        elide: bool,
    },
}

/// The skewed tiling of an elision-certified wavefront: the `(t, fi)`
/// space — `t = s · (fi, fj)` the front index, `fi` the fused row — cut
/// into `n_tb × n_ib` rectangular tiles of `bt` fronts by `bi` rows.
/// Tiles execute as anti-diagonal waves `T + I = w` in ascending `w`,
/// with one barrier per wave: all `fronts() - waves()` remaining front
/// barriers are elided, which the elision certificate licenses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilePlan {
    /// The hyperplane schedule.
    pub schedule: IVec2,
    /// First front index (minimum of `s · (fi, fj)` over the space).
    pub t0: i64,
    /// Last front index.
    pub t1: i64,
    /// Fronts per tile (band height along `t`).
    pub bt: i64,
    /// Fused rows per tile (band width along `fi`).
    pub bi: i64,
    /// Number of front bands.
    pub n_tb: i64,
    /// Number of row bands.
    pub n_ib: i64,
}

impl TilePlan {
    /// Barrier-to-barrier steps: the anti-diagonals of the tile grid.
    pub fn waves(&self) -> u64 {
        (self.n_tb + self.n_ib - 1).max(0) as u64
    }

    /// Front indices the space spans — the barriers the *untiled* driver
    /// would place (one per front, counting empty ones on a box space).
    pub fn fronts(&self) -> u64 {
        (self.t1 - self.t0 + 1).max(0) as u64
    }

    /// Total tiles in the grid.
    pub fn tiles(&self) -> u64 {
        (self.n_tb * self.n_ib).max(0) as u64
    }

    /// Barriers elided relative to the untiled front-per-barrier drive.
    pub fn elided(&self) -> u64 {
        self.fronts().saturating_sub(self.waves())
    }

    /// The inclusive front-band index range of wave `w`'s tiles
    /// (`T + I == w` with both bands in grid range).
    fn wave_bands(&self, w: i64) -> (i64, i64) {
        ((w - (self.n_ib - 1)).max(0), w.min(self.n_tb - 1))
    }

    /// Whether wave `w` runs serially under `threads` workers: single
    /// worker, a single tile, or too few estimated cells
    /// ([`SERIAL_WAVE_CELLS`]) to amortize the dispatch.
    pub fn wave_serial(&self, w: i64, threads: usize) -> bool {
        let (lo, hi) = self.wave_bands(w);
        let tiles = hi - lo + 1;
        let est_cells = tiles * self.bt * self.bi / self.schedule.y.max(1);
        threads <= 1 || tiles < 2 || est_cells < SERIAL_WAVE_CELLS
    }

    /// Serially-executed waves under `threads` workers, recomputed from
    /// the cost model for the `wavefront.serial_fronts` counter.
    pub fn serial_waves(&self, threads: usize) -> u64 {
        (0..self.waves() as i64)
            .filter(|&w| self.wave_serial(w, threads))
            .count() as u64
    }
}

/// How a metered drive ended: all barriers, or stopped at a barrier top
/// by a deadline report with the work completed so far intact.
enum DriveEnd {
    Complete(ExecStats),
    Stopped {
        completed: u64,
        stats: ExecStats,
        cause: MdfError,
    },
}

/// A shared view of the kernel buffer for compiled steps. The *only*
/// `unsafe` in the crate: distinct iterations of a certified parallel
/// step touch disjoint cells (that is what the race certificate proves),
/// so concurrent in-place access through a raw pointer is data-race-free.
///
/// `CHECKED` selects the bounds policy per access. The checked view
/// asserts every index against the buffer length — the historical
/// behaviour, and the fallback whenever no [`BytecodeCert`] is armed. The
/// unchecked view demotes the assert to a `debug_assert`: release builds
/// pay nothing, because the verifier has already proved every load and
/// store of the entire retimed iteration space in-bounds
/// ([`CompiledKernel::arm`]).
struct SharedCells<const CHECKED: bool> {
    ptr: *mut i64,
    len: usize,
}

unsafe impl<const CHECKED: bool> Send for SharedCells<CHECKED> {}
unsafe impl<const CHECKED: bool> Sync for SharedCells<CHECKED> {}

impl<const CHECKED: bool> SharedCells<CHECKED> {
    fn new(data: &mut [i64]) -> SharedCells<CHECKED> {
        SharedCells {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    #[inline]
    fn slot(&self, idx: isize) -> usize {
        // A negative isize wraps to a huge usize, so one compare covers
        // both underflow and overflow.
        let u = idx as usize;
        if CHECKED {
            assert!(u < self.len, "kernel access out of bounds: {idx}");
        } else {
            debug_assert!(u < self.len, "kernel access out of bounds: {idx}");
        }
        u
    }

    #[inline]
    fn read(&self, idx: isize) -> i64 {
        let u = self.slot(idx);
        unsafe { *self.ptr.add(u) }
    }

    #[inline]
    fn write(&self, idx: isize, v: i64) {
        let u = self.slot(idx);
        unsafe { *self.ptr.add(u) = v }
    }
}

/// A fused spec lowered for fixed bounds `(n, m)`: bytecode bodies, active
/// ranges, and the flat-memory layout, ready to run in any [`ExecMode`].
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    layout: Layout,
    n: i64,
    m: i64,
    outer: IRange,
    inner: IRange,
    /// Lowered loops **in fused body order** (stable topological order of
    /// the `(0,0)`-retimed dependence subgraph), not textual order.
    loops: Vec<CompiledLoop>,
    /// The armed bytecode certificate, if any, keyed by the mode it
    /// licenses. `None` until [`CompiledKernel::arm`] (or
    /// [`CompiledKernel::arm_with_cert`]) succeeds; any mutation of the
    /// lowered loops disarms it. The unchecked execution path is selected
    /// *only* when the drive's mode equals the armed mode.
    cert: Option<(ExecMode, BytecodeCert)>,
}

impl CompiledKernel {
    /// Lowers `spec` for bounds `(n, m)`. Fails typed on non-executable
    /// specs (a `(0,0)`-dependence cycle) or bodies nesting deeper than
    /// the register file.
    pub fn compile(spec: &FusedSpec, n: i64, m: i64) -> Result<CompiledKernel, MdfError> {
        let body = spec.body_order().ok_or_else(|| {
            MdfError::invalid(
                "fused body has a (0,0)-dependence cycle: the program is not executable",
            )
        })?;
        let layout = Layout::for_program(&spec.program, n, m);
        let loops = body
            .iter()
            .map(|&li| {
                lower_loop(
                    &layout,
                    &spec.program.loops[li].stmts,
                    spec.offsets[li],
                    n,
                    m,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledKernel {
            layout,
            n,
            m,
            outer: spec.outer_range(n),
            inner: spec.inner_range(m),
            loops,
            cert: None,
        })
    }

    /// As [`CompiledKernel::compile`], reporting lowering shape onto
    /// `span`: `kernel.loops` (lowered loops) and `kernel.instrs` (total
    /// bytecode instructions across all statement bodies).
    pub fn compile_traced(
        spec: &FusedSpec,
        n: i64,
        m: i64,
        span: &Span,
    ) -> Result<CompiledKernel, MdfError> {
        let k = Self::compile(spec, n, m)?;
        if span.is_enabled() {
            span.add("kernel.loops", k.loops.len() as u64);
            let instrs: u64 = k
                .loops
                .iter()
                .flat_map(|cl| cl.stmts.iter())
                .map(|s| s.instrs.len() as u64)
                .sum();
            span.add("kernel.instrs", instrs);
        }
        Ok(k)
    }

    /// The memory layout the kernel runs over.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The bounds the kernel was compiled for.
    pub fn bounds(&self) -> (i64, i64) {
        (self.n, self.m)
    }

    /// Projects the lowered kernel into the static verifier's machine
    /// model for `mode` — everything that determines memory behaviour
    /// (layout extents, swept ranges, retiming offsets, access deltas,
    /// instruction shape) and nothing that does not (constant values,
    /// operator identities). An uncertified wavefront executes its groups
    /// sequentially, so it is verified as serial. An elision-licensed
    /// wavefront maps to the tiled machine mode exactly when
    /// [`CompiledKernel::tile_plan`] would drive it tiled — the cert mode
    /// and the executed path are derived from the same predicate, so a
    /// certificate can never license one and run the other.
    pub fn vm_image(&self, mode: ExecMode) -> VmImage {
        let vm_mode = match mode {
            ExecMode::RowsCertified => VmMode::Rows,
            ExecMode::RowsSerial => VmMode::Serial,
            ExecMode::Wavefront {
                schedule,
                certified: true,
                ..
            } => {
                if self.tile_plan(mode).is_some() {
                    VmMode::WavefrontTiled {
                        schedule: (schedule.x, schedule.y),
                    }
                } else {
                    VmMode::Wavefront {
                        schedule: (schedule.x, schedule.y),
                    }
                }
            }
            ExecMode::Wavefront {
                certified: false, ..
            } => VmMode::Serial,
        };
        VmImage {
            arrays: self.layout.arrays,
            halo: self.layout.halo,
            rows: self.layout.rows,
            cols: self.layout.cols,
            n: self.n,
            m: self.m,
            outer: VmRange {
                lo: self.outer.lo,
                hi: self.outer.hi,
            },
            inner: VmRange {
                lo: self.inner.lo,
                hi: self.inner.hi,
            },
            mode: vm_mode,
            loops: self
                .loops
                .iter()
                .map(|cl| VmLoop {
                    offset: (cl.offset.x, cl.offset.y),
                    rows: VmRange {
                        lo: cl.rows.lo,
                        hi: cl.rows.hi,
                    },
                    cols: VmRange {
                        lo: cl.cols.lo,
                        hi: cl.cols.hi,
                    },
                    stmts: cl
                        .stmts
                        .iter()
                        .map(|s| VmStmt {
                            store_delta: s.store_delta,
                            regs: s.regs,
                            instrs: s
                                .instrs
                                .iter()
                                .map(|ins| match *ins {
                                    Instr::Const { dst, .. } => VmInstr::Const { dst },
                                    Instr::Load { dst, delta } => VmInstr::Load { dst, delta },
                                    Instr::Neg { dst } => VmInstr::Neg { dst },
                                    Instr::Bin { dst, .. } => VmInstr::Bin { dst },
                                })
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// The skewed tile plan `mode` drives, or `None` when the mode does
    /// not tile: it must be a certified wavefront with the elision
    /// license, the schedule must order rows (`s.y >= 1`), and the
    /// iteration space must be non-empty. Tile sizes are derived
    /// deterministically from the space's shape alone, so the same
    /// kernel + mode always produces the same plan — the property that
    /// keeps barrier indices stable across checkpoint/resume.
    pub fn tile_plan(&self, mode: ExecMode) -> Option<TilePlan> {
        let ExecMode::Wavefront {
            schedule: s,
            certified: true,
            elide: true,
        } = mode
        else {
            return None;
        };
        if s.y < 1 || self.outer.is_empty() || self.inner.is_empty() {
            return None;
        }
        // Front range via corner evaluation: t is linear in (fi, fj), so
        // its extrema over the box sit at the corners.
        let corners = [
            s.x * self.outer.lo + s.y * self.inner.lo,
            s.x * self.outer.lo + s.y * self.inner.hi,
            s.x * self.outer.hi + s.y * self.inner.lo,
            s.x * self.outer.hi + s.y * self.inner.hi,
        ];
        #[allow(clippy::expect_used)]
        let t0 = *corners.iter().min().expect("four corners");
        #[allow(clippy::expect_used)]
        let t1 = *corners.iter().max().expect("four corners");
        let fronts = t1 - t0 + 1;
        let rows = self.outer.len();
        // Coarse bands: wide enough to amortize per-wave dispatch, fine
        // enough to expose cross-tile parallelism on big spaces.
        let bi = (rows / 16).clamp(4, 64);
        let bt = (fronts / 8).clamp(16, 256);
        Some(TilePlan {
            schedule: s,
            t0,
            t1,
            bt,
            bi,
            n_tb: (fronts + bt - 1) / bt,
            n_ib: (rows + bi - 1) / bi,
        })
    }

    /// Runs the static bytecode verifier over this kernel for `mode` and,
    /// on success, arms the unchecked execution path for that mode. On
    /// rejection the kernel stays (or reverts to) checked and the `MDF2xx`
    /// diagnostics are returned.
    pub fn arm(&mut self, mode: ExecMode) -> Result<BytecodeCert, Vec<Diagnostic>> {
        self.cert = None;
        let cert = bytecode::verify(&self.vm_image(mode))?;
        self.cert = Some((mode, cert));
        Ok(cert)
    }

    /// Arms a previously issued certificate (e.g. from the service plan
    /// cache) after revalidating it against this kernel's freshly lowered
    /// image — checksum, mode, and bounds must all match. Returns whether
    /// the kernel is now armed; on `false` it stays checked.
    pub fn arm_with_cert(&mut self, mode: ExecMode, cert: BytecodeCert) -> bool {
        self.cert = None;
        if bytecode::revalidate(&cert, &self.vm_image(mode)) {
            self.cert = Some((mode, cert));
            true
        } else {
            false
        }
    }

    /// The armed certificate for `mode`, if any.
    pub fn cert(&self, mode: ExecMode) -> Option<&BytecodeCert> {
        match &self.cert {
            Some((m, c)) if *m == mode => Some(c),
            _ => None,
        }
    }

    /// Whether a drive in `mode` would take the unchecked path.
    pub fn is_armed(&self, mode: ExecMode) -> bool {
        self.cert(mode).is_some()
    }

    /// Drops any armed certificate, reverting every path to checked.
    pub fn disarm(&mut self) {
        self.cert = None;
    }

    /// Mutable access to the lowered loops, for the fuzzer's
    /// verifier-vs-execution oracle. Any access **disarms** the kernel:
    /// a mutated stream can never ride an earlier certificate, so the
    /// "unchecked only under a valid cert" invariant holds by
    /// construction.
    #[doc(hidden)]
    pub fn loops_mut(&mut self) -> &mut Vec<CompiledLoop> {
        self.cert = None;
        &mut self.loops
    }

    /// Runs the kernel on fresh memory with the host's thread count.
    pub fn run(&self, mode: ExecMode) -> (KernelMemory, ExecStats) {
        self.run_with_threads(mode, rayon::current_num_threads())
    }

    /// [`CompiledKernel::run`] with an explicit worker count driving the
    /// step policy (whether certified steps take the tiled [`SharedCells`]
    /// path); actual parallelism is still the runtime's to grant. Exposed
    /// so tests and benches can force either path deterministically.
    pub fn run_with_threads(&self, mode: ExecMode, threads: usize) -> (KernelMemory, ExecStats) {
        let mut mem = KernelMemory::new(self.layout);
        // An unlimited meter cannot trip, so the budgeted driver is total.
        #[allow(clippy::expect_used)]
        let stats = self
            .drive(mode, &mut mem, threads, None)
            .expect("unbudgeted kernel run cannot trip a budget");
        (mem, stats)
    }

    /// Runs under a resource budget: cells charged before allocation, the
    /// deadline re-checked and statement instances charged at every
    /// barrier (fused row or wavefront group), mirroring the budgeted
    /// interpreter drivers in `mdf-sim`. Deadline expiry at a barrier top
    /// does not discard completed work: it returns
    /// [`RunOutcome::Partial`] with the live image and a resumable
    /// [`Checkpoint`]; every other budget trip stays a typed error.
    pub fn run_budgeted(
        &self,
        mode: ExecMode,
        meter: &mut BudgetMeter,
    ) -> Result<RunOutcome<KernelMemory>, MdfError> {
        meter.chaos_site("kernel.alloc")?;
        meter.charge_cells(self.layout.cells() as u64)?;
        let mem = KernelMemory::new(self.layout);
        self.finish_budgeted(mode, mem, meter, 0, ExecStats::default())
    }

    /// Continues a budgeted run from a [`Checkpoint`] produced by an
    /// earlier partial outcome, against the memory image that outcome
    /// carried (digest-verified). Memory cells are *not* re-charged: the
    /// image is presented, not allocated.
    pub fn resume_budgeted(
        &self,
        mode: ExecMode,
        mem: KernelMemory,
        checkpoint: Checkpoint,
        meter: &mut BudgetMeter,
    ) -> Result<RunOutcome<KernelMemory>, MdfError> {
        check_resume(&mem, &checkpoint)?;
        self.finish_budgeted(
            mode,
            mem,
            meter,
            checkpoint.completed_barriers,
            checkpoint.stats,
        )
    }

    fn finish_budgeted(
        &self,
        mode: ExecMode,
        mut mem: KernelMemory,
        meter: &mut BudgetMeter,
        start: u64,
        stats0: ExecStats,
    ) -> Result<RunOutcome<KernelMemory>, MdfError> {
        let threads = rayon::current_num_threads();
        match self.drive_from(mode, &mut mem, threads, Some(meter), start, stats0)? {
            DriveEnd::Complete(stats) => Ok(RunOutcome::Complete { mem, stats }),
            DriveEnd::Stopped {
                completed,
                stats,
                cause,
            } => Ok(RunOutcome::partial(mem, completed, stats, cause)),
        }
    }

    /// The number of barriers `mode` executes over this kernel's iteration
    /// space: fused rows for the row modes, non-empty hyperplane groups
    /// for the untiled wavefront, tile waves for the tiled one. The unit
    /// of checkpointing and resumption, and the count [`ExecStats`]
    /// reports — post-elision syncs, never the pre-elision front count.
    pub fn barrier_count(&self, mode: ExecMode) -> u64 {
        match mode {
            ExecMode::RowsCertified | ExecMode::RowsSerial => self.outer.len().max(0) as u64,
            ExecMode::Wavefront { schedule, .. } => match self.tile_plan(mode) {
                Some(tp) => tp.waves(),
                None => self.wavefront_groups(schedule).len() as u64,
            },
        }
    }

    /// Runs the kernel under the supervising executor: one chunk per
    /// barrier, a snapshot checkpoint after each, recoverable failures
    /// (caught worker panics, deadline reports) restored and retried per
    /// `policy` with multi-thread → serial degradation. A completed
    /// supervised run is bit-identical to an uninterrupted one.
    pub fn run_supervised(
        &self,
        mode: ExecMode,
        threads: usize,
        policy: &RetryPolicy,
        meter: &mut BudgetMeter,
    ) -> Result<SupervisedOutcome<KernelMemory>, MdfError> {
        self.supervise(mode, threads, policy, meter, None)
    }

    /// As [`CompiledKernel::run_supervised`], continuing from a prior
    /// checkpoint (digest-verified) instead of fresh memory.
    pub fn resume_supervised(
        &self,
        mode: ExecMode,
        threads: usize,
        policy: &RetryPolicy,
        meter: &mut BudgetMeter,
        mem: KernelMemory,
        checkpoint: Checkpoint,
    ) -> Result<SupervisedOutcome<KernelMemory>, MdfError> {
        self.supervise(mode, threads, policy, meter, Some((mem, checkpoint)))
    }

    fn supervise(
        &self,
        mode: ExecMode,
        threads: usize,
        policy: &RetryPolicy,
        meter: &mut BudgetMeter,
        resume: Option<(KernelMemory, Checkpoint)>,
    ) -> Result<SupervisedOutcome<KernelMemory>, MdfError> {
        let tp = self.tile_plan(mode);
        let groups = match mode {
            ExecMode::Wavefront { schedule, .. } if tp.is_none() => self.wavefront_groups(schedule),
            _ => Vec::new(),
        };
        let total = match mode {
            ExecMode::RowsCertified | ExecMode::RowsSerial => self.outer.len().max(0) as u64,
            ExecMode::Wavefront { .. } => tp.map_or(groups.len() as u64, |tp| tp.waves()),
        };
        supervise_run(
            total,
            threads,
            policy,
            meter,
            resume,
            |meter| {
                meter.chaos_site("kernel.alloc")?;
                meter.charge_cells(self.layout.cells() as u64)?;
                Ok(KernelMemory::new(self.layout))
            },
            |mem, barrier, threads_now, meter| {
                meter.check_deadline()?;
                meter.chaos_site("kernel.barrier")?;
                let unchecked = self.is_armed(mode);
                let instances = match mode {
                    ExecMode::RowsCertified => self.row_loop_major(
                        mem.data_mut(),
                        self.outer.lo + barrier as i64,
                        threads_now,
                        unchecked,
                    ),
                    ExecMode::RowsSerial => self.row_cell_major(
                        mem.data_mut(),
                        self.outer.lo + barrier as i64,
                        unchecked,
                    ),
                    ExecMode::Wavefront { certified, .. } => match &tp {
                        Some(tp) => self.tile_wave(
                            mem.data_mut(),
                            tp,
                            barrier as i64,
                            threads_now,
                            unchecked,
                        ),
                        None => self.wavefront_group(
                            mem.data_mut(),
                            &groups[barrier as usize],
                            certified,
                            threads_now,
                            unchecked,
                        ),
                    },
                };
                // Fires *after* the chunk's writes — only a panic is sound
                // here (the supervisor restores the snapshot wholesale).
                meter.chaos_site("kernel.chunk.mid")?;
                meter.charge_iterations(instances)?;
                Ok(instances)
            },
        )
    }

    /// As [`CompiledKernel::run`], reporting execution counters onto `span`
    /// (see [`CompiledKernel::run_with_threads_traced`]).
    pub fn run_traced(&self, mode: ExecMode, span: &Span) -> (KernelMemory, ExecStats) {
        self.run_with_threads_traced(mode, rayon::current_num_threads(), span)
    }

    /// As [`CompiledKernel::run_with_threads`], reporting execution
    /// counters onto `span`: `kernel.barriers`, `kernel.instances`, plus
    /// `kernel.rows` / `kernel.groups` for the mode taken and
    /// `kernel.tiles` when the tiled threaded path is active. Counters are
    /// derived after the run from [`ExecStats`] and the kernel's shape —
    /// nothing is counted inside the hot loops, so the run itself is
    /// bit-identical to the untraced one.
    pub fn run_with_threads_traced(
        &self,
        mode: ExecMode,
        threads: usize,
        span: &Span,
    ) -> (KernelMemory, ExecStats) {
        let out = self.run_with_threads(mode, threads);
        self.report_exec(mode, threads, &out.1, span);
        out
    }

    /// As [`CompiledKernel::run_budgeted`], reporting the execution
    /// counters accumulated so far (final on complete runs) onto `span`
    /// (see [`CompiledKernel::run_with_threads_traced`]).
    pub fn run_budgeted_traced(
        &self,
        mode: ExecMode,
        meter: &mut BudgetMeter,
        span: &Span,
    ) -> Result<RunOutcome<KernelMemory>, MdfError> {
        let out = self.run_budgeted(mode, meter)?;
        self.report_exec(mode, rayon::current_num_threads(), &out.stats(), span);
        Ok(out)
    }

    /// Post-run counter reporting, shared by the traced entry points.
    /// `stats.barriers` equals rows executed (row modes) or non-empty
    /// wavefront groups (wavefront mode), so the mode-specific counters
    /// are exact without re-walking the iteration space.
    fn report_exec(&self, mode: ExecMode, threads: usize, stats: &ExecStats, span: &Span) {
        if !span.is_enabled() {
            return;
        }
        span.add("kernel.barriers", stats.barriers);
        span.add("kernel.instances", stats.stmt_instances);
        match mode {
            ExecMode::RowsCertified => {
                span.add("kernel.rows", stats.barriers);
                if self.rows_tiled(threads) {
                    span.add(
                        "kernel.tiles",
                        stats.barriers * self.column_tiles().len() as u64,
                    );
                }
            }
            ExecMode::RowsSerial => span.add("kernel.rows", stats.barriers),
            ExecMode::Wavefront { .. } => {
                span.add("kernel.groups", stats.barriers);
                if let Some(tp) = self.tile_plan(mode) {
                    // Derived post-run from the deterministic plan + cost
                    // model, never counted inside the hot loops.
                    span.add("wavefront.tiles", tp.tiles());
                    span.add("wavefront.elided_barriers", tp.elided());
                    span.add("wavefront.serial_fronts", tp.serial_waves(threads));
                }
            }
        }
    }

    fn drive(
        &self,
        mode: ExecMode,
        mem: &mut KernelMemory,
        threads: usize,
        meter: Option<&mut BudgetMeter>,
    ) -> Result<ExecStats, MdfError> {
        match self.drive_from(mode, mem, threads, meter, 0, ExecStats::default())? {
            DriveEnd::Complete(stats) => Ok(stats),
            // Unreachable without a meter; with one, `run_budgeted` calls
            // `drive_from` directly and keeps the partial work instead.
            DriveEnd::Stopped { cause, .. } => Err(cause),
        }
    }

    /// The barrier-granular driver: executes barriers `start..` of `mode`,
    /// accumulating onto `stats0`. A deadline report (real or injected) at
    /// a barrier *top* — where memory is clean — stops the drive with the
    /// completed count instead of erroring, so callers can hand back a
    /// resumable partial result. Any other budget trip propagates.
    fn drive_from(
        &self,
        mode: ExecMode,
        mem: &mut KernelMemory,
        threads: usize,
        mut meter: Option<&mut BudgetMeter>,
        start: u64,
        stats0: ExecStats,
    ) -> Result<DriveEnd, MdfError> {
        fn gate(meter: &mut BudgetMeter) -> Result<(), MdfError> {
            meter.check_deadline()?;
            meter.chaos_site("kernel.barrier")
        }
        let mut stats = stats0;
        let mut completed = start;
        let unchecked = self.is_armed(mode);
        match mode {
            ExecMode::RowsCertified | ExecMode::RowsSerial => {
                for (idx, fi) in (self.outer.lo..=self.outer.hi).enumerate() {
                    let idx = idx as u64;
                    if idx < start {
                        continue;
                    }
                    if let Some(meter) = meter.as_deref_mut() {
                        if let Err(e) = gate(meter) {
                            if deadline_expired(&e) {
                                return Ok(DriveEnd::Stopped {
                                    completed,
                                    stats,
                                    cause: e,
                                });
                            }
                            return Err(e);
                        }
                    }
                    let instances = if mode == ExecMode::RowsCertified {
                        self.row_loop_major(mem.data_mut(), fi, threads, unchecked)
                    } else {
                        self.row_cell_major(mem.data_mut(), fi, unchecked)
                    };
                    stats.stmt_instances += instances;
                    stats.barriers += 1;
                    completed = idx + 1;
                    if let Some(meter) = meter.as_deref_mut() {
                        meter.chaos_site("kernel.chunk.mid")?;
                        meter.charge_iterations(instances)?;
                    }
                }
            }
            ExecMode::Wavefront {
                schedule,
                certified,
                ..
            } => {
                if let Some(tp) = self.tile_plan(mode) {
                    // Tiled drive: one barrier per anti-diagonal tile
                    // wave; the per-front barriers inside a wave are
                    // elided (licensed by the elision certificate). No
                    // group materialization — tiles sweep their cells
                    // directly from the plan's interval arithmetic.
                    for w in 0..tp.waves() as i64 {
                        let idx = w as u64;
                        if idx < start {
                            continue;
                        }
                        if let Some(meter) = meter.as_deref_mut() {
                            if let Err(e) = gate(meter) {
                                if deadline_expired(&e) {
                                    return Ok(DriveEnd::Stopped {
                                        completed,
                                        stats,
                                        cause: e,
                                    });
                                }
                                return Err(e);
                            }
                        }
                        let instances = self.tile_wave(mem.data_mut(), &tp, w, threads, unchecked);
                        stats.stmt_instances += instances;
                        stats.barriers += 1;
                        completed = idx + 1;
                        if let Some(meter) = meter.as_deref_mut() {
                            meter.chaos_site("kernel.chunk.mid")?;
                            meter.charge_iterations(instances)?;
                        }
                    }
                    return Ok(DriveEnd::Complete(stats));
                }
                for (idx, group) in self.wavefront_groups(schedule).into_iter().enumerate() {
                    let idx = idx as u64;
                    if idx < start {
                        continue;
                    }
                    if let Some(meter) = meter.as_deref_mut() {
                        if let Err(e) = gate(meter) {
                            if deadline_expired(&e) {
                                return Ok(DriveEnd::Stopped {
                                    completed,
                                    stats,
                                    cause: e,
                                });
                            }
                            return Err(e);
                        }
                    }
                    let instances =
                        self.wavefront_group(mem.data_mut(), &group, certified, threads, unchecked);
                    stats.stmt_instances += instances;
                    stats.barriers += 1;
                    completed = idx + 1;
                    if let Some(meter) = meter.as_deref_mut() {
                        meter.chaos_site("kernel.chunk.mid")?;
                        meter.charge_iterations(instances)?;
                    }
                }
            }
        }
        Ok(DriveEnd::Complete(stats))
    }

    /// Whether certified rows take the tiled threaded path under `threads`
    /// workers. Shared between execution and the `kernel.tiles` counter so
    /// the accounting can never drift from what actually ran.
    fn rows_tiled(&self, threads: usize) -> bool {
        threads > 1 && self.inner.len() >= 2 * TILE_COLS
    }

    /// The column tiles a certified threaded row splits into:
    /// [`TILE_COLS`]-wide chunks of the fused inner range, last one
    /// ragged. Shared between execution and the `kernel.tiles` counter.
    fn column_tiles(&self) -> Vec<(i64, i64)> {
        if self.inner.is_empty() {
            return Vec::new();
        }
        (self.inner.lo..=self.inner.hi)
            .step_by(TILE_COLS as usize)
            .map(|lo| (lo, (lo + TILE_COLS - 1).min(self.inner.hi)))
            .collect()
    }

    /// One certified row, loop-major (see [`Self::row_body`]). `unchecked`
    /// selects the monomorphized body without per-access asserts; callers
    /// derive it from [`Self::is_armed`], never directly.
    fn row_loop_major(&self, data: &mut [i64], fi: i64, threads: usize, unchecked: bool) -> u64 {
        if unchecked {
            self.row_body::<false>(data, fi, threads)
        } else {
            self.row_body::<true>(data, fi, threads)
        }
    }

    /// One certified row, loop-major: each active loop's statements sweep
    /// the loop's column range with a cursor that advances by one cell per
    /// step. Long rows split into column tiles run through the shared
    /// in-place view; each tile replays the full loop-major body
    /// restricted to its columns, which the row certificate makes
    /// equivalent (no dependence crosses iterations within the row).
    fn row_body<const CHECKED: bool>(&self, data: &mut [i64], fi: i64, threads: usize) -> u64 {
        let active = |cl: &CompiledLoop| cl.rows.contains(fi) && !cl.cols.is_empty();
        let instances: u64 = self
            .loops
            .iter()
            .filter(|cl| active(cl))
            .map(|cl| cl.stmts.len() as u64 * cl.cols.len() as u64)
            .sum();
        let cells = SharedCells::<CHECKED>::new(data);
        if self.rows_tiled(threads) {
            self.column_tiles()
                .into_par_iter()
                .for_each(|(tile_lo, tile_hi)| {
                    let mut regs = [0i64; MAX_REGS];
                    for cl in &self.loops {
                        if !active(cl) {
                            continue;
                        }
                        let lo = tile_lo.max(cl.cols.lo);
                        let hi = tile_hi.min(cl.cols.hi);
                        if lo > hi {
                            continue;
                        }
                        let base = self.layout.cursor(fi + cl.offset.x, lo + cl.offset.y) as isize;
                        for s in &cl.stmts {
                            for cur in base..base + (hi - lo + 1) as isize {
                                let v =
                                    eval_compiled(&s.instrs, &mut regs, |d| cells.read(cur + d));
                                cells.write(cur + s.store_delta, v);
                            }
                        }
                    }
                });
        } else {
            let mut regs = [0i64; MAX_REGS];
            for cl in &self.loops {
                if !active(cl) {
                    continue;
                }
                let base = self
                    .layout
                    .cursor(fi + cl.offset.x, cl.cols.lo + cl.offset.y)
                    as isize;
                for s in &cl.stmts {
                    for cur in base..base + cl.cols.len() as isize {
                        let v = eval_compiled(&s.instrs, &mut regs, |d| cells.read(cur + d));
                        cells.write(cur + s.store_delta, v);
                    }
                }
            }
        }
        instances
    }

    /// One uncertified row: the canonical cell-major serialization, cell
    /// by cell with loops in body order — bit-identical to the
    /// interpreter's `run_fused` traversal, just through compiled bodies.
    fn row_cell_major(&self, data: &mut [i64], fi: i64, unchecked: bool) -> u64 {
        let mut regs = [0i64; MAX_REGS];
        let mut instances = 0u64;
        if unchecked {
            let cells = SharedCells::<false>::new(data);
            for fj in self.inner.lo..=self.inner.hi {
                instances += self.exec_cell(&cells, &mut regs, fi, fj);
            }
        } else {
            let cells = SharedCells::<true>::new(data);
            for fj in self.inner.lo..=self.inner.hi {
                instances += self.exec_cell(&cells, &mut regs, fi, fj);
            }
        }
        instances
    }

    /// Executes every active loop body at one fused cell, in place. The
    /// caller holds the only live view of the buffer, so the sequential
    /// use of the shared view is plain single-threaded mutation.
    #[inline]
    fn exec_cell<const CHECKED: bool>(
        &self,
        cells: &SharedCells<CHECKED>,
        regs: &mut [i64; MAX_REGS],
        fi: i64,
        fj: i64,
    ) -> u64 {
        let mut instances = 0u64;
        for cl in &self.loops {
            if !cl.rows.contains(fi) || !cl.cols.contains(fj) {
                continue;
            }
            let cur = self.layout.cursor(fi + cl.offset.x, fj + cl.offset.y) as isize;
            for s in &cl.stmts {
                let v = eval_compiled(&s.instrs, regs, |d| cells.read(cur + d));
                cells.write(cur + s.store_delta, v);
                instances += 1;
            }
        }
        instances
    }

    /// The wavefront groups of the compiled iteration space: active cells
    /// bucketed by `s · (fi, fj)`, ascending.
    fn wavefront_groups(&self, s: IVec2) -> Vec<Vec<(i64, i64)>> {
        let mut buckets: BTreeMap<i64, Vec<(i64, i64)>> = BTreeMap::new();
        for fi in self.outer.lo..=self.outer.hi {
            for fj in self.inner.lo..=self.inner.hi {
                if self
                    .loops
                    .iter()
                    .any(|cl| cl.rows.contains(fi) && cl.cols.contains(fj))
                {
                    buckets
                        .entry(s.x * fi + s.y * fj)
                        .or_default()
                        .push((fi, fj));
                }
            }
        }
        buckets.into_values().collect()
    }

    /// One wavefront group: all cells of one hyperplane. Threaded in place
    /// only under the hyperplane certificate; otherwise sequential in
    /// group order (the interpreter's serialization). `unchecked` selects
    /// the assert-free body, derived from [`Self::is_armed`].
    fn wavefront_group(
        &self,
        data: &mut [i64],
        group: &[(i64, i64)],
        certified: bool,
        threads: usize,
        unchecked: bool,
    ) -> u64 {
        if unchecked {
            self.wavefront_body::<false>(data, group, certified, threads)
        } else {
            self.wavefront_body::<true>(data, group, certified, threads)
        }
    }

    fn wavefront_body<const CHECKED: bool>(
        &self,
        data: &mut [i64],
        group: &[(i64, i64)],
        certified: bool,
        threads: usize,
    ) -> u64 {
        let cells = SharedCells::<CHECKED>::new(data);
        if certified && threads > 1 && group.len() >= 2 {
            let instances: u64 = group
                .iter()
                .map(|&(fi, fj)| {
                    self.loops
                        .iter()
                        .filter(|cl| cl.rows.contains(fi) && cl.cols.contains(fj))
                        .map(|cl| cl.stmts.len() as u64)
                        .sum::<u64>()
                })
                .sum();
            group.to_vec().into_par_iter().for_each(|(fi, fj)| {
                let mut regs = [0i64; MAX_REGS];
                for cl in &self.loops {
                    if !cl.rows.contains(fi) || !cl.cols.contains(fj) {
                        continue;
                    }
                    let cur = self.layout.cursor(fi + cl.offset.x, fj + cl.offset.y) as isize;
                    for s in &cl.stmts {
                        let v = eval_compiled(&s.instrs, &mut regs, |d| cells.read(cur + d));
                        cells.write(cur + s.store_delta, v);
                    }
                }
            });
            instances
        } else {
            let mut regs = [0i64; MAX_REGS];
            let mut instances = 0u64;
            for &(fi, fj) in group {
                instances += self.exec_cell(&cells, &mut regs, fi, fj);
            }
            instances
        }
    }

    /// One tile wave: every tile on anti-diagonal `w` of the tile grid.
    /// `unchecked` selects the assert-free body, derived from
    /// [`Self::is_armed`] — the armed mode's [`VmMode::WavefrontTiled`]
    /// image is what the verifier proved, so tiled execution is exactly
    /// the licensed path.
    fn tile_wave(
        &self,
        data: &mut [i64],
        tp: &TilePlan,
        w: i64,
        threads: usize,
        unchecked: bool,
    ) -> u64 {
        if unchecked {
            self.tile_wave_body::<false>(data, tp, w, threads)
        } else {
            self.tile_wave_body::<true>(data, tp, w, threads)
        }
    }

    fn tile_wave_body<const CHECKED: bool>(
        &self,
        data: &mut [i64],
        tp: &TilePlan,
        w: i64,
        threads: usize,
    ) -> u64 {
        let cells = SharedCells::<CHECKED>::new(data);
        let (lo, hi) = tp.wave_bands(w);
        if tp.wave_serial(w, threads) {
            let mut regs = [0i64; MAX_REGS];
            let mut instances = 0u64;
            for tb in lo..=hi {
                instances += self.exec_tile(&cells, &mut regs, tp, tb, w - tb);
            }
            instances
        } else {
            // Same-wave tiles touch disjoint conflict-free cell sets (the
            // elision certificate's monotonicity argument), so they run in
            // place concurrently. Instances are pre-counted so the hot
            // loop carries no shared accumulator.
            let instances: u64 = (lo..=hi)
                .map(|tb| self.tile_instances(tp, tb, w - tb))
                .sum();
            (lo..=hi)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|tb| {
                    let mut regs = [0i64; MAX_REGS];
                    self.exec_tile(&cells, &mut regs, tp, tb, w - tb);
                });
            instances
        }
    }

    /// The fused-column window of tile row `fi` within front band
    /// `[t_lo, t_hi]`: `t = s.x·fi + s.y·fj` solved for `fj`, clamped to
    /// the fused inner range. Shared by execution and instance counting.
    #[inline]
    fn tile_cols(&self, tp: &TilePlan, fi: i64, t_lo: i64, t_hi: i64) -> (i64, i64) {
        let s = tp.schedule;
        (
            div_ceil(t_lo - s.x * fi, s.y).max(self.inner.lo),
            div_floor(t_hi - s.x * fi, s.y).min(self.inner.hi),
        )
    }

    /// The inclusive `(t, fi)` extents of tile `(tb, ib)`.
    #[inline]
    fn tile_extents(&self, tp: &TilePlan, tb: i64, ib: i64) -> (i64, i64, i64, i64) {
        let t_lo = tp.t0 + tb * tp.bt;
        let t_hi = (t_lo + tp.bt - 1).min(tp.t1);
        let fi_lo = self.outer.lo + ib * tp.bi;
        let fi_hi = (fi_lo + tp.bi - 1).min(self.outer.hi);
        (t_lo, t_hi, fi_lo, fi_hi)
    }

    /// Executes one tile, cell-major: rows ascending, columns ascending
    /// within the row, loops in body order at each cell — the exact
    /// serialization the elision certificate proves equivalent to the
    /// front-by-front drive for every in-tile dependence.
    fn exec_tile<const CHECKED: bool>(
        &self,
        cells: &SharedCells<CHECKED>,
        regs: &mut [i64; MAX_REGS],
        tp: &TilePlan,
        tb: i64,
        ib: i64,
    ) -> u64 {
        let (t_lo, t_hi, fi_lo, fi_hi) = self.tile_extents(tp, tb, ib);
        let mut instances = 0u64;
        for fi in fi_lo..=fi_hi {
            let (lo, hi) = self.tile_cols(tp, fi, t_lo, t_hi);
            for fj in lo..=hi {
                instances += self.exec_cell(cells, regs, fi, fj);
            }
        }
        instances
    }

    /// Statement instances tile `(tb, ib)` executes, counted without
    /// touching memory (for the threaded path's accounting).
    fn tile_instances(&self, tp: &TilePlan, tb: i64, ib: i64) -> u64 {
        let (t_lo, t_hi, fi_lo, fi_hi) = self.tile_extents(tp, tb, ib);
        let mut instances = 0u64;
        for fi in fi_lo..=fi_hi {
            let (lo, hi) = self.tile_cols(tp, fi, t_lo, t_hi);
            for fj in lo..=hi {
                instances += self
                    .loops
                    .iter()
                    .filter(|cl| cl.rows.contains(fi) && cl.cols.contains(fj))
                    .map(|cl| cl.stmts.len() as u64)
                    .sum::<u64>();
            }
        }
        instances
    }
}

fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_core::plan_fusion;
    use mdf_ir::extract::extract_mldg;
    use mdf_ir::samples::{figure2_program, image_pipeline_program, relaxation_program};
    use mdf_sim::{run_fused, run_original, run_wavefront};

    fn planned_spec(p: &mdf_ir::ast::Program) -> (FusedSpec, mdf_core::FusionPlan) {
        let plan = plan_fusion(&extract_mldg(p).unwrap().graph).unwrap();
        let spec = FusedSpec::new(p.clone(), plan.retiming().offsets().to_vec());
        (spec, plan)
    }

    #[test]
    fn certified_rows_match_original_fingerprint() {
        for (n, m) in [(0, 0), (1, 1), (5, 3), (12, 9)] {
            for p in [figure2_program(), image_pipeline_program()] {
                let (spec, plan) = planned_spec(&p);
                let mode = crate::plan_mode(&spec, &plan);
                assert_eq!(mode, ExecMode::RowsCertified, "{}", p.name);
                let k = CompiledKernel::compile(&spec, n, m).unwrap();
                let (kmem, kstats) = k.run(mode);
                let (imem, _) = run_original(&p, n, m);
                assert_eq!(
                    kmem.fingerprint(),
                    imem.fingerprint(),
                    "{} at ({n},{m})",
                    p.name
                );
                // Barrier accounting matches the fused interpreter.
                let (_, istats) = run_fused(&spec, n, m);
                assert_eq!(kstats.barriers, istats.barriers);
                assert_eq!(kstats.stmt_instances, istats.stmt_instances);
            }
        }
    }

    #[test]
    fn forced_tiled_path_matches_serial_path() {
        // Push the row length past the tiling threshold and force a
        // multi-worker policy: the SharedCells tiled path must produce the
        // same image as the single-threaded sweep.
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 4, 3 * TILE_COLS).unwrap();
        let (serial, _) = k.run_with_threads(mode, 1);
        let (tiled, _) = k.run_with_threads(mode, 4);
        assert_eq!(serial.fingerprint(), tiled.fingerprint());
        let (imem, _) = run_original(&p, 4, 3 * TILE_COLS);
        assert_eq!(tiled.fingerprint(), imem.fingerprint());
    }

    #[test]
    fn wavefront_mode_matches_original_and_interpreter_barriers() {
        let p = relaxation_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let ExecMode::Wavefront {
            schedule,
            certified,
            elide,
        } = mode
        else {
            panic!("relaxation must plan a wavefront");
        };
        assert!(certified);
        assert!(elide, "relaxation's schedule passes elision");
        // The untiled drive (elision off) keeps the interpreter's
        // barrier-per-front accounting.
        let untiled = ExecMode::Wavefront {
            schedule,
            certified,
            elide: false,
        };
        for (n, m) in [(0, 0), (3, 5), (10, 10)] {
            let k = CompiledKernel::compile(&spec, n, m).unwrap();
            let (kmem, kstats) = k.run(untiled);
            let (imem, _) = run_original(&p, n, m);
            assert_eq!(kmem.fingerprint(), imem.fingerprint(), "({n},{m})");
            let w = plan.wavefront().unwrap();
            assert_eq!(w.schedule, schedule);
            let (_, wstats) = run_wavefront(&spec, w, n, m);
            assert_eq!(kstats.barriers, wstats.barriers);
            // The tiled drive is bit-identical with far fewer syncs.
            let (tmem, tstats) = k.run(mode);
            assert_eq!(tmem.fingerprint(), imem.fingerprint(), "tiled ({n},{m})");
            let tp = k.tile_plan(mode).unwrap();
            assert_eq!(tstats.barriers, tp.waves());
            assert!(tstats.barriers <= kstats.barriers);
            assert_eq!(tstats.stmt_instances, kstats.stmt_instances);
        }
        // Forced-parallel waves agree with the sequential waves, tiled
        // and untiled alike.
        let k = CompiledKernel::compile(&spec, 8, 8).unwrap();
        for m in [mode, untiled] {
            let (a, _) = k.run_with_threads(m, 1);
            let (b, _) = k.run_with_threads(m, 4);
            assert_eq!(a.fingerprint(), b.fingerprint(), "{m:?}");
        }
    }

    #[test]
    fn serial_fallback_is_exact_for_legal_but_not_doall_specs() {
        // Figure 6's retiming fuses legally but rows are serial; the
        // RowsSerial fallback must still reproduce the original exactly.
        use mdf_graph::v2;
        let p = figure2_program();
        let spec = FusedSpec::new(p.clone(), vec![v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
        let k = CompiledKernel::compile(&spec, 8, 8).unwrap();
        let (kmem, _) = k.run(ExecMode::RowsSerial);
        let (imem, _) = run_original(&p, 8, 8);
        assert_eq!(kmem.fingerprint(), imem.fingerprint());
    }

    #[test]
    fn body_order_is_honored_not_textual_order() {
        // A backward edge collapsed to (0,0) forces loop B before loop A;
        // executing textually would read stale values.
        use mdf_graph::v2;
        use mdf_ir::ast::{ArrayRef, Expr, Program, Stmt};
        let mut p = Program::new("backward");
        let a = p.add_array("a");
        let b = p.add_array("b");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Ref(ArrayRef::new(b, -1, 0)),
            }],
        );
        p.add_loop(
            "B",
            vec![Stmt {
                lhs: ArrayRef::new(b, 0, 0),
                rhs: Expr::Const(7),
            }],
        );
        let spec = FusedSpec::new(p.clone(), vec![v2(1, 0), v2(0, 0)]);
        let k = CompiledKernel::compile(&spec, 6, 6).unwrap();
        let (kmem, _) = k.run(ExecMode::RowsSerial);
        let (fmem, _) = run_fused(&spec, 6, 6);
        assert_eq!(kmem.fingerprint(), fmem.fingerprint());
    }

    #[test]
    fn budgeted_run_matches_plain_and_trips_on_iteration_cap() {
        use mdf_graph::{Budget, BudgetResource};
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 9, 7).unwrap();
        let mut meter = Budget::unlimited().meter();
        let (bmem, bstats) = k
            .run_budgeted(mode, &mut meter)
            .unwrap()
            .into_complete()
            .unwrap();
        let (pmem, pstats) = k.run(mode);
        assert_eq!(bmem.fingerprint(), pmem.fingerprint());
        assert_eq!(bstats, pstats);

        let mut tight = Budget::unlimited().with_max_iterations(10).meter();
        match k.run_budgeted(mode, &mut tight) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::Iterations,
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }

        let mut tiny = Budget::unlimited().with_max_memory_cells(4).meter();
        match k.run_budgeted(mode, &mut tiny) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::MemoryCells,
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn injected_deadline_yields_partial_then_resume_is_bit_identical() {
        use mdf_chaos::{FaultKind, FaultPlan};
        use mdf_graph::Budget;
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 9, 7).unwrap();
        let (pmem, pstats) = k.run(mode);
        let total = k.barrier_count(mode);
        assert!(total >= 3);

        // Expire the deadline at every barrier index in turn; each stop
        // must be resumable to the exact uninterrupted image and counters.
        for b in 1..=total {
            let guard = FaultPlan::single("kernel.barrier", FaultKind::DeadlineExpiry, b).arm();
            let mut meter = Budget::unlimited().with_chaos().meter();
            let out = k.run_budgeted(mode, &mut meter).unwrap();
            drop(guard);
            let RunOutcome::Partial {
                mem,
                checkpoint,
                cause,
            } = out
            else {
                panic!("expected a partial outcome at barrier {b}");
            };
            assert!(mdf_sim::deadline_expired(&cause));
            assert_eq!(checkpoint.completed_barriers, b - 1);
            assert_eq!(checkpoint.stats.barriers, b - 1);

            let mut meter = Budget::unlimited().meter();
            let (rmem, rstats) = k
                .resume_budgeted(mode, mem, checkpoint, &mut meter)
                .unwrap()
                .into_complete()
                .unwrap();
            assert_eq!(rmem.fingerprint(), pmem.fingerprint(), "barrier {b}");
            assert_eq!(rstats, pstats, "barrier {b}");
        }
    }

    #[test]
    fn resume_rejects_a_tampered_image() {
        use mdf_chaos::{FaultKind, FaultPlan};
        use mdf_graph::Budget;
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 6, 6).unwrap();
        let guard = FaultPlan::single("kernel.barrier", FaultKind::DeadlineExpiry, 2).arm();
        let mut meter = Budget::unlimited().with_chaos().meter();
        let RunOutcome::Partial {
            mut mem,
            checkpoint,
            ..
        } = k.run_budgeted(mode, &mut meter).unwrap()
        else {
            panic!("expected partial");
        };
        drop(guard);
        mem.data_mut()[0] ^= 1;
        let mut meter = Budget::unlimited().meter();
        assert!(k
            .resume_budgeted(mode, mem, checkpoint, &mut meter)
            .is_err());
    }

    #[test]
    fn supervised_run_recovers_injected_worker_panic_bit_identically() {
        use mdf_chaos::{FaultKind, FaultPlan};
        use mdf_graph::Budget;
        use mdf_sim::{RetryPolicy, SupervisedOutcome};
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 9, 7).unwrap();
        let (pmem, pstats) = k.run(mode);

        // A mid-chunk panic lands *after* the chunk's writes: recovery
        // must restore the snapshot, retry, and still match bit-for-bit.
        let guard = FaultPlan::single("kernel.chunk.mid", FaultKind::WorkerPanic, 3).arm();
        let mut meter = Budget::unlimited().with_chaos().meter();
        let out = k
            .run_supervised(mode, 1, &RetryPolicy::deterministic(), &mut meter)
            .unwrap();
        assert_eq!(guard.injected(), 1);
        drop(guard);
        match out {
            SupervisedOutcome::Complete {
                mem,
                stats,
                recovery,
            } => {
                assert_eq!(mem.fingerprint(), pmem.fingerprint());
                assert_eq!(stats, pstats, "retried work counted once");
                assert_eq!(recovery.retries, 1);
                assert_eq!(recovery.resumes, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn supervised_alloc_refusal_is_retried_to_completion() {
        use mdf_chaos::{FaultKind, FaultPlan};
        use mdf_graph::Budget;
        use mdf_sim::RetryPolicy;
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 5, 5).unwrap();
        let (pmem, _) = k.run(mode);
        let guard = FaultPlan::single("kernel.alloc", FaultKind::AllocRefusal, 1).arm();
        let mut meter = Budget::unlimited().with_chaos().meter();
        let out = k
            .run_supervised(mode, 1, &RetryPolicy::deterministic(), &mut meter)
            .unwrap();
        assert_eq!(guard.injected(), 1);
        drop(guard);
        assert!(out.is_complete());
        assert_eq!(out.recovery().retries, 1);
        match out {
            mdf_sim::SupervisedOutcome::Complete { mem, .. } => {
                assert_eq!(mem.fingerprint(), pmem.fingerprint());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    fn single_node_program() -> mdf_ir::ast::Program {
        use mdf_ir::ast::{ArrayRef, Expr, Program, Stmt};
        let mut p = Program::new("stencil");
        let a = p.add_array("a");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Ref(ArrayRef::new(a, -1, 0)),
            }],
        );
        p
    }

    fn run_traced_profile(
        k: &CompiledKernel,
        mode: ExecMode,
        threads: usize,
    ) -> ((KernelMemory, ExecStats), mdf_trace::Profile) {
        use std::sync::Arc;
        let sink = Arc::new(mdf_trace::MemorySink::new());
        let tracer = mdf_trace::Tracer::new(sink.clone());
        let span = tracer.span("execute");
        let out = k.run_with_threads_traced(mode, threads, &span);
        span.finish();
        (out, sink.profile().unwrap())
    }

    #[test]
    fn empty_iteration_space_counts_zero_barriers_and_instances() {
        // n = -1 makes the fused outer range empty: the drivers must
        // execute nothing, touch nothing, and account exactly zero.
        let spec = FusedSpec::unretimed(single_node_program());
        let k = CompiledKernel::compile(&spec, -1, 3).unwrap();
        for mode in [ExecMode::RowsCertified, ExecMode::RowsSerial] {
            let ((mem, stats), profile) = run_traced_profile(&k, mode, 4);
            assert_eq!(stats.barriers, 0);
            assert_eq!(stats.stmt_instances, 0);
            assert_eq!(profile.counter_total("kernel.barriers"), 0);
            assert_eq!(profile.counter_total("kernel.instances"), 0);
            assert_eq!(profile.counter_total("kernel.tiles"), 0);
            assert_eq!(mem.fingerprint(), KernelMemory::new(k.layout).fingerprint());
        }
    }

    #[test]
    fn one_by_n_and_n_by_one_spaces_count_exactly() {
        let spec = FusedSpec::unretimed(single_node_program());

        // 1 x 8 space: one fused row, eight columns.
        let k = CompiledKernel::compile(&spec, 0, 7).unwrap();
        let ((_, stats), profile) = run_traced_profile(&k, ExecMode::RowsCertified, 1);
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.stmt_instances, 8);
        assert_eq!(profile.counter_total("kernel.rows"), 1);
        assert_eq!(profile.counter_total("kernel.barriers"), 1);
        assert_eq!(profile.counter_total("kernel.instances"), 8);
        assert_eq!(profile.counter_total("kernel.tiles"), 0, "below tile gate");

        // 8 x 1 space: eight fused rows, one column each.
        let k = CompiledKernel::compile(&spec, 7, 0).unwrap();
        let ((_, stats), profile) = run_traced_profile(&k, ExecMode::RowsSerial, 1);
        assert_eq!(stats.barriers, 8);
        assert_eq!(stats.stmt_instances, 8);
        assert_eq!(profile.counter_total("kernel.rows"), 8);
        assert_eq!(profile.counter_total("kernel.barriers"), 8);
    }

    #[test]
    fn single_node_mldg_compile_counters() {
        use std::sync::Arc;
        let spec = FusedSpec::unretimed(single_node_program());
        let sink = Arc::new(mdf_trace::MemorySink::new());
        let tracer = mdf_trace::Tracer::new(sink.clone());
        let span = tracer.span("lower");
        let k = CompiledKernel::compile_traced(&spec, 4, 4, &span).unwrap();
        span.finish();
        let profile = sink.profile().unwrap();
        assert_eq!(profile.counter_total("kernel.loops"), 1);
        // One statement: load a[i-1][j], store — at least one instruction,
        // and exactly what the lowered body holds.
        let instrs: u64 = k.loops[0].stmts.iter().map(|s| s.instrs.len() as u64).sum();
        assert!(instrs >= 1);
        assert_eq!(profile.counter_total("kernel.instrs"), instrs);
    }

    #[test]
    fn tiled_path_tile_counter_is_exact_and_does_not_perturb() {
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        assert_eq!(mode, ExecMode::RowsCertified);
        let k = CompiledKernel::compile(&spec, 4, 3 * TILE_COLS).unwrap();

        let (plain_mem, plain_stats) = k.run_with_threads(mode, 4);
        let ((mem, stats), profile) = run_traced_profile(&k, mode, 4);
        assert_eq!(mem.fingerprint(), plain_mem.fingerprint());
        assert_eq!(stats, plain_stats);

        let tiles_per_row = (k.inner.len() + TILE_COLS - 1) / TILE_COLS;
        assert!(tiles_per_row >= 3);
        assert_eq!(
            profile.counter_total("kernel.tiles"),
            stats.barriers * tiles_per_row as u64
        );
        assert_eq!(profile.counter_total("kernel.rows"), stats.barriers);

        // Single-threaded run of the same kernel takes the untiled path.
        let (_, profile) = run_traced_profile(&k, mode, 1);
        assert_eq!(profile.counter_total("kernel.tiles"), 0);
    }

    #[test]
    fn wavefront_groups_counter_matches_barriers() {
        let p = relaxation_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 6, 6).unwrap();
        let ((_, stats), profile) = run_traced_profile(&k, mode, 2);
        assert_eq!(profile.counter_total("kernel.groups"), stats.barriers);
        assert_eq!(profile.counter_total("kernel.barriers"), stats.barriers);
        assert_eq!(
            profile.counter_total("kernel.instances"),
            stats.stmt_instances
        );
        assert_eq!(profile.counter_total("kernel.tiles"), 0);
    }

    #[test]
    fn tiled_wavefront_counters_match_the_plan_and_cost_model() {
        let p = relaxation_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 24, 24).unwrap();
        let tp = k.tile_plan(mode).expect("planned relaxation tiles");
        assert!(tp.waves() < tp.fronts(), "tiling must elide barriers");
        for threads in [1, 4] {
            let ((_, stats), profile) = run_traced_profile(&k, mode, threads);
            assert_eq!(stats.barriers, tp.waves());
            assert_eq!(profile.counter_total("kernel.barriers"), tp.waves());
            assert_eq!(profile.counter_total("wavefront.tiles"), tp.tiles());
            assert_eq!(
                profile.counter_total("wavefront.elided_barriers"),
                tp.fronts() - tp.waves()
            );
            assert_eq!(
                profile.counter_total("wavefront.serial_fronts"),
                tp.serial_waves(threads)
            );
        }
        // One worker serializes every wave; the counter must say so.
        assert_eq!(tp.serial_waves(1), tp.waves());
    }

    #[test]
    fn tiled_drive_reports_post_elision_barriers_everywhere() {
        // barrier_count, the budgeted driver, and the supervisor must all
        // agree on waves — the checkpoint unit — not pre-elision fronts.
        use mdf_graph::Budget;
        use mdf_sim::RetryPolicy;
        let p = relaxation_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let k = CompiledKernel::compile(&spec, 12, 12).unwrap();
        let tp = k.tile_plan(mode).unwrap();
        assert_eq!(k.barrier_count(mode), tp.waves());
        let mut meter = Budget::unlimited().meter();
        let (_, bstats) = k
            .run_budgeted(mode, &mut meter)
            .unwrap()
            .into_complete()
            .unwrap();
        assert_eq!(bstats.barriers, tp.waves());
        let mut meter = Budget::unlimited().meter();
        let out = k
            .run_supervised(mode, 2, &RetryPolicy::deterministic(), &mut meter)
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.recovery().checkpoints_taken, tp.waves());
    }

    #[test]
    fn tile_plan_exists_only_for_elided_certified_wavefronts() {
        let p = relaxation_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let ExecMode::Wavefront { schedule, .. } = mode else {
            panic!("expected wavefront");
        };
        let k = CompiledKernel::compile(&spec, 8, 8).unwrap();
        assert!(k.tile_plan(mode).is_some());
        for no_tile in [
            ExecMode::Wavefront {
                schedule,
                certified: true,
                elide: false,
            },
            ExecMode::Wavefront {
                schedule,
                certified: false,
                elide: true,
            },
            ExecMode::RowsCertified,
            ExecMode::RowsSerial,
        ] {
            assert!(k.tile_plan(no_tile).is_none(), "{no_tile:?}");
        }
        // A schedule that cannot order rows never tiles.
        assert!(k
            .tile_plan(ExecMode::Wavefront {
                schedule: mdf_graph::v2(1, 0),
                certified: true,
                elide: true,
            })
            .is_none());
        // An empty space never tiles (and the untiled drive is exact).
        let empty = CompiledKernel::compile(&spec, -1, 8).unwrap();
        assert!(empty.tile_plan(mode).is_none());
        assert_eq!(empty.barrier_count(mode), 0);
    }

    #[test]
    fn tiled_cert_mode_tracks_the_executed_path() {
        // The armed image's mode must equal what the drive will execute:
        // tiled for the elided mode, plain wavefront with elision off —
        // and the certs must not cross-validate.
        let p = relaxation_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let ExecMode::Wavefront {
            schedule,
            certified: true,
            elide: true,
        } = mode
        else {
            panic!("expected elided wavefront");
        };
        let untiled = ExecMode::Wavefront {
            schedule,
            certified: true,
            elide: false,
        };
        let mut k = CompiledKernel::compile(&spec, 10, 10).unwrap();
        let tiled_cert = k.arm(mode).unwrap();
        assert_eq!(
            tiled_cert.mode,
            VmMode::WavefrontTiled {
                schedule: (schedule.x, schedule.y)
            }
        );
        let untiled_cert = k.arm(untiled).unwrap();
        assert_eq!(
            untiled_cert.mode,
            VmMode::Wavefront {
                schedule: (schedule.x, schedule.y)
            }
        );
        // Cross-mode adoption is rejected both ways.
        let mut fresh = CompiledKernel::compile(&spec, 10, 10).unwrap();
        assert!(!fresh.arm_with_cert(mode, untiled_cert));
        assert!(!fresh.arm_with_cert(untiled, tiled_cert));
        assert!(fresh.arm_with_cert(mode, tiled_cert));
        assert!(fresh.is_armed(mode));
        assert!(!fresh.is_armed(untiled));
    }

    #[test]
    fn verifier_register_file_matches_the_executor() {
        assert_eq!(bytecode::VM_MAX_REGS, MAX_REGS);
    }

    #[test]
    fn honest_kernels_verify_and_armed_runs_are_bit_identical() {
        for p in [
            figure2_program(),
            image_pipeline_program(),
            relaxation_program(),
        ] {
            let (spec, plan) = planned_spec(&p);
            let mode = crate::plan_mode(&spec, &plan);
            for (n, m) in [(0, 0), (5, 3), (12, 9)] {
                let mut k = CompiledKernel::compile(&spec, n, m).unwrap();
                let (checked_mem, checked_stats) = k.run_with_threads(mode, 1);
                let (checked_mt, _) = k.run_with_threads(mode, 4);
                let cert = k
                    .arm(mode)
                    .unwrap_or_else(|d| panic!("{} at ({n},{m}) must verify: {d:?}", p.name));
                assert_eq!(cert.checksum, bytecode::image_checksum(&k.vm_image(mode)));
                assert!(k.is_armed(mode));
                let (armed_mem, armed_stats) = k.run_with_threads(mode, 1);
                let (armed_mt, mt_stats) = k.run_with_threads(mode, 4);
                assert_eq!(armed_mem.fingerprint(), checked_mem.fingerprint());
                assert_eq!(armed_mt.fingerprint(), checked_mt.fingerprint());
                assert_eq!(armed_stats, checked_stats);
                assert_eq!(mt_stats.barriers, checked_stats.barriers);
            }
        }
    }

    #[test]
    fn armed_tiled_path_matches_checked_tiled_path() {
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let mut k = CompiledKernel::compile(&spec, 4, 3 * TILE_COLS).unwrap();
        assert!(k.rows_tiled(4), "shape must cross the tiling threshold");
        let (checked, _) = k.run_with_threads(mode, 4);
        k.arm(mode).unwrap();
        let (armed, _) = k.run_with_threads(mode, 4);
        assert_eq!(armed.fingerprint(), checked.fingerprint());
    }

    #[test]
    fn cert_is_mode_keyed_and_revalidation_guards_reuse() {
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let mut k = CompiledKernel::compile(&spec, 6, 6).unwrap();
        let cert = k.arm(mode).unwrap();
        // Armed for RowsCertified only; a serial drive stays checked.
        assert!(k.cert(ExecMode::RowsSerial).is_none());

        // A fresh, identical kernel adopts the cached cert.
        let mut k2 = CompiledKernel::compile(&spec, 6, 6).unwrap();
        assert!(k2.arm_with_cert(mode, cert));
        assert!(k2.is_armed(mode));

        // Different bounds lower a different image: adoption must fail.
        let mut k3 = CompiledKernel::compile(&spec, 7, 6).unwrap();
        assert!(!k3.arm_with_cert(mode, cert));
        assert!(!k3.is_armed(mode));

        // A wrong mode claim must fail too.
        let mut k4 = CompiledKernel::compile(&spec, 6, 6).unwrap();
        assert!(!k4.arm_with_cert(ExecMode::RowsSerial, cert));
    }

    #[test]
    fn mutating_the_lowered_loops_disarms_the_kernel() {
        let p = figure2_program();
        let (spec, plan) = planned_spec(&p);
        let mode = crate::plan_mode(&spec, &plan);
        let mut k = CompiledKernel::compile(&spec, 6, 6).unwrap();
        k.arm(mode).unwrap();
        assert!(k.is_armed(mode));
        let _ = k.loops_mut(); // access alone revokes the license
        assert!(!k.is_armed(mode));
        k.arm(mode).unwrap();
        k.disarm();
        assert!(!k.is_armed(mode));
    }

    #[test]
    fn serial_fallback_mode_verifies_without_disjointness_obligations() {
        use mdf_graph::v2;
        let p = figure2_program();
        let spec = FusedSpec::new(p.clone(), vec![v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
        let mut k = CompiledKernel::compile(&spec, 8, 8).unwrap();
        let cert = k.arm(ExecMode::RowsSerial).unwrap();
        assert_eq!(cert.pairs_checked, 0, "serial mode has no step pairs");
        let (armed, _) = k.run(ExecMode::RowsSerial);
        let (imem, _) = run_original(&p, 8, 8);
        assert_eq!(armed.fingerprint(), imem.fingerprint());
    }

    #[test]
    fn nonexecutable_spec_fails_typed_at_compile() {
        // A same-loop, same-row dependence (a[i][j] reading a[i][j-1])
        // violates the DOALL program model; dependence analysis rejects
        // it, `body_order` has nothing to order, and compilation must
        // surface a typed error — mirroring `body_order_typed` in
        // `mdf-sim` — instead of producing a kernel.
        use mdf_ir::ast::{ArrayRef, Expr, Program, Stmt};
        let mut p = Program::new("not-doall");
        let a = p.add_array("a");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Ref(ArrayRef::new(a, 0, -1)),
            }],
        );
        let spec = FusedSpec::unretimed(p);
        assert!(spec.body_order().is_none(), "analysis must reject the loop");
        assert!(CompiledKernel::compile(&spec, 4, 4).is_err());
    }
}
