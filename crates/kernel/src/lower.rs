//! Lowering statement bodies to register bytecode.
//!
//! The interpreter re-walks each statement's [`Expr`] tree at every
//! iteration: per-node dispatch through `Box` pointers, plus a full
//! `(i + di - lo_i) * cols + (j + dj - lo_j)` index derivation per array
//! access. Lowering does all of that once, at compile time:
//!
//! * constant subtrees fold to a single [`Instr::Const`];
//! * every array reference resolves to a single **linear delta** — plane
//!   base plus subscript offset — added to the statement's iteration
//!   *cursor* (see [`crate::memory::Layout::cursor`]), which itself
//!   advances by `+1` as the inner loop walks a row;
//! * the tree flattens into a postfix instruction sequence over a small
//!   register file of *stack slots*, so execution is a branch-light sweep
//!   over a flat `Vec<Instr>` with no pointer chasing.
//!
//! The register file is a fixed-size stack array in the executor
//! ([`MAX_REGS`] slots), which keeps the per-cell hot path allocation-free;
//! expression nesting deeper than that is rejected at compile time with a
//! typed error rather than miscompiled.

use mdf_graph::{IVec2, MdfError};
use mdf_ir::ast::{BinOp, Expr, Stmt};
use mdf_ir::retgen::IRange;

use crate::memory::Layout;

/// Register-file size of the executor (stack slots per worker). Deep
/// enough for any realistic body — lowering needs one slot per level of
/// *right-nesting*, not per operator — and small enough to live on the
/// worker's stack.
pub const MAX_REGS: usize = 64;

/// One bytecode instruction. `dst` is a stack slot; binary operators read
/// `dst` and `dst + 1` (postfix stack discipline), so no explicit operand
/// fields are needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `regs[dst] = value` (literals and folded constant subtrees).
    Const {
        /// Destination slot.
        dst: u16,
        /// The constant.
        value: i64,
    },
    /// `regs[dst] = data[cursor + delta]` — one precomputed linear offset
    /// replaces the interpreter's per-access 2-D index math.
    Load {
        /// Destination slot.
        dst: u16,
        /// Linear offset from the statement's cursor.
        delta: isize,
    },
    /// `regs[dst] = -regs[dst]` (wrapping).
    Neg {
        /// Slot negated in place.
        dst: u16,
    },
    /// `regs[dst] = regs[dst] op regs[dst + 1]` (wrapping).
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand and destination slot.
        dst: u16,
    },
}

/// One lowered assignment: run [`CompiledStmt::instrs`], then store slot 0
/// at `cursor + store_delta`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledStmt {
    /// Linear offset of the written cell from the statement's cursor.
    pub store_delta: isize,
    /// Postfix bytecode; the result lands in slot 0.
    pub instrs: Vec<Instr>,
    /// Slots used (`<=` [`MAX_REGS`], enforced at lowering).
    pub regs: u16,
}

/// One lowered innermost loop (one MLDG node) of a fused kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledLoop {
    /// The loop's retiming offset `r(u)`.
    pub offset: IVec2,
    /// Fused rows `fi` where this loop is active (`0 <= fi + r.x <= n`).
    pub rows: IRange,
    /// Fused columns `fj` where this loop is active (`0 <= fj + r.y <= m`).
    pub cols: IRange,
    /// The loop body in textual order.
    pub stmts: Vec<CompiledStmt>,
}

/// Folds constant subtrees bottom-up, mirroring the interpreter's wrapping
/// semantics exactly (`BinOp::apply` / `wrapping_neg`).
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Ref(_) => e.clone(),
        Expr::Neg(inner) => match fold_expr(inner) {
            Expr::Const(v) => Expr::Const(v.wrapping_neg()),
            folded => Expr::Neg(Box::new(folded)),
        },
        Expr::Bin(op, a, b) => match (fold_expr(a), fold_expr(b)) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(op.apply(x, y)),
            (fa, fb) => Expr::bin(*op, fa, fb),
        },
    }
}

fn lower_expr(
    layout: &Layout,
    e: &Expr,
    depth: u16,
    out: &mut Vec<Instr>,
    max_depth: &mut u16,
) -> Result<(), MdfError> {
    if depth as usize >= MAX_REGS {
        return Err(MdfError::invalid(format!(
            "expression nests deeper than the kernel register file ({MAX_REGS} slots)"
        )));
    }
    *max_depth = (*max_depth).max(depth + 1);
    match e {
        Expr::Const(v) => out.push(Instr::Const {
            dst: depth,
            value: *v,
        }),
        Expr::Ref(r) => out.push(Instr::Load {
            dst: depth,
            delta: layout.delta(r.array, r.di, r.dj),
        }),
        Expr::Neg(inner) => {
            lower_expr(layout, inner, depth, out, max_depth)?;
            out.push(Instr::Neg { dst: depth });
        }
        Expr::Bin(op, a, b) => {
            lower_expr(layout, a, depth, out, max_depth)?;
            lower_expr(layout, b, depth + 1, out, max_depth)?;
            out.push(Instr::Bin {
                op: *op,
                dst: depth,
            });
        }
    }
    Ok(())
}

/// Lowers one assignment: folds constants, then flattens to bytecode.
pub fn lower_stmt(layout: &Layout, s: &Stmt) -> Result<CompiledStmt, MdfError> {
    let folded = fold_expr(&s.rhs);
    let mut instrs = Vec::with_capacity(folded.op_count() + folded.refs().len() + 1);
    let mut regs = 0u16;
    lower_expr(layout, &folded, 0, &mut instrs, &mut regs)?;
    Ok(CompiledStmt {
        store_delta: layout.delta(s.lhs.array, s.lhs.di, s.lhs.dj),
        instrs,
        regs,
    })
}

/// Lowers one innermost loop of a fused spec at bounds `(n, m)`: its body
/// plus its active fused row/column ranges under retiming offset `r`.
pub fn lower_loop(
    layout: &Layout,
    stmts: &[Stmt],
    r: IVec2,
    n: i64,
    m: i64,
) -> Result<CompiledLoop, MdfError> {
    Ok(CompiledLoop {
        offset: r,
        rows: IRange {
            lo: -r.x,
            hi: n - r.x,
        },
        cols: IRange {
            lo: -r.y,
            hi: m - r.y,
        },
        stmts: stmts
            .iter()
            .map(|s| lower_stmt(layout, s))
            .collect::<Result<_, _>>()?,
    })
}

/// Evaluates lowered bytecode; `read(delta)` resolves `cursor + delta`
/// (the caller owns the cursor and the buffer, so the same bytecode runs
/// against a plain slice or the shared-cells view of a parallel step).
#[inline]
pub fn eval_compiled(
    instrs: &[Instr],
    regs: &mut [i64; MAX_REGS],
    read: impl Fn(isize) -> i64,
) -> i64 {
    for ins in instrs {
        match *ins {
            Instr::Const { dst, value } => regs[dst as usize] = value,
            Instr::Load { dst, delta } => regs[dst as usize] = read(delta),
            Instr::Neg { dst } => regs[dst as usize] = regs[dst as usize].wrapping_neg(),
            Instr::Bin { op, dst } => {
                regs[dst as usize] = op.apply(regs[dst as usize], regs[dst as usize + 1]);
            }
        }
    }
    regs[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::KernelMemory;
    use mdf_ir::ast::{ArrayRef, Program};
    use mdf_ir::samples::figure2_program;
    use mdf_sim::{eval_expr, Memory};

    fn figure2_layout() -> (Program, Layout) {
        let p = figure2_program();
        let layout = Layout::for_program(&p, 8, 8);
        (p, layout)
    }

    #[test]
    fn constant_folding_collapses_const_subtrees() {
        // -(2 * 3) + a[i][j]  =>  Const(-6) + Load
        let e = Expr::bin(
            BinOp::Add,
            Expr::Neg(Box::new(Expr::bin(
                BinOp::Mul,
                Expr::Const(2),
                Expr::Const(3),
            ))),
            Expr::Ref(ArrayRef::new(0, 0, 0)),
        );
        let folded = fold_expr(&e);
        assert_eq!(
            folded,
            Expr::bin(
                BinOp::Add,
                Expr::Const(-6),
                Expr::Ref(ArrayRef::new(0, 0, 0))
            )
        );
        // Folding matches the interpreter's wrapping semantics at extremes.
        let wrap = Expr::bin(BinOp::Mul, Expr::Const(i64::MAX), Expr::Const(2));
        assert_eq!(fold_expr(&wrap), Expr::Const(i64::MAX.wrapping_mul(2)));
    }

    #[test]
    fn lowered_statements_agree_with_the_interpreter() {
        // Every statement of Figure 2, evaluated at several iterations on
        // fresh memory, must produce exactly what `eval_expr` produces.
        let (p, layout) = figure2_layout();
        let imem = Memory::for_program(&p, 8, 8, 0);
        let kmem = KernelMemory::new(layout);
        let data = {
            // Clone the buffer through the public accessor surface.
            let mut v = Vec::with_capacity(layout.cells());
            for k in 0..layout.arrays {
                for i in -layout.halo..layout.rows - layout.halo {
                    for j in -layout.halo..layout.cols - layout.halo {
                        v.push(kmem.get(k, i, j));
                    }
                }
            }
            v
        };
        let mut regs = [0i64; MAX_REGS];
        for l in &p.loops {
            for s in &l.stmts {
                let c = lower_stmt(&layout, s).unwrap();
                for (i, j) in [(0, 0), (3, 5), (8, 8), (1, 7)] {
                    let cur = layout.cursor(i, j) as isize;
                    let got = eval_compiled(&c.instrs, &mut regs, |d| data[(cur + d) as usize]);
                    assert_eq!(
                        got,
                        eval_expr(&imem, &s.rhs, i, j),
                        "{}: ({i},{j})",
                        l.label
                    );
                }
            }
        }
    }

    #[test]
    fn deep_right_nesting_is_rejected_not_miscompiled() {
        // Right-leaning chains need one slot per level; past MAX_REGS the
        // lowering must fail typed.
        let mut e = Expr::Const(1);
        for _ in 0..(MAX_REGS + 4) {
            e = Expr::bin(BinOp::Add, Expr::Ref(ArrayRef::new(0, 0, 0)), e);
        }
        let layout = Layout {
            arrays: 1,
            halo: 0,
            rows: 4,
            cols: 4,
        };
        let s = Stmt {
            lhs: ArrayRef::new(0, 0, 0),
            rhs: e,
        };
        assert!(lower_stmt(&layout, &s).is_err());
        // Left-leaning chains of any length reuse two slots and must pass.
        let mut e = Expr::Const(1);
        for _ in 0..(MAX_REGS * 4) {
            e = Expr::bin(BinOp::Add, e, Expr::Ref(ArrayRef::new(0, 0, 0)));
        }
        let s = Stmt {
            lhs: ArrayRef::new(0, 0, 0),
            rhs: e,
        };
        let c = lower_stmt(&layout, &s).unwrap();
        assert!(c.regs <= 2, "left chain used {} regs", c.regs);
    }

    #[test]
    fn loop_ranges_follow_the_retiming_offset() {
        let (p, layout) = figure2_layout();
        let r = IVec2::new(-1, -1);
        let cl = lower_loop(&layout, &p.loops[3].stmts, r, 8, 8).unwrap();
        // 0 <= fi - 1 <= 8  =>  fi in [1, 9].
        assert_eq!((cl.rows.lo, cl.rows.hi), (1, 9));
        assert_eq!((cl.cols.lo, cl.cols.hi), (1, 9));
        assert_eq!(cl.stmts.len(), p.loops[3].stmts.len());
    }
}
