//! Dense flat memory for compiled kernels.
//!
//! `mdf_sim::Memory` stores one halo-extended [`mdf_sim::Array2`] per
//! array, and every access re-derives `(i - lo_i) * cols + (j - lo_j)`
//! behind a bounds `debug_assert`. The kernel instead allocates **one**
//! contiguous `Vec<i64>` holding every array plane back to back, all with
//! the same extent, so a compiled instruction reaches any cell of any
//! array as `data[cursor + delta]` for a `delta` precomputed at lowering
//! time.
//!
//! The layout is bit-for-bit the same as the interpreter's — same halo
//! rule (`max_offset`), same row-major plane order, same deterministic
//! [`init_value`] boundary pattern — so [`KernelMemory::fingerprint`]
//! returns **exactly** the value `mdf_sim::Memory::fingerprint` returns
//! for an equal memory image. That equality is the kernel's differential
//! oracle contract, enforced by `tests/` and the fuzzer.

use mdf_ir::ast::Program;
use mdf_sim::array2::init_value;

/// The shared shape of every array plane in a kernel's flat buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Number of arrays (= number of planes).
    pub arrays: usize,
    /// Halo width; planes cover `[-halo, n+halo] x [-halo, m+halo]`.
    pub halo: i64,
    /// Rows per plane (`n + 2*halo + 1`).
    pub rows: i64,
    /// Columns per plane (`m + 2*halo + 1`).
    pub cols: i64,
}

impl Layout {
    /// The layout the interpreter would use for `p` at bounds `(n, m)`
    /// (same halo rule as `mdf_sim::Memory::for_program`).
    pub fn for_program(p: &Program, n: i64, m: i64) -> Layout {
        let halo = p.max_offset();
        Layout {
            arrays: p.arrays.len(),
            halo,
            rows: n + 2 * halo + 1,
            cols: m + 2 * halo + 1,
        }
    }

    /// Cells per plane.
    pub fn plane(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// Total cells across all planes.
    pub fn cells(&self) -> usize {
        self.arrays * self.plane()
    }

    /// The *cursor* of cell `(i, j)`: its linear index within a plane.
    /// Compiled code adds per-reference deltas (plane base + subscript
    /// offset) to a cursor instead of calling this per access.
    pub fn cursor(&self, i: i64, j: i64) -> usize {
        debug_assert!(
            i >= -self.halo
                && i < self.rows - self.halo
                && j >= -self.halo
                && j < self.cols - self.halo,
            "cursor ({i},{j}) outside layout"
        );
        ((i + self.halo) * self.cols + (j + self.halo)) as usize
    }

    /// The linear delta a reference to array `k` at subscript offset
    /// `(di, dj)` adds to the accessing statement's cursor.
    pub fn delta(&self, k: usize, di: i64, dj: i64) -> isize {
        (k as i64 * self.rows * self.cols + di * self.cols + dj) as isize
    }
}

/// The flat memory image of one kernel execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelMemory {
    layout: Layout,
    data: Vec<i64>,
}

impl KernelMemory {
    /// Allocates and initializes memory for `layout`, filling every cell
    /// with the interpreter's deterministic boundary pattern.
    pub fn new(layout: Layout) -> KernelMemory {
        let mut data = Vec::with_capacity(layout.cells());
        for k in 0..layout.arrays {
            for i in -layout.halo..layout.rows - layout.halo {
                for j in -layout.halo..layout.cols - layout.halo {
                    data.push(init_value(k, i, j));
                }
            }
        }
        KernelMemory { layout, data }
    }

    /// The layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Reads array `k` at `(i, j)` (tests and reporting; compiled code
    /// never calls this).
    pub fn get(&self, k: usize, i: i64, j: i64) -> i64 {
        self.data[(self.layout.cursor(i, j) as isize + self.layout.delta(k, 0, 0)) as usize]
    }

    /// The whole buffer, for the execution engine.
    pub(crate) fn data_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Fingerprint of the whole memory image — **identical** to
    /// `mdf_sim::Memory::fingerprint` on an equal image: the same
    /// per-plane FNV fold (`Array2::fingerprint`) combined the same way.
    pub fn fingerprint(&self) -> u64 {
        let plane = self.layout.plane();
        let mut h: u64 = 14695981039346656037;
        for k in 0..self.layout.arrays {
            let mut a: u64 = 0xcbf2_9ce4_8422_2325;
            for &v in &self.data[k * plane..(k + 1) * plane] {
                a ^= v as u64;
                a = a.wrapping_mul(0x100_0000_01b3);
            }
            h ^= a;
            h = h.wrapping_mul(1099511628211);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_ir::samples::figure2_program;
    use mdf_sim::Memory;

    #[test]
    fn layout_matches_interpreter_extents() {
        let p = figure2_program();
        let (n, m) = (10, 7);
        let layout = Layout::for_program(&p, n, m);
        let mem = Memory::for_program(&p, n, m, 0);
        let ((lo_i, hi_i), (lo_j, hi_j)) = mem.array(0).extent();
        assert_eq!(lo_i, -layout.halo);
        assert_eq!(hi_i, layout.rows - layout.halo - 1);
        assert_eq!(lo_j, -layout.halo);
        assert_eq!(hi_j, layout.cols - layout.halo - 1);
        assert_eq!(layout.arrays, p.arrays.len());
    }

    #[test]
    fn fresh_memory_fingerprint_equals_interpreter_fingerprint() {
        // The whole oracle contract in one assert: untouched kernel memory
        // and untouched interpreter memory hash identically.
        let p = figure2_program();
        for (n, m) in [(0, 0), (3, 5), (12, 9)] {
            let layout = Layout::for_program(&p, n, m);
            let kmem = KernelMemory::new(layout);
            let imem = Memory::for_program(&p, n, m, 0);
            assert_eq!(kmem.fingerprint(), imem.fingerprint(), "bounds ({n},{m})");
        }
    }

    #[test]
    fn cursor_delta_arithmetic_reaches_the_right_cells() {
        let p = figure2_program();
        let layout = Layout::for_program(&p, 6, 6);
        let kmem = KernelMemory::new(layout);
        // a[i-2][j+1] of array 3 from iteration (2, 3), via cursor + delta.
        let cur = layout.cursor(2, 3) as isize;
        let d = layout.delta(3, -2, 1);
        assert_eq!(kmem.data[(cur + d) as usize], init_value(3, 0, 4));
        assert_eq!(kmem.get(3, 0, 4), init_value(3, 0, 4));
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let p = figure2_program();
        let layout = Layout::for_program(&p, 4, 4);
        let mut kmem = KernelMemory::new(layout);
        let f0 = kmem.fingerprint();
        let idx = (layout.cursor(1, 1) as isize + layout.delta(2, 0, 0)) as usize;
        kmem.data_mut()[idx] ^= 1;
        assert_ne!(f0, kmem.fingerprint());
    }
}
