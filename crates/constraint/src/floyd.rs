//! Floyd–Warshall all-pairs shortest paths.
//!
//! `O(|V|^3)` and allocation-heavy — used only as an independent oracle for
//! property-testing the Bellman–Ford and SPFA engines, never on the hot
//! path.

use crate::graph::ConstraintGraph;
use crate::weight::Weight;

/// All-pairs shortest path matrix; `dist[u][v] = None` means unreachable.
/// Returns `Err(())` when any negative cycle exists (detected as a negative
/// diagonal entry).
#[allow(clippy::result_unit_err, clippy::needless_range_loop)]
pub fn all_pairs_shortest_paths<W: Weight>(
    g: &ConstraintGraph<W>,
) -> Result<Vec<Vec<Option<W>>>, ()> {
    let n = g.vertex_count();
    let mut dist: Vec<Vec<Option<W>>> = vec![vec![None; n]; n];
    for (v, row) in dist.iter_mut().enumerate() {
        row[v] = Some(W::ZERO);
    }
    for e in g.edges() {
        let entry = &mut dist[e.src][e.dst];
        if entry.is_none_or(|d| e.weight < d) {
            *entry = Some(e.weight);
        }
    }
    for k in 0..n {
        for i in 0..n {
            let Some(dik) = dist[i][k] else { continue };
            for j in 0..n {
                let Some(dkj) = dist[k][j] else { continue };
                let cand = dik + dkj;
                if dist[i][j].is_none_or(|d| cand < d) {
                    dist[i][j] = Some(cand);
                }
            }
        }
    }
    for (v, row) in dist.iter().enumerate() {
        if row[v].is_some_and(|d| d < W::ZERO) {
            return Err(());
        }
    }
    Ok(dist)
}

/// Difference-constraint solution via Floyd–Warshall (virtual source
/// emulated by taking, for each vertex, the minimum distance from any
/// vertex — every vertex is at distance 0 from the source).
#[allow(clippy::result_unit_err)]
pub fn solve_difference_constraints_floyd<W: Weight>(g: &ConstraintGraph<W>) -> Result<Vec<W>, ()> {
    let ap = all_pairs_shortest_paths(g)?;
    let n = g.vertex_count();
    let mut out = Vec::with_capacity(n);
    for v in 0..n {
        let mut best = W::ZERO;
        for row in ap.iter() {
            if let Some(d) = row[v] {
                if d < best {
                    best = d;
                }
            }
        }
        out.push(best);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::solve_difference_constraints;
    use crate::graph::ConstraintGraph;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;

    #[test]
    fn agrees_with_bellman_ford() {
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(4);
        g.add_edge(0, 1, v2(1, 1));
        g.add_edge(1, 2, v2(0, -2));
        g.add_edge(2, 3, v2(0, -1));
        g.add_edge(0, 2, v2(0, 1));
        g.add_edge(3, 0, v2(2, 1));
        let bf = solve_difference_constraints(&g).expect_feasible("bf");
        let fw = solve_difference_constraints_floyd(&g).expect("feasible");
        assert_eq!(bf, fw);
    }

    #[test]
    fn detects_negative_cycle() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(2);
        g.add_edge(0, 1, -2);
        g.add_edge(1, 0, 1);
        assert!(all_pairs_shortest_paths(&g).is_err());
        assert!(solve_difference_constraints_floyd(&g).is_err());
    }

    #[test]
    fn unreachable_pairs_are_none() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        g.add_edge(0, 1, 4);
        let ap = all_pairs_shortest_paths(&g).unwrap();
        assert_eq!(ap[0][1], Some(4));
        assert_eq!(ap[1][0], None);
        assert_eq!(ap[2][0], None);
        assert_eq!(ap[2][2], Some(0));
    }

    #[test]
    fn parallel_edges_take_minimum() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(2);
        g.add_edge(0, 1, 9);
        g.add_edge(0, 1, 3);
        let ap = all_pairs_shortest_paths(&g).unwrap();
        assert_eq!(ap[0][1], Some(3));
    }
}
