//! High-level difference-constraint systems ("Problem ILP" / "Problem
//! 2-ILP" of Section 2.4).
//!
//! A [`DifferenceSystem`] accumulates constraints of the form
//! `x_j - x_i <= w` (and equalities, encoded as opposing inequalities),
//! lowers them onto a [`ConstraintGraph`] and solves with a selectable
//! engine. Feasibility follows Theorems 2.2/2.3: the system has a solution
//! iff the constraint graph has no cycle of (lexicographically) negative
//! weight, and shortest distances from the virtual source are a solution.

use mdf_graph::budget::BudgetMeter;
use mdf_graph::error::MdfError;
use mdf_trace::Span;

use crate::bellman_ford::{
    solve_difference_constraints, solve_difference_constraints_traced, Solution,
};
use crate::dag::solve_difference_constraints_dag;
use crate::graph::{ConstraintGraph, NegativeCycle};
use crate::scc::solve_difference_constraints_scc;
use crate::spfa::solve_difference_constraints_spfa;
use crate::weight::Weight;

/// Which shortest-path engine to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Classic edge-list Bellman–Ford (the paper's Algorithm 1).
    #[default]
    BellmanFord,
    /// Queue-based Bellman–Ford.
    Spfa,
    /// Topological-order sweep; falls back to Bellman–Ford when the
    /// constraint graph turns out to be cyclic.
    DagOrBellmanFord,
    /// Strongly-connected-component decomposition: Bellman–Ford per SCC in
    /// topological order.
    SccDecomposed,
}

/// A system of difference constraints over `n` variables.
///
/// ```
/// use mdf_constraint::{DifferenceSystem, Engine};
/// use mdf_graph::v2;
///
/// // The paper's 2-ILP: vector unknowns under the lexicographic order.
/// let mut sys = DifferenceSystem::new(2);
/// sys.add_le(1, 0, v2(0, -2)); // r1 - r0 <= (0,-2)
/// sys.add_le(0, 1, v2(1, 0));  // r0 - r1 <= (1,0)
/// let r = sys.solve(Engine::BellmanFord).unwrap();
/// assert!(r[1] - r[0] <= v2(0, -2));
/// ```
#[derive(Clone, Debug)]
pub struct DifferenceSystem<W> {
    graph: ConstraintGraph<W>,
}

/// Infeasibility witness: the constraint indices (edge ids) of a negative
/// cycle in the lowered graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Infeasible<W> {
    /// The offending cycle.
    pub cycle: NegativeCycle<W>,
}

impl<W: Weight> DifferenceSystem<W> {
    /// Creates a system with `variables` unknowns `x_0 .. x_{n-1}`.
    pub fn new(variables: usize) -> Self {
        DifferenceSystem {
            graph: ConstraintGraph::new(variables),
        }
    }

    /// Adds `x_j - x_i <= w`; returns the constraint's edge index.
    pub fn add_le(&mut self, j: usize, i: usize, w: W) -> usize {
        self.graph.add_edge(i, j, w)
    }

    /// Adds `x_j - x_i == w` (two opposing inequalities).
    pub fn add_eq(&mut self, j: usize, i: usize, w: W) {
        self.graph.add_edge(i, j, w);
        self.graph.add_edge(j, i, -w);
    }

    /// Number of variables.
    pub fn variables(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of constraints (edges).
    pub fn constraints(&self) -> usize {
        self.graph.edge_count()
    }

    /// Read-only access to the lowered constraint graph.
    pub fn graph(&self) -> &ConstraintGraph<W> {
        &self.graph
    }

    /// Solves the system with the requested engine. On success the returned
    /// assignment satisfies every constraint (asserted in debug builds).
    pub fn solve(&self, engine: Engine) -> Result<Vec<W>, Infeasible<W>> {
        let solution = match engine {
            Engine::BellmanFord => solve_difference_constraints(&self.graph),
            Engine::Spfa => solve_difference_constraints_spfa(&self.graph),
            Engine::DagOrBellmanFord => match solve_difference_constraints_dag(&self.graph) {
                Some(dist) => Solution::Feasible { dist },
                None => solve_difference_constraints(&self.graph),
            },
            Engine::SccDecomposed => solve_difference_constraints_scc(&self.graph),
        };
        match solution {
            Solution::Feasible { dist } => {
                debug_assert!(self.check(&dist), "engine produced an invalid solution");
                Ok(dist)
            }
            Solution::Infeasible { cycle } => Err(Infeasible { cycle }),
        }
    }

    /// Solves the system under a resource budget. The outer `Result`
    /// reports abnormal termination (`MdfError::BudgetExceeded` when the
    /// meter's solver-round or wall-clock limit trips); the inner one is
    /// ordinary feasibility, as in [`DifferenceSystem::solve`]. Budgeted
    /// solving always runs the metered Bellman–Ford engine — it is the
    /// canonical engine, and the only one whose `O(|V||E|)` round
    /// structure maps directly onto the budget's unit of account.
    #[allow(clippy::type_complexity)]
    pub fn solve_budgeted(
        &self,
        meter: &mut BudgetMeter,
    ) -> Result<Result<Vec<W>, Infeasible<W>>, MdfError> {
        self.solve_traced(meter, &Span::disabled())
    }

    /// As [`DifferenceSystem::solve_budgeted`], also reporting system shape
    /// (`constraint.systems`, `constraint.variables`,
    /// `constraint.constraints`) and the relaxation counters of the
    /// underlying Bellman–Ford run onto `span`.
    #[allow(clippy::type_complexity)]
    pub fn solve_traced(
        &self,
        meter: &mut BudgetMeter,
        span: &Span,
    ) -> Result<Result<Vec<W>, Infeasible<W>>, MdfError> {
        span.add("constraint.systems", 1);
        span.add("constraint.variables", self.variables() as u64);
        span.add("constraint.constraints", self.constraints() as u64);
        match solve_difference_constraints_traced(&self.graph, meter, span)? {
            Solution::Feasible { dist } => {
                debug_assert!(self.check(&dist), "engine produced an invalid solution");
                Ok(Ok(dist))
            }
            Solution::Infeasible { cycle } => Ok(Err(Infeasible { cycle })),
        }
    }

    /// Verifies an assignment against every constraint.
    pub fn check(&self, assignment: &[W]) -> bool {
        assignment.len() == self.variables()
            && self
                .graph
                .edges()
                .iter()
                .all(|e| assignment[e.dst] - assignment[e.src] <= e.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;
    use proptest::prelude::*;

    #[test]
    fn equalities_are_honored() {
        let mut sys: DifferenceSystem<i64> = DifferenceSystem::new(3);
        sys.add_eq(1, 0, 4);
        sys.add_le(2, 1, -1);
        let x = sys.solve(Engine::BellmanFord).unwrap();
        assert_eq!(x[1] - x[0], 4);
        assert!(x[2] - x[1] <= -1);
        assert!(sys.check(&x));
    }

    #[test]
    fn contradictory_equalities_rejected() {
        let mut sys: DifferenceSystem<i64> = DifferenceSystem::new(2);
        sys.add_eq(1, 0, 4);
        sys.add_eq(1, 0, 5);
        let err = sys.solve(Engine::Spfa).unwrap_err();
        assert!(err.cycle.verify(sys.graph()));
    }

    #[test]
    fn all_engines_agree_on_2ilp() {
        let mut sys: DifferenceSystem<IVec2> = DifferenceSystem::new(4);
        sys.add_le(1, 0, v2(1, 1));
        sys.add_le(2, 1, v2(0, -2));
        sys.add_le(3, 2, v2(0, -1));
        sys.add_le(2, 0, v2(0, 1));
        sys.add_le(0, 3, v2(2, 1));
        let bf = sys.solve(Engine::BellmanFord).unwrap();
        let spfa = sys.solve(Engine::Spfa).unwrap();
        let dag = sys.solve(Engine::DagOrBellmanFord).unwrap();
        assert_eq!(bf, spfa);
        // The system is cyclic, so DagOrBellmanFord falls back and agrees.
        assert_eq!(bf, dag);
    }

    #[test]
    fn budgeted_solve_matches_plain_solve() {
        use mdf_graph::budget::Budget;
        let mut sys: DifferenceSystem<IVec2> = DifferenceSystem::new(4);
        sys.add_le(1, 0, v2(1, 1));
        sys.add_le(2, 1, v2(0, -2));
        sys.add_le(3, 2, v2(0, -1));
        sys.add_le(0, 3, v2(2, 1));
        let mut meter = Budget::unlimited().meter();
        let budgeted = sys.solve_budgeted(&mut meter).unwrap().unwrap();
        let plain = sys.solve(Engine::BellmanFord).unwrap();
        assert_eq!(budgeted, plain);
    }

    #[test]
    fn budgeted_solve_trips_on_round_limit() {
        use mdf_graph::budget::Budget;
        use mdf_graph::error::{BudgetResource, MdfError};
        // A long chain added in reverse order needs one round per vertex.
        let n = 64;
        let mut sys: DifferenceSystem<i64> = DifferenceSystem::new(n);
        for v in (0..n - 1).rev() {
            sys.add_le(v + 1, v, -1);
        }
        let mut meter = Budget::unlimited().with_max_solver_rounds(3).meter();
        match sys.solve_budgeted(&mut meter) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::SolverRounds,
                limit: 3,
                ..
            }) => {}
            other => panic!("expected a round-budget trip, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_solve_still_reports_infeasibility() {
        use mdf_graph::budget::Budget;
        let mut sys: DifferenceSystem<i64> = DifferenceSystem::new(2);
        sys.add_eq(1, 0, 4);
        sys.add_eq(1, 0, 5);
        let mut meter = Budget::unlimited().meter();
        let inf = sys.solve_budgeted(&mut meter).unwrap().unwrap_err();
        assert!(inf.cycle.verify(sys.graph()));
    }

    proptest! {
        /// Random scalar systems: engines agree on feasibility, and any
        /// feasible solution passes `check`.
        #[test]
        fn engines_agree_on_random_systems(
            n in 1usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8, -10i64..10), 0..24)
        ) {
            let mut sys: DifferenceSystem<i64> = DifferenceSystem::new(n);
            for (i, j, w) in edges {
                sys.add_le(j % n, i % n, w);
            }
            let bf = sys.solve(Engine::BellmanFord);
            let spfa = sys.solve(Engine::Spfa);
            let dag = sys.solve(Engine::DagOrBellmanFord);
            let scc = sys.solve(Engine::SccDecomposed);
            prop_assert_eq!(bf.is_ok(), spfa.is_ok());
            prop_assert_eq!(bf.is_ok(), dag.is_ok());
            prop_assert_eq!(bf.is_ok(), scc.is_ok());
            if let (Ok(a), Ok(b)) = (&bf, &scc) {
                prop_assert_eq!(a, b);
            }
            if let Ok(x) = &bf {
                prop_assert!(sys.check(x));
            }
            if let Ok(x) = &spfa {
                prop_assert!(sys.check(x));
            }
            if let Ok(x) = &dag {
                prop_assert!(sys.check(x));
            }
            if let Err(inf) = &bf {
                prop_assert!(inf.cycle.verify(sys.graph()));
            }
        }

        /// Random 2-D systems agree with the Floyd–Warshall oracle.
        #[test]
        fn bellman_ford_matches_floyd_oracle(
            n in 1usize..7,
            edges in proptest::collection::vec(
                (0usize..7, 0usize..7, -4i64..5, -4i64..5), 0..20)
        ) {
            let mut sys: DifferenceSystem<IVec2> = DifferenceSystem::new(n);
            for (i, j, x, y) in edges {
                sys.add_le(j % n, i % n, v2(x, y));
            }
            let bf = sys.solve(Engine::BellmanFord);
            let fw = crate::floyd::solve_difference_constraints_floyd(sys.graph());
            prop_assert_eq!(bf.is_ok(), fw.is_ok());
            if let (Ok(a), Ok(b)) = (bf, fw) {
                prop_assert_eq!(a, b);
            }
        }
    }
}
