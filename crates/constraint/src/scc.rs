//! SCC-decomposed difference-constraint solving.
//!
//! Shortest paths from the virtual source cross strongly connected
//! components only in topological order, so the system can be solved one
//! SCC at a time: Bellman–Ford iterates within each component (where the
//! `O(|V||E|)` behaviour lives), and cross-component edges are relaxed
//! exactly once. On the mostly-acyclic constraint graphs produced by real
//! loop nests this replaces a global `|V|`-round scan with many small
//! ones; `bench_ablation` quantifies the win. Negative cycles live inside
//! SCCs and are detected there (the certificate is recovered with the
//! classic engine, as in SPFA).

use crate::bellman_ford::{solve_difference_constraints, Solution};
use crate::graph::ConstraintGraph;
use crate::weight::Weight;

/// Tarjan's SCC on a [`ConstraintGraph`]; components are returned in
/// *reverse* topological order of the condensation (sinks first).
fn tarjan_sccs<W: Weight>(g: &ConstraintGraph<W>) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root] = next;
        lowlink[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei < g.out_edges(v).len() {
                let eid = g.out_edges(v)[*ei];
                *ei += 1;
                let w = g.edge(eid).dst;
                if index[w] == UNVISITED {
                    index[w] = next;
                    lowlink[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        // Tarjan invariant: the SCC root is still on the stack.
                        #[allow(clippy::expect_used)]
                        let w = stack.pop().expect("tarjan underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Solves the difference-constraint system (implicit zero-weight virtual
/// source) by SCC decomposition. Semantically identical to
/// [`solve_difference_constraints`].
pub fn solve_difference_constraints_scc<W: Weight>(g: &ConstraintGraph<W>) -> Solution<W> {
    let n = g.vertex_count();
    let mut dist: Vec<W> = vec![W::ZERO; n];
    let mut sccs = tarjan_sccs(g);
    sccs.reverse(); // topological order: sources first

    let mut comp_of = vec![0usize; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci;
        }
    }

    for (ci, comp) in sccs.iter().enumerate() {
        // Internal edges of this component.
        let internal: Vec<usize> = comp
            .iter()
            .flat_map(|&v| g.out_edges(v).iter().copied())
            .filter(|&e| comp_of[g.edge(e).dst] == ci)
            .collect();
        // Bellman–Ford within the component.
        let rounds = comp.len();
        let mut converged = false;
        for _ in 0..rounds {
            let mut changed = false;
            for &eid in &internal {
                let e = g.edge(eid);
                let cand = dist[e.src] + e.weight;
                if cand < dist[e.dst] {
                    dist[e.dst] = cand;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if !converged {
            // One more pass: any remaining improvement proves a negative
            // cycle inside this SCC; get the certificate from the classic
            // engine (its predecessor structure is safe to walk).
            let more = internal.iter().any(|&eid| {
                let e = g.edge(eid);
                dist[e.src] + e.weight < dist[e.dst]
            });
            if more {
                let sol = solve_difference_constraints(g);
                debug_assert!(!sol.is_feasible());
                return sol;
            }
        }
        // Push values across out-edges into later components.
        for &v in comp {
            for &eid in g.out_edges(v) {
                let e = g.edge(eid);
                if comp_of[e.dst] != ci {
                    let cand = dist[v] + e.weight;
                    if cand < dist[e.dst] {
                        dist[e.dst] = cand;
                    }
                }
            }
        }
    }
    Solution::Feasible { dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;
    use proptest::prelude::*;

    #[test]
    fn agrees_on_figure5_system() {
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(4);
        g.add_edge(0, 1, v2(1, 1));
        g.add_edge(1, 2, v2(0, -2));
        g.add_edge(2, 3, v2(0, -1));
        g.add_edge(0, 2, v2(0, 1));
        g.add_edge(3, 0, v2(2, 1));
        g.add_edge(2, 2, v2(1, 0));
        let classic = solve_difference_constraints(&g).expect_feasible("bf");
        let scc = solve_difference_constraints_scc(&g).expect_feasible("scc");
        assert_eq!(classic, scc);
    }

    #[test]
    fn detects_negative_cycles() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, -3);
        g.add_edge(2, 1, 2);
        match solve_difference_constraints_scc(&g) {
            Solution::Infeasible { cycle } => {
                assert!(cycle.verify(&g));
                assert_eq!(cycle.total, -1);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn pure_dag_takes_single_passes() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(5);
        for v in 0..4 {
            g.add_edge(v, v + 1, -2);
        }
        let d = solve_difference_constraints_scc(&g).expect_feasible("dag");
        assert_eq!(d, vec![0, -2, -4, -6, -8]);
    }

    proptest! {
        #[test]
        fn matches_classic_engine_on_random_systems(
            n in 1usize..10,
            edges in proptest::collection::vec((0usize..10, 0usize..10, -6i64..7), 0..40)
        ) {
            let mut g: ConstraintGraph<i64> = ConstraintGraph::new(n);
            for (u, v, w) in edges {
                g.add_edge(u % n, v % n, w);
            }
            let classic = solve_difference_constraints(&g);
            let scc = solve_difference_constraints_scc(&g);
            prop_assert_eq!(classic.is_feasible(), scc.is_feasible());
            if let (Solution::Feasible { dist: a }, Solution::Feasible { dist: b }) =
                (classic, scc)
            {
                prop_assert_eq!(a, b);
            }
        }
    }
}
