//! SPFA (queue-based Bellman–Ford).
//!
//! Same asymptotic worst case as the classic edge-list scan, but on the
//! sparse constraint graphs produced by MLDGs it typically touches far
//! fewer edges. Provided as an alternative engine for LLOFRA; the
//! `bench_ablation` benchmark compares the two.
//!
//! Negative cycles are detected by tracking the edge count of each
//! tentative shortest path (`len[v] >= n` is impossible without a negative
//! cycle, since simple paths have at most `n - 1` edges). The infeasibility
//! *certificate* is then extracted by re-running the classic engine, whose
//! predecessor structure after `n` full passes is guaranteed to contain the
//! cycle; SPFA predecessor chains can be stale mid-run and are not safe to
//! walk.

use std::collections::VecDeque;

use crate::bellman_ford::{solve_difference_constraints, Solution};
use crate::graph::ConstraintGraph;
use crate::weight::Weight;

/// Solves the difference-constraint system with an implicit zero-weight
/// virtual source, using SPFA. Semantically identical to
/// [`solve_difference_constraints`].
pub fn solve_difference_constraints_spfa<W: Weight>(g: &ConstraintGraph<W>) -> Solution<W> {
    let n = g.vertex_count();
    let mut dist: Vec<W> = vec![W::ZERO; n];
    let mut len = vec![0usize; n];
    let mut in_queue = vec![true; n];
    let mut queue: VecDeque<usize> = (0..n).collect();

    while let Some(u) = queue.pop_front() {
        in_queue[u] = false;
        for &eid in g.out_edges(u) {
            let e = g.edge(eid);
            let candidate = dist[u] + e.weight;
            if candidate < dist[e.dst] {
                dist[e.dst] = candidate;
                len[e.dst] = len[u] + 1;
                if len[e.dst] >= n {
                    // A tentative shortest path with >= n edges exists only
                    // when a negative cycle does; get the certificate from
                    // the classic engine.
                    let sol = solve_difference_constraints(g);
                    debug_assert!(!sol.is_feasible());
                    return sol;
                }
                if !in_queue[e.dst] {
                    in_queue[e.dst] = true;
                    queue.push_back(e.dst);
                }
            }
        }
    }
    Solution::Feasible { dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;

    #[test]
    fn agrees_with_bellman_ford_on_feasible_system() {
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(4);
        g.add_edge(0, 1, v2(1, 1));
        g.add_edge(1, 2, v2(0, -2));
        g.add_edge(2, 3, v2(0, -1));
        g.add_edge(0, 2, v2(0, 1));
        g.add_edge(3, 0, v2(2, 1));
        g.add_edge(2, 2, v2(1, 0));
        let a = solve_difference_constraints(&g).expect_feasible("bf");
        let b = solve_difference_constraints_spfa(&g).expect_feasible("spfa");
        // Both compute shortest paths from the virtual source, which are
        // unique values (not just any feasible solution).
        assert_eq!(a, b);
    }

    #[test]
    fn detects_negative_cycle() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, -4);
        g.add_edge(2, 1, 3);
        match solve_difference_constraints_spfa(&g) {
            Solution::Infeasible { cycle } => {
                assert!(cycle.verify(&g));
                assert_eq!(cycle.total, -1);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn detects_negative_self_loop() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(2);
        g.add_edge(1, 1, -1);
        assert!(!solve_difference_constraints_spfa(&g).is_feasible());
    }

    #[test]
    fn long_negative_chain_is_feasible() {
        // Long chains of negative edges are fine; only cycles are not.
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(64);
        for v in 0..63 {
            g.add_edge(v, v + 1, -1);
        }
        let dist = solve_difference_constraints_spfa(&g).expect_feasible("chain");
        assert_eq!(dist[63], -63);
    }

    #[test]
    fn empty_graph() {
        let g: ConstraintGraph<i64> = ConstraintGraph::new(0);
        assert!(solve_difference_constraints_spfa(&g).is_feasible());
    }
}
