//! The constraint graph of Section 2.4.
//!
//! An inequality `x_j - x_i <= w_ij` becomes an edge `v_i -> v_j` of weight
//! `w_ij`; shortest paths from a virtual source connected to every vertex by
//! zero-weight edges (Theorem 2.2) are then a feasible assignment, and a
//! negative cycle certifies infeasibility (Theorem 2.3 for the
//! two-dimensional case).

use crate::weight::Weight;

/// A directed, edge-weighted graph specialized for difference-constraint
/// solving. Vertices are dense `usize` indices.
#[derive(Clone, Debug)]
pub struct ConstraintGraph<W> {
    vertex_count: usize,
    edges: Vec<CEdge<W>>,
    out_adj: Vec<Vec<usize>>,
}

/// One weighted edge (one inequality).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CEdge<W> {
    /// Tail (`v_i` of `x_j - x_i <= w`).
    pub src: usize,
    /// Head (`v_j`).
    pub dst: usize,
    /// Bound `w`.
    pub weight: W,
}

impl<W: Weight> ConstraintGraph<W> {
    /// Creates a graph with `vertex_count` vertices and no edges.
    pub fn new(vertex_count: usize) -> Self {
        ConstraintGraph {
            vertex_count,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); vertex_count],
        }
    }

    /// Adds the edge for `x_dst - x_src <= weight`; returns its index.
    pub fn add_edge(&mut self, src: usize, dst: usize, weight: W) -> usize {
        assert!(src < self.vertex_count && dst < self.vertex_count);
        let id = self.edges.len();
        self.edges.push(CEdge { src, dst, weight });
        self.out_adj[src].push(id);
        id
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[CEdge<W>] {
        &self.edges
    }

    /// Edge by index.
    #[inline]
    pub fn edge(&self, id: usize) -> &CEdge<W> {
        &self.edges[id]
    }

    /// Indices of the edges leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: usize) -> &[usize] {
        &self.out_adj[v]
    }

    /// Topological order of the vertices, or `None` if the graph is cyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.vertex_count];
        for e in &self.edges {
            indeg[e.dst] += 1;
        }
        let mut stack: Vec<usize> = (0..self.vertex_count).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.vertex_count);
        while let Some(v) = stack.pop() {
            order.push(v);
            for &eid in &self.out_adj[v] {
                let w = self.edges[eid].dst;
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    stack.push(w);
                }
            }
        }
        (order.len() == self.vertex_count).then_some(order)
    }

    /// Sum of weights along a list of edge indices.
    pub fn weight_sum(&self, edge_ids: &[usize]) -> W {
        edge_ids
            .iter()
            .fold(W::ZERO, |acc, &e| acc + self.edges[e].weight)
    }
}

/// A certificate of infeasibility: a cycle whose total weight is negative
/// (lexicographically, for vector weights).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NegativeCycle<W> {
    /// Edge indices of the cycle, in traversal order.
    pub edges: Vec<usize>,
    /// The (negative) total weight.
    pub total: W,
}

impl<W: Weight> NegativeCycle<W> {
    /// The vertex sequence of the cycle (one entry per edge, starting at the
    /// tail of the first edge).
    pub fn vertices(&self, g: &ConstraintGraph<W>) -> Vec<usize> {
        self.edges.iter().map(|&e| g.edge(e).src).collect()
    }

    /// Verifies the certificate against a graph: edges must chain into a
    /// closed walk and their weights must sum to a negative total.
    pub fn verify(&self, g: &ConstraintGraph<W>) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        for w in self.edges.windows(2) {
            if g.edge(w[0]).dst != g.edge(w[1]).src {
                return false;
            }
        }
        let first = g.edge(self.edges[0]).src;
        let last = g.edge(self.edges[self.edges.len() - 1]).dst;
        first == last && g.weight_sum(&self.edges) == self.total && self.total < W::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;

    #[test]
    fn build_and_query() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        let e0 = g.add_edge(0, 1, 5);
        let e1 = g.add_edge(1, 2, -2);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(e0).weight, 5);
        assert_eq!(g.out_edges(1), &[e1]);
        assert_eq!(g.weight_sum(&[e0, e1]), 3);
    }

    #[test]
    fn topological_order_dag_and_cycle() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        g.add_edge(0, 1, 0);
        g.add_edge(1, 2, 0);
        assert!(g.topological_order().is_some());
        g.add_edge(2, 0, 0);
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn negative_cycle_verification() {
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(2);
        let e0 = g.add_edge(0, 1, v2(0, -2));
        let e1 = g.add_edge(1, 0, v2(0, 1));
        let good = NegativeCycle {
            edges: vec![e0, e1],
            total: v2(0, -1),
        };
        assert!(good.verify(&g));
        assert_eq!(good.vertices(&g), vec![0, 1]);
        let bad_total = NegativeCycle {
            edges: vec![e0, e1],
            total: v2(0, -2),
        };
        assert!(!bad_total.verify(&g));
        let not_closed = NegativeCycle {
            edges: vec![e0],
            total: v2(0, -2),
        };
        assert!(!not_closed.verify(&g));
    }
}
