//! The weight algebra for shortest-path computations.
//!
//! The paper solves its retiming problems with two instantiations of the
//! Bellman–Ford algorithm: classic scalar weights (`i64`, used by the two
//! per-coordinate phases of Algorithm 4) and lexicographically ordered
//! vector weights (`IVec2`, used by Algorithm 1 / the 2-ILP model of
//! Section 2.4). Both are *linearly ordered abelian groups*: a total order
//! compatible with addition (`a <= b` implies `a + c <= b + c`). That is
//! exactly the property Bellman–Ford relaxation needs, so the solver is
//! written once against this trait.

use std::fmt::Debug;
use std::ops::{Add, Neg, Sub};

use mdf_graph::nvec::IVecN;
use mdf_graph::vec2::IVec2;

/// A linearly ordered abelian group: the algebra of edge weights.
///
/// Laws (checked by property tests in this crate):
/// * `Ord` is a total order;
/// * `(+, ZERO, -)` is an abelian group;
/// * translation invariance: `a <= b` implies `a + c <= b + c`.
pub trait Weight:
    Copy + Ord + Eq + Debug + Add<Output = Self> + Sub<Output = Self> + Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
}

impl Weight for i64 {
    const ZERO: i64 = 0;
}

impl Weight for IVec2 {
    const ZERO: IVec2 = IVec2::ZERO;
}

impl<const N: usize> Weight for IVecN<N> {
    const ZERO: IVecN<N> = IVecN::ZERO;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;

    fn check_group_laws<W: Weight>(samples: &[W]) {
        for &a in samples {
            assert_eq!(a + W::ZERO, a);
            assert_eq!(a + -a, W::ZERO);
            for &b in samples {
                assert_eq!(a + b, b + a);
                for &c in samples {
                    assert_eq!((a + b) + c, a + (b + c));
                    if a <= b {
                        assert!(a + c <= b + c, "translation invariance");
                    }
                }
            }
        }
    }

    #[test]
    fn i64_is_a_weight() {
        check_group_laws::<i64>(&[-3, 0, 1, 7, -100]);
    }

    #[test]
    fn ivec2_is_a_weight() {
        check_group_laws::<IVec2>(&[v2(0, 0), v2(1, -1), v2(-2, 5), v2(0, -3), v2(3, 3)]);
    }

    #[test]
    fn ivecn_is_a_weight() {
        use mdf_graph::nvec::vn;
        check_group_laws::<IVecN<3>>(&[
            vn([0, 0, 0]),
            vn([1, -1, 2]),
            vn([-2, 5, 0]),
            vn([0, 0, -3]),
        ]);
    }
}
