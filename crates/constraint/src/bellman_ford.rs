//! Bellman–Ford over an arbitrary [`Weight`] algebra.
//!
//! Instantiated at `W = IVec2` this is exactly the paper's Algorithm 1
//! ("the two-dimensional Bellman–Ford algorithm"); at `W = i64` it is the
//! classic algorithm used by phases one and two of Algorithm 4.
//!
//! Two entry points:
//! * [`solve_difference_constraints`] — shortest paths from an *implicit*
//!   virtual source `v0` connected to every vertex with zero weight
//!   (Theorem 2.2/2.3). The returned distances are a feasible solution of
//!   the difference-constraint system, or a [`NegativeCycle`] certificate
//!   is produced.
//! * [`shortest_paths_from`] — single-source variant with unreachable
//!   vertices reported as `None`.

use mdf_graph::budget::BudgetMeter;
use mdf_graph::error::MdfError;
use mdf_trace::Span;

use crate::graph::{ConstraintGraph, NegativeCycle};
use crate::weight::Weight;

/// Outcome of a difference-constraint solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Solution<W> {
    /// The system is feasible; `dist[v]` is the canonical (shortest-path)
    /// solution, which is the lexicographically largest component-wise
    /// non-positive solution.
    Feasible {
        /// One value per vertex.
        dist: Vec<W>,
    },
    /// The system is infeasible; the cycle certifies it.
    Infeasible {
        /// A cycle of negative total weight.
        cycle: NegativeCycle<W>,
    },
}

impl<W: Weight> Solution<W> {
    /// Unwraps the feasible distances, panicking with the cycle otherwise.
    pub fn expect_feasible(self, msg: &str) -> Vec<W> {
        match self {
            Solution::Feasible { dist } => dist,
            Solution::Infeasible { cycle } => panic!("{msg}: negative cycle {cycle:?}"),
        }
    }

    /// `true` when feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Solution::Feasible { .. })
    }
}

/// Relaxation statistics (exposed for the complexity benchmarks; the
/// `O(|V||E|)` bound of Section 2.4 shows up directly in `relaxation_rounds`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of full passes over the edge list actually executed.
    pub rounds: usize,
    /// Number of successful relaxations.
    pub relaxations: usize,
}

/// Solves `x_dst - x_src <= w` for all edges, with every vertex implicitly
/// reachable from a zero-weight virtual source.
pub fn solve_difference_constraints<W: Weight>(g: &ConstraintGraph<W>) -> Solution<W> {
    solve_difference_constraints_with_stats(g).0
}

/// As [`solve_difference_constraints`], also returning relaxation counters.
pub fn solve_difference_constraints_with_stats<W: Weight>(
    g: &ConstraintGraph<W>,
) -> (Solution<W>, SolveStats) {
    let n = g.vertex_count();
    // Virtual source: dist starts at ZERO everywhere, exactly as if v0 had a
    // zero-weight edge to every vertex (LLOFRA's construction).
    let mut dist: Vec<W> = vec![W::ZERO; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut stats = SolveStats::default();

    for _round in 0..n {
        stats.rounds += 1;
        let mut changed = false;
        for (eid, e) in g.edges().iter().enumerate() {
            let candidate = dist[e.src] + e.weight;
            if candidate < dist[e.dst] {
                dist[e.dst] = candidate;
                pred[e.dst] = Some(eid);
                stats.relaxations += 1;
                changed = true;
            }
        }
        if !changed {
            return (Solution::Feasible { dist }, stats);
        }
    }
    // A relaxation occurred in the n-th pass: a negative cycle exists. Run
    // one more full pass, *applying* the relaxations, and walk back from a
    // vertex updated in it: such a vertex's predecessor chain is current
    // all the way (a vertex can only be re-improved via predecessors that
    // were themselves improved after round one), so following it n steps
    // provably lands on the cycle.
    let mut witness = None;
    for (eid, e) in g.edges().iter().enumerate() {
        let candidate = dist[e.src] + e.weight;
        if candidate < dist[e.dst] {
            dist[e.dst] = candidate;
            pred[e.dst] = Some(eid);
            witness = Some(e.dst);
        }
    }
    // An n-th relaxation pass only runs because an edge improved, so a
    // witness was recorded.
    #[allow(clippy::expect_used)]
    let start = witness.expect("relaxation in pass n but no improvable edge found");
    let cycle = extract_cycle(g, &pred, start);
    (Solution::Infeasible { cycle }, stats)
}

/// As [`solve_difference_constraints`], but metered: every full pass over
/// the edge list charges one solver round against `meter`, which also
/// re-checks the wall-clock deadline. Adversarially large systems
/// (Bellman–Ford is `O(|V||E|)`) therefore fail fast with
/// [`MdfError::BudgetExceeded`] instead of stalling the pipeline.
pub fn solve_difference_constraints_budgeted<W: Weight>(
    g: &ConstraintGraph<W>,
    meter: &mut BudgetMeter,
) -> Result<Solution<W>, MdfError> {
    solve_difference_constraints_traced(g, meter, &Span::disabled())
}

/// As [`solve_difference_constraints_budgeted`], also reporting relaxation
/// counters onto `span`: `constraint.rounds` (full passes over the edge
/// list), `constraint.relaxations` (successful distance improvements) and
/// `constraint.negative-cycles` (1 when infeasible). Counters accumulate
/// in locals and are reported once at the end, so the hot loop is
/// identical whether tracing is enabled or not.
pub fn solve_difference_constraints_traced<W: Weight>(
    g: &ConstraintGraph<W>,
    meter: &mut BudgetMeter,
    span: &Span,
) -> Result<Solution<W>, MdfError> {
    let n = g.vertex_count();
    let mut dist: Vec<W> = vec![W::ZERO; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut rounds: u64 = 0;
    let mut relaxations: u64 = 0;

    let report = |span: &Span, rounds: u64, relaxations: u64, cycles: u64| {
        span.add("constraint.rounds", rounds);
        span.add("constraint.relaxations", relaxations);
        if cycles > 0 {
            span.add("constraint.negative-cycles", cycles);
        }
    };

    for _round in 0..n {
        meter.chaos_site("constraint.solve.round")?;
        meter.charge_rounds(1)?;
        rounds += 1;
        let mut changed = false;
        for (eid, e) in g.edges().iter().enumerate() {
            let candidate = dist[e.src] + e.weight;
            if candidate < dist[e.dst] {
                dist[e.dst] = candidate;
                pred[e.dst] = Some(eid);
                relaxations += 1;
                changed = true;
            }
        }
        if !changed {
            report(span, rounds, relaxations, 0);
            return Ok(Solution::Feasible { dist });
        }
    }
    // Negative cycle: one more applying pass yields a witness vertex whose
    // predecessor chain provably reaches the cycle (see the unbudgeted
    // solver for the argument).
    meter.chaos_site("constraint.solve.round")?;
    meter.charge_rounds(1)?;
    rounds += 1;
    let mut witness = None;
    for (eid, e) in g.edges().iter().enumerate() {
        let candidate = dist[e.src] + e.weight;
        if candidate < dist[e.dst] {
            dist[e.dst] = candidate;
            pred[e.dst] = Some(eid);
            relaxations += 1;
            witness = Some(e.dst);
        }
    }
    // An n-th relaxation pass only runs because an edge improved, so a
    // witness was recorded.
    #[allow(clippy::expect_used)]
    let start = witness.expect("relaxation in pass n but no improvable edge found");
    report(span, rounds, relaxations, 1);
    Ok(Solution::Infeasible {
        cycle: extract_cycle(g, &pred, start),
    })
}

/// Single-source shortest paths; `None` marks unreachable vertices.
pub fn shortest_paths_from<W: Weight>(
    g: &ConstraintGraph<W>,
    source: usize,
) -> Result<Vec<Option<W>>, NegativeCycle<W>> {
    let n = g.vertex_count();
    let mut dist: Vec<Option<W>> = vec![None; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    dist[source] = Some(W::ZERO);

    for _ in 0..n {
        let mut changed = false;
        for (eid, e) in g.edges().iter().enumerate() {
            let Some(ds) = dist[e.src] else { continue };
            let candidate = ds + e.weight;
            if dist[e.dst].is_none_or(|d| candidate < d) {
                dist[e.dst] = Some(candidate);
                pred[e.dst] = Some(eid);
                changed = true;
            }
        }
        if !changed {
            return Ok(dist);
        }
    }
    // Same witness strategy as the virtual-source solver: apply one more
    // full pass and extract from a vertex updated in it.
    let mut witness = None;
    for (eid, e) in g.edges().iter().enumerate() {
        let Some(ds) = dist[e.src] else { continue };
        let candidate = ds + e.weight;
        if dist[e.dst].is_none_or(|d| candidate < d) {
            dist[e.dst] = Some(candidate);
            pred[e.dst] = Some(eid);
            witness = Some(e.dst);
        }
    }
    // An n-th relaxation pass only runs because an edge improved, so a
    // witness was recorded.
    #[allow(clippy::expect_used)]
    let start = witness.expect("relaxation in pass n but no improvable edge found");
    Err(extract_cycle(g, &pred, start))
}

/// Walks predecessor links back from `start` (known to be reachable from a
/// negative cycle) until a vertex repeats, then returns the cycle's edges in
/// forward order.
fn extract_cycle<W: Weight>(
    g: &ConstraintGraph<W>,
    pred: &[Option<usize>],
    start: usize,
) -> NegativeCycle<W> {
    let n = g.vertex_count();
    // Step back n times to guarantee we are *on* the cycle, not merely
    // downstream of it.
    let mut v = start;
    for _ in 0..n {
        #[allow(clippy::expect_used)]
        let e = pred[v].expect("vertex behind a negative cycle must have a predecessor");
        v = g.edge(e).src;
    }
    // Collect edges around the cycle.
    let anchor = v;
    let mut edges_rev = Vec::new();
    loop {
        #[allow(clippy::expect_used)]
        let e = pred[v].expect("cycle vertex must have a predecessor");
        edges_rev.push(e);
        v = g.edge(e).src;
        if v == anchor {
            break;
        }
    }
    edges_rev.reverse();
    let total = g.weight_sum(&edges_rev);
    debug_assert!(
        total < W::ZERO,
        "extracted cycle is not negative: {total:?}"
    );
    NegativeCycle {
        edges: edges_rev,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;

    #[test]
    fn feasible_scalar_system() {
        // x1 - x0 <= 2, x2 - x1 <= -3, x2 - x0 <= -2
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, -3);
        g.add_edge(0, 2, -2);
        let dist = solve_difference_constraints(&g).expect_feasible("test");
        for e in g.edges() {
            assert!(dist[e.dst] - dist[e.src] <= e.weight);
        }
    }

    #[test]
    fn infeasible_scalar_system_yields_verified_cycle() {
        // x1 - x0 <= -1 and x0 - x1 <= 0 implies 0 <= -1: infeasible.
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(2);
        g.add_edge(0, 1, -1);
        g.add_edge(1, 0, 0);
        match solve_difference_constraints(&g) {
            Solution::Infeasible { cycle } => {
                assert!(cycle.verify(&g));
                assert_eq!(cycle.total, -1);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn figure5_constraint_graph_reproduces_paper_retiming() {
        // The constraint graph of Figure 5 (LLOFRA on Figure 2):
        // vertices A=0, B=1, C=2, D=3; weights are the δ_L of Figure 2.
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(4);
        g.add_edge(0, 1, v2(1, 1)); // A -> B
        g.add_edge(1, 2, v2(0, -2)); // B -> C
        g.add_edge(2, 3, v2(0, -1)); // C -> D
        g.add_edge(0, 2, v2(0, 1)); // A -> C
        g.add_edge(3, 0, v2(2, 1)); // D -> A
        g.add_edge(2, 2, v2(1, 0)); // C -> C
        let dist = solve_difference_constraints(&g).expect_feasible("fig5");
        // Section 3.3: r(A)=(0,0), r(B)=(0,0), r(C)=(0,-2), r(D)=(0,-3).
        assert_eq!(dist, vec![v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
    }

    #[test]
    fn lexicographic_negative_cycle_detected() {
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(3);
        g.add_edge(0, 1, v2(0, 5));
        g.add_edge(1, 2, v2(0, -3));
        g.add_edge(2, 0, v2(0, -3));
        match solve_difference_constraints(&g) {
            Solution::Infeasible { cycle } => {
                assert!(cycle.verify(&g));
                assert_eq!(cycle.total, v2(0, -1));
                assert_eq!(cycle.edges.len(), 3);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_cycle_is_feasible() {
        // Equality constraints x1 - x0 = 3 encoded as a 0-weight cycle.
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(2);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 0, -3);
        let dist = solve_difference_constraints(&g).expect_feasible("eq");
        assert_eq!(dist[1] - dist[0], 3);
    }

    #[test]
    fn single_source_unreachable_is_none() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        g.add_edge(0, 1, 7);
        let d = shortest_paths_from(&g, 0).unwrap();
        assert_eq!(d, vec![Some(0), Some(7), None]);
    }

    #[test]
    fn single_source_negative_cycle() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, -2);
        g.add_edge(2, 1, 1);
        let err = shortest_paths_from(&g, 0).unwrap_err();
        assert!(err.verify(&g));
        assert_eq!(err.total, -1);
    }

    #[test]
    fn negative_cycle_not_reachable_from_source_is_ignored() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, -1);
        g.add_edge(3, 2, 0);
        // From source 0 the negative cycle {2,3} is unreachable.
        let d = shortest_paths_from(&g, 0).unwrap();
        assert_eq!(d[1], Some(5));
        assert_eq!(d[2], None);
        // But the virtual-source solve must reject it.
        assert!(!solve_difference_constraints(&g).is_feasible());
    }

    #[test]
    fn stats_reflect_early_exit() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(5);
        for v in 0..4 {
            g.add_edge(v, v + 1, -1);
        }
        let (sol, stats) = solve_difference_constraints_with_stats(&g);
        assert!(sol.is_feasible());
        assert!(stats.rounds <= 5);
        assert!(stats.relaxations >= 4);
    }

    #[test]
    fn self_loop_negative_is_infeasible() {
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(1);
        g.add_edge(0, 0, v2(0, -1));
        match solve_difference_constraints(&g) {
            Solution::Infeasible { cycle } => {
                assert_eq!(cycle.edges.len(), 1);
                assert!(cycle.verify(&g));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }
}
