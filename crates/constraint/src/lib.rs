#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-constraint` — difference-constraint solving substrate
//!
//! Implements Section 2.4 of the paper ("Two Dimensional Linear Inequality
//! Systems"): systems of constraints `x_j - x_i <= w_ij` over scalar
//! (`i64`) or lexicographically ordered vector (`IVec2`, `IVecN`) unknowns,
//! lowered to constraint graphs and solved by shortest paths from a virtual
//! source.
//!
//! * [`weight::Weight`] — the linearly ordered abelian group the engines
//!   are generic over;
//! * [`graph::ConstraintGraph`] — the lowered graph, with
//!   [`graph::NegativeCycle`] infeasibility certificates;
//! * [`bellman_ford`] — the paper's Algorithm 1 (generic Bellman–Ford) with
//!   negative-cycle extraction;
//! * [`spfa`] / [`dag`] / [`scc`] / [`floyd`] — alternative engines
//!   (queue-based, topological sweep, SCC decomposition, all-pairs
//!   oracle);
//! * [`system::DifferenceSystem`] — the user-facing builder (Problem ILP /
//!   Problem 2-ILP).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bellman_ford;
pub mod dag;
pub mod floyd;
pub mod graph;
pub mod scc;
pub mod spfa;
pub mod system;
pub mod weight;

pub use bellman_ford::{
    shortest_paths_from, solve_difference_constraints, solve_difference_constraints_budgeted,
    solve_difference_constraints_traced, solve_difference_constraints_with_stats, Solution,
    SolveStats,
};
pub use graph::{CEdge, ConstraintGraph, NegativeCycle};
pub use system::{DifferenceSystem, Engine, Infeasible};
pub use weight::Weight;
