//! Shortest paths on acyclic constraint graphs by one relaxation sweep in
//! topological order — `O(|V| + |E|)`.
//!
//! Theorem 4.1's constraint graph is acyclic whenever the input 2LDG is
//! (adding the virtual source cannot create cycles), so Algorithm 3 can use
//! this instead of full Bellman–Ford. The `bench_ablation` benchmark
//! measures the difference.

use crate::graph::ConstraintGraph;
use crate::weight::Weight;

/// Solves the difference-constraint system (implicit zero-weight virtual
/// source) on an acyclic graph. Returns `None` when the graph has a cycle —
/// callers should then fall back to Bellman–Ford.
pub fn solve_difference_constraints_dag<W: Weight>(g: &ConstraintGraph<W>) -> Option<Vec<W>> {
    let order = g.topological_order()?;
    let mut dist: Vec<W> = vec![W::ZERO; g.vertex_count()];
    for &u in &order {
        for &eid in g.out_edges(u) {
            let e = g.edge(eid);
            let candidate = dist[u] + e.weight;
            if candidate < dist[e.dst] {
                dist[e.dst] = candidate;
            }
        }
    }
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::solve_difference_constraints;
    use mdf_graph::v2;
    use mdf_graph::vec2::IVec2;

    #[test]
    fn matches_bellman_ford_on_figure8_style_dag() {
        // Weights δ_L - (1,-1) as built by Algorithm 3 for Figure 8.
        let (a, b, c, d, e, f, gg) = (0, 1, 2, 3, 4, 5, 6);
        let mut g: ConstraintGraph<IVec2> = ConstraintGraph::new(7);
        g.add_edge(a, b, v2(0, 1) - v2(1, -1));
        g.add_edge(b, c, v2(0, -2) - v2(1, -1));
        g.add_edge(c, d, v2(1, 3) - v2(1, -1));
        g.add_edge(d, e, v2(2, -2) - v2(1, -1));
        g.add_edge(b, f, v2(0, -2) - v2(1, -1));
        g.add_edge(f, gg, v2(1, 2) - v2(1, -1));
        g.add_edge(b, e, v2(1, 2) - v2(1, -1));
        g.add_edge(a, d, v2(0, -3) - v2(1, -1));
        let via_dag = solve_difference_constraints_dag(&g).expect("acyclic");
        let via_bf = solve_difference_constraints(&g).expect_feasible("bf");
        assert_eq!(via_dag, via_bf);
        // First components must match the paper's Figure 10 retiming.
        let xs: Vec<i64> = via_dag.iter().map(|v| v.x).collect();
        assert_eq!(xs, vec![0, -1, -2, -2, -1, -2, -2]);
    }

    #[test]
    fn returns_none_on_cycles() {
        let mut g: ConstraintGraph<i64> = ConstraintGraph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 0, 1);
        assert!(solve_difference_constraints_dag(&g).is_none());
    }

    #[test]
    fn empty_and_edgeless() {
        let g: ConstraintGraph<i64> = ConstraintGraph::new(3);
        assert_eq!(solve_difference_constraints_dag(&g), Some(vec![0, 0, 0]));
    }
}
