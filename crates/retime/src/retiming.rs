//! Retiming functions `r : V -> Z^2` (Section 2.3).
//!
//! A retiming assigns each node (innermost loop) an integer offset of its
//! iteration space. The fused loop at iteration `(I, J)` executes node `u`'s
//! *original* iteration `(I + r(u).x, J + r(u).y)`; dependence vectors
//! transform as `d_r = d + r(u) - r(v)` along an edge `u -> v`.

use std::fmt;

use mdf_graph::mldg::{Mldg, NodeId};
use mdf_graph::vec2::IVec2;

/// A two-dimensional retiming function, stored densely by node index.
#[derive(Clone, PartialEq, Eq)]
pub struct Retiming {
    offsets: Vec<IVec2>,
}

impl Retiming {
    /// The identity retiming on `n` nodes.
    pub fn identity(n: usize) -> Self {
        Retiming {
            offsets: vec![IVec2::ZERO; n],
        }
    }

    /// Builds a retiming from per-node offsets (indexed by `NodeId`).
    pub fn from_offsets(offsets: Vec<IVec2>) -> Self {
        Retiming { offsets }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when covering zero nodes.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// `r(u)`.
    #[inline]
    pub fn get(&self, u: NodeId) -> IVec2 {
        self.offsets[u.index()]
    }

    /// Sets `r(u)`.
    pub fn set(&mut self, u: NodeId, v: IVec2) {
        self.offsets[u.index()] = v;
    }

    /// The raw offset slice.
    pub fn offsets(&self) -> &[IVec2] {
        &self.offsets
    }

    /// `true` when every offset is zero.
    pub fn is_identity(&self) -> bool {
        self.offsets.iter().all(|&v| v == IVec2::ZERO)
    }

    /// The retimed weight of one edge: `δ_r(e) = δ(e) + r(u) - r(v)`.
    pub fn retimed_delta(&self, g: &Mldg, e: mdf_graph::mldg::EdgeId) -> IVec2 {
        let ed = g.edge(e);
        g.delta(e) + self.get(ed.src) - self.get(ed.dst)
    }

    /// Retimings are unique only up to a global translation (adding a
    /// constant to every `r(u)` changes no edge weight). This returns the
    /// translate with `r(anchor) = (0,0)`, matching how the paper reports
    /// its retimings (always `r(A) = (0,0)`).
    pub fn normalized(&self, anchor: NodeId) -> Retiming {
        let shift = self.get(anchor);
        Retiming {
            offsets: self.offsets.iter().map(|&v| v - shift).collect(),
        }
    }

    /// Component-wise extremes over all nodes: `(min, max)` of the offsets,
    /// used to size prologue/epilogue regions in code generation.
    pub fn component_bounds(&self) -> (IVec2, IVec2) {
        let mut lo = IVec2::ZERO;
        let mut hi = IVec2::ZERO;
        for &v in &self.offsets {
            lo = lo.min_components(v);
            hi = hi.max_components(v);
        }
        (lo, hi)
    }

    /// Renders the retiming with node labels, in the paper's
    /// `r(A)=(0,0) r(B)=(0,0) ...` style.
    pub fn display<'a>(&'a self, g: &'a Mldg) -> impl fmt::Display + 'a {
        struct Disp<'a> {
            r: &'a Retiming,
            g: &'a Mldg,
        }
        impl fmt::Display for Disp<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, n) in self.g.node_ids().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "r({})={}", self.g.label(n), self.r.get(n))?;
                }
                Ok(())
            }
        }
        Disp { r: self, g }
    }
}

impl fmt::Debug for Retiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.offsets.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::figure2;
    use mdf_graph::v2;

    #[test]
    fn identity_and_accessors() {
        let r = Retiming::identity(3);
        assert!(r.is_identity());
        assert_eq!(r.len(), 3);
        let mut r = r;
        r.set(NodeId(1), v2(-1, 2));
        assert!(!r.is_identity());
        assert_eq!(r.get(NodeId(1)), v2(-1, 2));
    }

    #[test]
    fn retimed_delta_matches_paper_example() {
        // Section 2.3: with r(A)=r(B)=(0,0), r(C)=(-1,0), r(D)=(-1,-1),
        // the weight of e5 : D -> A becomes (2,1)+(-1,-1)-(0,0) = (1,0).
        let g = figure2();
        let r = Retiming::from_offsets(vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)]);
        let d = g.node_by_label("D").unwrap();
        let a = g.node_by_label("A").unwrap();
        let e5 = g.edge_between(d, a).unwrap();
        assert_eq!(r.retimed_delta(&g, e5), v2(1, 0));
    }

    #[test]
    fn normalization_anchors_first_node() {
        let r = Retiming::from_offsets(vec![v2(3, 1), v2(2, 0), v2(3, -5)]);
        let n = r.normalized(NodeId(0));
        assert_eq!(n.offsets(), &[v2(0, 0), v2(-1, -1), v2(0, -6)]);
    }

    #[test]
    fn component_bounds() {
        let r = Retiming::from_offsets(vec![v2(0, 0), v2(-2, 1), v2(1, -3)]);
        let (lo, hi) = r.component_bounds();
        assert_eq!(lo, v2(-2, -3));
        assert_eq!(hi, v2(1, 1));
    }

    #[test]
    fn display_uses_labels() {
        let g = figure2();
        let r = Retiming::from_offsets(vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)]);
        let s = format!("{}", r.display(&g));
        assert_eq!(s, "r(A)=(0,0) r(B)=(0,0) r(C)=(-1,0) r(D)=(-1,-1)");
    }
}
