#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-retime` — multi-dimensional retiming machinery
//!
//! Implements Section 2.3 of the paper: retiming functions on MLDGs, the
//! graph transformation `G -> G_r`, schedule vectors / DOALL hyperplanes
//! (Lemma 4.3), and independent verification of every retiming
//! post-condition the fusion algorithms claim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apply;
pub mod retiming;
pub mod schedule;
pub mod verify;

pub use apply::apply_retiming;
pub use retiming::Retiming;
pub use schedule::{is_strict_schedule, wavefront_for, wavefront_steps, ScheduleError, Wavefront};
pub use verify::{check_fusion_legal, check_inner_doall, check_retiming_consistency, VerifyError};
