//! Applying a retiming to an MLDG: `G -> G_r`.
//!
//! `δ_r(e) = δ(e) + r(u) - r(v)` and
//! `D_r(u,v) = { d + r(u) - r(v) : d ∈ D_L(u,v) }` (Section 2.3).
//! Cycle weights are invariant under retiming (`δ_r(c) = δ(c)` for every
//! cycle `c`), which [`crate::verify`] checks.

use mdf_graph::mldg::Mldg;

use crate::retiming::Retiming;

/// Returns the retimed graph `G_r`. Node set and edge endpoints are
/// unchanged; every dependence vector is shifted by `r(src) - r(dst)`.
pub fn apply_retiming(g: &Mldg, r: &Retiming) -> Mldg {
    assert_eq!(
        r.len(),
        g.node_count(),
        "retiming covers {} nodes but the graph has {}",
        r.len(),
        g.node_count()
    );
    g.map_deps(|e, deps| {
        let ed = g.edge(e);
        deps.shifted(r.get(ed.src) - r.get(ed.dst))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retiming::Retiming;
    use mdf_graph::paper::{figure14, figure2};
    use mdf_graph::v2;

    #[test]
    fn figure3_retimed_graph_matches_paper() {
        // Figure 3(a): Figure 2 retimed by r(A)=r(B)=(0,0), r(C)=(-1,0),
        // r(D)=(-1,-1).
        let g = figure2();
        let r = Retiming::from_offsets(vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)]);
        let gr = apply_retiming(&g, &r);
        let (a, b, c, d) = (
            gr.node_by_label("A").unwrap(),
            gr.node_by_label("B").unwrap(),
            gr.node_by_label("C").unwrap(),
            gr.node_by_label("D").unwrap(),
        );
        assert_eq!(gr.delta(gr.edge_between(a, b).unwrap()), v2(1, 1));
        assert_eq!(gr.delta(gr.edge_between(b, c).unwrap()), v2(1, -2));
        assert_eq!(gr.delta(gr.edge_between(c, d).unwrap()), v2(0, 0));
        assert_eq!(gr.delta(gr.edge_between(a, c).unwrap()), v2(1, 1));
        assert_eq!(gr.delta(gr.edge_between(d, a).unwrap()), v2(1, 0));
        assert_eq!(gr.delta(gr.edge_between(c, c).unwrap()), v2(1, 0));
    }

    #[test]
    fn figure15_retimed_graph_matches_paper() {
        // Section 4.4's worked example: Figure 14 retimed by
        // r(A)=(0,0) r(B)=(0,-4) r(C)=(0,-6) r(D)=(0,-3) r(E)=(0,-5)
        // r(F)=(0,-6) r(G)=(0,0).
        let g = figure14();
        let r = Retiming::from_offsets(vec![
            v2(0, 0),
            v2(0, -4),
            v2(0, -6),
            v2(0, -3),
            v2(0, -5),
            v2(0, -6),
            v2(0, 0),
        ]);
        let gr = apply_retiming(&g, &r);
        let id = |s: &str| gr.node_by_label(s).unwrap();
        let set = |a: &str, b: &str| {
            gr.deps(gr.edge_between(id(a), id(b)).unwrap())
                .as_slice()
                .to_vec()
        };
        assert_eq!(set("A", "B"), vec![v2(0, 5)]);
        assert_eq!(set("B", "C"), vec![v2(0, 0), v2(0, 5)]);
        assert_eq!(set("C", "D"), vec![v2(0, 0), v2(0, 2)]);
        assert_eq!(set("D", "C"), vec![v2(0, 1)]);
        assert_eq!(set("D", "E"), vec![v2(0, 0)]);
        assert_eq!(set("E", "B"), vec![v2(0, 0), v2(1, 0)]);
        assert_eq!(set("B", "F"), vec![v2(0, 0)]);
        assert_eq!(set("F", "G"), vec![v2(1, -4)]);
        assert_eq!(set("B", "E"), vec![v2(1, 3)]);
        assert_eq!(set("A", "D"), vec![v2(0, 0), v2(1, 3)]);
    }

    #[test]
    fn identity_retiming_is_a_noop() {
        let g = figure2();
        let gr = apply_retiming(&g, &Retiming::identity(g.node_count()));
        for e in g.edge_ids() {
            assert_eq!(g.deps(e).as_slice(), gr.deps(e).as_slice());
        }
    }

    #[test]
    fn cycle_weights_preserved() {
        let g = figure2();
        let r = Retiming::from_offsets(vec![v2(5, -3), v2(-1, 2), v2(0, 7), v2(2, 2)]);
        let gr = apply_retiming(&g, &r);
        let (orig, _) = mdf_graph::cycles::elementary_cycles(&g, 100);
        for c in orig {
            assert_eq!(g.delta_sum(&c.edges), gr.delta_sum(&c.edges));
        }
    }

    #[test]
    #[should_panic(expected = "retiming covers")]
    fn size_mismatch_panics() {
        let g = figure2();
        apply_retiming(&g, &Retiming::identity(2));
    }
}
