//! Machine-checkable verification of retiming results.
//!
//! Every algorithm in `mdf-core` returns a retiming; these checkers confirm
//! the claimed post-conditions directly on the retimed graph instead of
//! trusting the algorithm:
//!
//! * [`check_retiming_consistency`] — `G_r` really is `G` retimed by `r`
//!   and cycle weights are unchanged;
//! * [`check_fusion_legal`] — Theorem 3.1's condition on `G_r`;
//! * [`check_inner_doall`] — Property 4.2's condition on `G_r`.

use mdf_graph::cycles::elementary_cycles;
use mdf_graph::legality::{fused_inner_loop_is_doall, fusion_preventing_edges};
use mdf_graph::mldg::{EdgeId, Mldg};
use mdf_graph::vec2::IVec2;

use crate::retiming::Retiming;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// `G_r`'s dependence set on an edge is not the shift of `G`'s.
    EdgeMismatch {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A cycle's weight changed under retiming (impossible for a true
    /// retiming; indicates a corrupted transform).
    CycleWeightChanged {
        /// Edges of the cycle.
        cycle: Vec<EdgeId>,
        /// Weight before.
        before: IVec2,
        /// Weight after.
        after: IVec2,
    },
    /// An edge of the retimed graph still has a lexicographically negative
    /// weight, so fusion remains illegal (violates Theorem 3.1).
    FusionIllegal {
        /// The fusion-preventing edges remaining.
        edges: Vec<EdgeId>,
    },
    /// A dependence vector of the retimed graph serializes the fused inner
    /// loop (violates Property 4.2).
    InnerLoopSerialized,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::EdgeMismatch { edge } => {
                write!(f, "edge {edge:?} is not the retimed image of the original")
            }
            VerifyError::CycleWeightChanged {
                cycle,
                before,
                after,
            } => write!(
                f,
                "cycle {cycle:?} weight changed from {before} to {after} under retiming"
            ),
            VerifyError::FusionIllegal { edges } => {
                write!(
                    f,
                    "retimed graph still has fusion-preventing edges {edges:?}"
                )
            }
            VerifyError::InnerLoopSerialized => {
                write!(
                    f,
                    "a retimed dependence vector serializes the fused inner loop"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `retimed` is exactly `original` transformed by `r`, and that
/// the weights of up to `cycle_cap` elementary cycles are preserved.
pub fn check_retiming_consistency(
    original: &Mldg,
    retimed: &Mldg,
    r: &Retiming,
    cycle_cap: usize,
) -> Result<(), VerifyError> {
    for e in original.edge_ids() {
        let ed = original.edge(e);
        let expected = original.deps(e).shifted(r.get(ed.src) - r.get(ed.dst));
        if retimed.deps(e).as_slice() != expected.as_slice() {
            return Err(VerifyError::EdgeMismatch { edge: e });
        }
    }
    let (cycles, _) = elementary_cycles(original, cycle_cap);
    for c in cycles {
        let before = original.delta_sum(&c.edges);
        let after = retimed.delta_sum(&c.edges);
        if before != after {
            return Err(VerifyError::CycleWeightChanged {
                cycle: c.edges,
                before,
                after,
            });
        }
    }
    Ok(())
}

/// Theorem 3.1 on the retimed graph: every `δ_r(e) >= (0,0)`.
pub fn check_fusion_legal(retimed: &Mldg) -> Result<(), VerifyError> {
    let bad = fusion_preventing_edges(retimed);
    if bad.is_empty() {
        Ok(())
    } else {
        Err(VerifyError::FusionIllegal { edges: bad })
    }
}

/// Property 4.2 on the retimed graph: every dependence vector is either
/// `(0,0)` or carried by the outer loop.
pub fn check_inner_doall(retimed: &Mldg) -> Result<(), VerifyError> {
    if fused_inner_loop_is_doall(retimed) {
        Ok(())
    } else {
        Err(VerifyError::InnerLoopSerialized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_retiming;
    use mdf_graph::paper::figure2;
    use mdf_graph::v2;

    #[test]
    fn consistent_retiming_passes() {
        let g = figure2();
        let r = Retiming::from_offsets(vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)]);
        let gr = apply_retiming(&g, &r);
        assert_eq!(check_retiming_consistency(&g, &gr, &r, 100), Ok(()));
        assert_eq!(check_fusion_legal(&gr), Ok(()));
        assert_eq!(check_inner_doall(&gr), Ok(()));
    }

    #[test]
    fn tampered_graph_detected() {
        let g = figure2();
        let r = Retiming::identity(4);
        // "Retime" by hand-editing one edge instead: not a valid retiming.
        let tampered = g.map_deps(|e, deps| {
            if e.index() == 0 {
                deps.shifted(v2(0, 1))
            } else {
                deps.shifted(v2(0, 0))
            }
        });
        assert!(matches!(
            check_retiming_consistency(&g, &tampered, &r, 100),
            Err(VerifyError::EdgeMismatch { .. })
        ));
    }

    #[test]
    fn llofra_retiming_is_legal_but_not_doall() {
        // Figure 6: LLOFRA's retiming fuses legally, but the fused loop is
        // serial (the paper's motivation for Section 4).
        let g = figure2();
        let r = Retiming::from_offsets(vec![v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
        let gr = apply_retiming(&g, &r);
        assert_eq!(check_retiming_consistency(&g, &gr, &r, 100), Ok(()));
        assert_eq!(check_fusion_legal(&gr), Ok(()));
        assert_eq!(
            check_inner_doall(&gr),
            Err(VerifyError::InnerLoopSerialized)
        );
    }

    #[test]
    fn illegal_fusion_detected() {
        let g = figure2();
        let gr = apply_retiming(&g, &Retiming::identity(4));
        match check_fusion_legal(&gr) {
            Err(VerifyError::FusionIllegal { edges }) => assert_eq!(edges.len(), 2),
            other => panic!("expected FusionIllegal, got {other:?}"),
        }
    }
}
