//! Schedule vectors and DOALL hyperplanes (Section 2.3 and Lemma 4.3).
//!
//! A *strict schedule vector* `s` satisfies `s · d > 0` for every non-zero
//! loop dependence vector `d`: iterations on hyperplanes perpendicular to
//! `s` are then mutually independent and can run in parallel (the wavefront
//! of Section 4.4).

use mdf_graph::mldg::Mldg;
use mdf_graph::vec2::IVec2;

/// A wavefront schedule: the schedule vector and its perpendicular DOALL
/// hyperplane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wavefront {
    /// Schedule vector `s`.
    pub schedule: IVec2,
    /// Hyperplane direction `h = (s.y, -s.x)`, perpendicular to `s`.
    pub hyperplane: IVec2,
}

/// `true` iff `s` is a strict schedule vector for `g`: `s · d > 0` for
/// every non-zero dependence vector of every edge.
pub fn is_strict_schedule(g: &Mldg, s: IVec2) -> bool {
    g.edge_ids()
        .all(|e| g.deps(e).iter().all(|d| d == IVec2::ZERO || s.dot(d) > 0))
}

/// Why no wavefront could be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// Lemma 4.3 requires every dependence vector of the (retimed) graph to
    /// be lexicographically non-negative; this vector is not.
    NegativeDependence {
        /// The offending vector.
        vector: IVec2,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NegativeDependence { vector } => {
                write!(
                    f,
                    "dependence vector {vector} is lexicographically negative"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Constructs the wavefront of Lemma 4.3 for a graph whose dependence
/// vectors are all `>= (0,0)` (e.g. any LLOFRA-retimed graph):
///
/// * if the lexicographic maximum dependence vector has first coordinate
///   zero, then every non-zero vector is `(0, k)` with `k > 0` and
///   `s = (0, 1)` works;
/// * otherwise `s = (s1, 1)` with
///   `s1 = max over d with d.x > 0 of (floor(-d.y / d.x) + 1)`,
///   clamped to be at least 1 so that the schedule always advances with the
///   outer loop.
///
/// The hyperplane is `h = s.perpendicular()`.
pub fn wavefront_for(g: &Mldg) -> Result<Wavefront, ScheduleError> {
    let mut max_d: Option<IVec2> = None;
    let mut s1: i64 = 1;
    for e in g.edge_ids() {
        for d in g.deps(e).iter() {
            if d < IVec2::ZERO {
                return Err(ScheduleError::NegativeDependence { vector: d });
            }
            max_d = Some(max_d.map_or(d, |m| m.max(d)));
            if d.x > 0 {
                // floor(-d.y / d.x) + 1 is the least integer q with
                // q * d.x + d.y > 0.
                s1 = s1.max((-d.y).div_euclid(d.x) + 1);
            }
        }
    }
    let schedule = match max_d {
        // No dependence at all, or none carried by the outer loop.
        None => IVec2::new(0, 1),
        Some(m) if m.x == 0 => IVec2::new(0, 1),
        Some(_) => IVec2::new(s1, 1),
    };
    debug_assert!(
        is_strict_schedule(g, schedule),
        "constructed schedule {schedule} is not strict"
    );
    Ok(Wavefront {
        schedule,
        hyperplane: schedule.perpendicular(),
    })
}

/// The number of distinct hyperplanes (wavefront steps) needed to sweep an
/// `(n+1) x (m+1)` iteration space with schedule `s` — the critical path of
/// the wavefront execution.
pub fn wavefront_steps(s: IVec2, n: i64, m: i64) -> i64 {
    // Iterations (i, j) with 0 <= i <= n, 0 <= j <= m are executed in order
    // of s·(i,j); the number of steps is the number of distinct values,
    // which for s with non-negative components is s.x * n + s.y * m + 1.
    debug_assert!(s.x >= 0 && s.y >= 0);
    s.x * n + s.y * m + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::figure14;
    use mdf_graph::v2;
    use mdf_graph::Mldg;

    fn graph_with(deps: &[(i64, i64)]) -> Mldg {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        for &(x, y) in deps {
            g.add_dep(a, b, (x, y));
        }
        g
    }

    #[test]
    fn strict_schedule_predicate() {
        let g = graph_with(&[(1, 1), (0, 2)]);
        assert!(is_strict_schedule(&g, v2(1, 1)));
        assert!(!is_strict_schedule(&g, v2(1, 0))); // (0,2)·(1,0) = 0
        assert!(!is_strict_schedule(&g, v2(0, -1)));
    }

    #[test]
    fn zero_vectors_do_not_constrain_schedules() {
        let g = graph_with(&[(0, 0), (1, 0)]);
        assert!(is_strict_schedule(&g, v2(1, 0)));
    }

    #[test]
    fn paper_section_4_4_wavefront() {
        // After retiming Figure 14 the maximum d_r is (1,3) and the paper
        // derives s = (5,1), h = (1,-5) from max ⌊-d.y/d.x⌋ + 1 = 5 at
        // d = (1,-4) (edge F -> G).
        let g = figure14();
        let r = crate::retiming::Retiming::from_offsets(vec![
            v2(0, 0),
            v2(0, -4),
            v2(0, -6),
            v2(0, -3),
            v2(0, -5),
            v2(0, -6),
            v2(0, 0),
        ]);
        let gr = crate::apply::apply_retiming(&g, &r);
        let w = wavefront_for(&gr).unwrap();
        assert_eq!(w.schedule, v2(5, 1));
        assert_eq!(w.hyperplane, v2(1, -5));
        assert!(is_strict_schedule(&gr, w.schedule));
    }

    #[test]
    fn all_inner_dependences_give_row_schedule() {
        let g = graph_with(&[(0, 1), (0, 3)]);
        let w = wavefront_for(&g).unwrap();
        assert_eq!(w.schedule, v2(0, 1));
        assert_eq!(w.hyperplane, v2(1, 0));
    }

    #[test]
    fn outer_only_dependences_give_column_schedule() {
        let g = graph_with(&[(1, 0), (2, 5)]);
        let w = wavefront_for(&g).unwrap();
        assert_eq!(w.schedule, v2(1, 1));
        assert!(is_strict_schedule(&g, w.schedule));
    }

    #[test]
    fn negative_dependence_rejected() {
        let g = graph_with(&[(0, -1)]);
        assert_eq!(
            wavefront_for(&g),
            Err(ScheduleError::NegativeDependence { vector: v2(0, -1) })
        );
    }

    #[test]
    fn floor_division_handles_positive_y() {
        // d = (2, 3): any s1 >= 1 gives 2*s1 + 3 > 0; expect minimal s1 = 1.
        let g = graph_with(&[(2, 3)]);
        let w = wavefront_for(&g).unwrap();
        assert_eq!(w.schedule, v2(1, 1));
        // d = (2, -3): need 2*s1 > 3, so s1 = 2.
        let g = graph_with(&[(2, -3)]);
        let w = wavefront_for(&g).unwrap();
        assert_eq!(w.schedule, v2(2, 1));
        // d = (2, -4): need 2*s1 > 4, so s1 = 3.
        let g = graph_with(&[(2, -4)]);
        assert_eq!(wavefront_for(&g).unwrap().schedule, v2(3, 1));
    }

    #[test]
    fn wavefront_step_count() {
        assert_eq!(wavefront_steps(v2(0, 1), 10, 20), 21);
        assert_eq!(wavefront_steps(v2(1, 0), 10, 20), 11);
        assert_eq!(wavefront_steps(v2(5, 1), 10, 20), 71);
    }
}
