#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-chaos` — deterministic fault injection
//!
//! A seeded [`FaultPlan`] describes faults as *(site, kind, trigger-count)*
//! triples: "the third time execution passes the named site, fire this
//! fault". Host crates consult the plan at named **sites** threaded through
//! the pipeline (`constraint.solve.round`, `planner.retiming`,
//! `sim.barrier`, `kernel.chunk.mid`, …); the full registry is [`SITES`].
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disabled.** The fast path of [`hit`] is a single
//!    relaxed atomic load; host crates additionally gate every call behind
//!    a plain `bool` on their budget, so unrelated runs in the same
//!    process never even reach that load.
//! 2. **Deterministic.** A plan fires on exact hit counts, never on time
//!    or randomness at fire-time. [`FaultPlan::seeded`] derives a plan
//!    from a seed with a splitmix64 chain, so fuzzing is reproducible.
//! 3. **Process-wide exclusivity.** Arming returns a [`ChaosGuard`] that
//!    holds a global gate mutex: concurrent chaos users serialize instead
//!    of observing each other's faults. The guard disarms on drop — also
//!    on unwind, so an injected panic cannot leave the process armed.
//!
//! The crate is dependency-free and knows nothing about the rest of the
//! pipeline; mapping a [`FaultKind`] to a concrete failure (a typed error,
//! a panic, a corrupted retiming vector) is the host crate's job.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The failure a fault site simulates when its trigger count is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A worker thread panics mid-chunk (caught by supervisors, or by the
    /// CLI's top-level isolation).
    WorkerPanic,
    /// The constraint solver reports its round budget exhausted.
    SolverExhaustion,
    /// The wall-clock deadline reports as expired.
    DeadlineExpiry,
    /// A memory allocation is refused (cell budget reports exhausted).
    AllocRefusal,
    /// A computed retiming vector is corrupted in flight (must be caught
    /// by plan verification, never silently executed).
    CorruptRetiming,
}

impl FaultKind {
    /// Stable lower-case name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::SolverExhaustion => "solver-exhaustion",
            FaultKind::DeadlineExpiry => "deadline-expiry",
            FaultKind::AllocRefusal => "alloc-refusal",
            FaultKind::CorruptRetiming => "corrupt-retiming",
        }
    }
}

/// A named injection point plus the fault kinds that are sound there.
///
/// Kind restrictions are semantic, not cosmetic: e.g. `kernel.chunk.mid`
/// fires *after* a chunk has partially written memory, so only a panic
/// (which supervisors recover by restoring the last checkpoint snapshot)
/// is sound — returning a typed "deadline expired" there would hand the
/// caller a partial result whose memory image is ahead of its checkpoint.
#[derive(Clone, Copy, Debug)]
pub struct SiteInfo {
    /// Dotted site name, unique in [`SITES`].
    pub name: &'static str,
    /// Fault kinds that may fire at this site.
    pub kinds: &'static [FaultKind],
}

/// Registry of every fault site threaded through the pipeline.
pub const SITES: &[SiteInfo] = &[
    SiteInfo {
        name: "constraint.solve.round",
        kinds: &[FaultKind::SolverExhaustion, FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "planner.retiming",
        kinds: &[FaultKind::CorruptRetiming],
    },
    SiteInfo {
        name: "sim.alloc",
        kinds: &[FaultKind::AllocRefusal],
    },
    SiteInfo {
        name: "sim.barrier",
        kinds: &[FaultKind::DeadlineExpiry, FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "kernel.alloc",
        kinds: &[FaultKind::AllocRefusal],
    },
    SiteInfo {
        name: "kernel.barrier",
        kinds: &[FaultKind::DeadlineExpiry, FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "kernel.chunk.mid",
        kinds: &[FaultKind::WorkerPanic],
    },
    // Service-layer sites (`mdf-service`). Connection-handling faults are
    // panics: the daemon must isolate them per connection (typed error or
    // close, never a wedge or a dead acceptor). The cache site corrupts a
    // cached plan in place; retrieval-time revalidation must reject the
    // poisoned entry and fall back to fresh planning.
    SiteInfo {
        name: "service.accept",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "service.read",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "service.write",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "service.cache",
        kinds: &[FaultKind::CorruptRetiming],
    },
    // Router-layer sites (`mdf-router`). `router.shard` kills a worker
    // shard outright (the health loop must detect the death and respawn
    // it); `router.ring` spuriously marks a live shard dead on the hash
    // ring (requests reroute, the health loop revives it in place);
    // `router.batch` stalls a batch-coalescing window past its bound
    // (the batch must still flush — late, never never).
    SiteInfo {
        name: "router.shard",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "router.ring",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "router.batch",
        kinds: &[FaultKind::DeadlineExpiry],
    },
    // Persistence-layer sites (`mdf-service`'s plan-cache store).
    // `persist.append` panics mid-record append — the bytes already
    // written model a torn write whose tail the next load must discard;
    // `persist.compact` panics between writing the snapshot tmp file and
    // the atomic rename — a kill mid-compaction that must leave either
    // the old or the new snapshot, never a mix; `persist.load` corrupts
    // a record during load — the per-record checksum must reject it and
    // the entry must be evicted silently, never trusted.
    SiteInfo {
        name: "persist.append",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "persist.compact",
        kinds: &[FaultKind::WorkerPanic],
    },
    SiteInfo {
        name: "persist.load",
        kinds: &[FaultKind::CorruptRetiming],
    },
];

/// Looks a site up in [`SITES`].
pub fn site_info(name: &str) -> Option<&'static SiteInfo> {
    SITES.iter().find(|s| s.name == name)
}

/// One scheduled fault: fire `kind` on the `trigger`-th hit of `site`
/// (1-based), then stay spent — so a retried chunk passes the site clean,
/// modelling a transient failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Site name from [`SITES`].
    pub site: &'static str,
    /// What to simulate.
    pub kind: FaultKind,
    /// 1-based hit count at which the fault fires.
    pub trigger: u64,
}

/// A deterministic schedule of faults. Inert until [`FaultPlan::arm`]ed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

/// splitmix64: the workspace-standard seed-derivation chain.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no faults. Armed, it still counts site hits — used to
    /// probe how many times each site is reached by a clean run.
    pub fn probe() -> Self {
        FaultPlan::default()
    }

    /// A single-fault plan. Panics if `site` is not in [`SITES`] or `kind`
    /// is not sound there (programmer error, not an injectable fault).
    pub fn single(site: &'static str, kind: FaultKind, trigger: u64) -> Self {
        let info = match site_info(site) {
            Some(info) => info,
            None => panic!("unknown fault site {site:?}"),
        };
        assert!(
            info.kinds.contains(&kind),
            "fault kind {:?} is not sound at site {site:?}",
            kind
        );
        assert!(trigger >= 1, "fault triggers are 1-based");
        FaultPlan {
            faults: vec![Fault {
                site,
                kind,
                trigger,
            }],
        }
    }

    /// Derives a random single-fault plan from `seed`: uniform site from
    /// [`SITES`], uniform sound kind, trigger in `1..=max_trigger`.
    pub fn seeded(seed: u64, max_trigger: u64) -> Self {
        let mut state = seed ^ 0x6d64_662d_6368_616f; // "mdf-chao"
        let site = &SITES[(splitmix64(&mut state) % SITES.len() as u64) as usize];
        let kind = site.kinds[(splitmix64(&mut state) % site.kinds.len() as u64) as usize];
        let trigger = 1 + splitmix64(&mut state) % max_trigger.max(1);
        FaultPlan::single(site.name, kind, trigger)
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Arms this plan process-wide. Blocks until any other armed plan is
    /// dropped; the returned guard disarms on drop.
    pub fn arm(self) -> ChaosGuard {
        let gate = lock_unpoisoned(&GATE);
        *lock_unpoisoned(&ACTIVE) = Some(ActivePlan {
            faults: self
                .faults
                .into_iter()
                .map(|fault| FaultState {
                    fault,
                    spent: false,
                })
                .collect(),
            hits: BTreeMap::new(),
            injected: 0,
        });
        ARMED.store(true, Ordering::SeqCst);
        ChaosGuard { _gate: gate }
    }
}

struct FaultState {
    fault: Fault,
    spent: bool,
}

struct ActivePlan {
    faults: Vec<FaultState>,
    hits: BTreeMap<&'static str, u64>,
    injected: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static GATE: Mutex<()> = Mutex::new(());
static ACTIVE: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// Injected panics unwind through guard scopes and poison these mutexes;
/// the data (hit counters) stays consistent because every critical
/// section is a handful of integer updates, so recover the guard.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Holds the armed plan; dropping (including on unwind) disarms it.
/// While alive, exposes the plan's observability counters.
#[must_use = "dropping the guard disarms the fault plan"]
pub struct ChaosGuard {
    _gate: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// Faults fired since arming.
    pub fn injected(&self) -> u64 {
        lock_unpoisoned(&ACTIVE).as_ref().map_or(0, |p| p.injected)
    }

    /// Times `site` has been hit since arming (fired or not).
    pub fn hits(&self, site: &str) -> u64 {
        lock_unpoisoned(&ACTIVE)
            .as_ref()
            .and_then(|p| p.hits.get(site).copied())
            .unwrap_or(0)
    }

    /// All site hit counts since arming, in site-name order.
    pub fn all_hits(&self) -> Vec<(&'static str, u64)> {
        lock_unpoisoned(&ACTIVE)
            .as_ref()
            .map(|p| p.hits.iter().map(|(s, c)| (*s, *c)).collect())
            .unwrap_or_default()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_unpoisoned(&ACTIVE) = None;
    }
}

/// Records a hit of `site` against the armed plan and returns the fault to
/// simulate, if one fires now. The disabled fast path is one relaxed
/// atomic load.
#[inline]
pub fn hit(site: &'static str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &'static str) -> Option<FaultKind> {
    let mut slot = lock_unpoisoned(&ACTIVE);
    let plan = slot.as_mut()?;
    let count = {
        let c = plan.hits.entry(site).or_insert(0);
        *c += 1;
        *c
    };
    for f in &mut plan.faults {
        if !f.spent && f.fault.site == site && f.fault.trigger == count {
            f.spent = true;
            plan.injected += 1;
            return Some(f.fault.kind);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hits_are_noops() {
        assert_eq!(hit("kernel.barrier"), None);
        assert_eq!(hit("kernel.barrier"), None);
    }

    #[test]
    fn fires_exactly_on_trigger_then_stays_spent() {
        let guard = FaultPlan::single("kernel.barrier", FaultKind::DeadlineExpiry, 3).arm();
        assert_eq!(hit("kernel.barrier"), None);
        assert_eq!(hit("kernel.barrier"), None);
        assert_eq!(hit("kernel.barrier"), Some(FaultKind::DeadlineExpiry));
        assert_eq!(hit("kernel.barrier"), None, "fault is spent after firing");
        assert_eq!(guard.injected(), 1);
        assert_eq!(guard.hits("kernel.barrier"), 4);
        drop(guard);
        assert_eq!(hit("kernel.barrier"), None, "disarmed on drop");
    }

    #[test]
    fn other_sites_do_not_fire() {
        let guard = FaultPlan::single("sim.barrier", FaultKind::WorkerPanic, 1).arm();
        assert_eq!(hit("kernel.barrier"), None);
        assert_eq!(hit("sim.barrier"), Some(FaultKind::WorkerPanic));
        assert_eq!(guard.hits("kernel.barrier"), 1, "probe counts every site");
    }

    #[test]
    fn probe_counts_without_firing() {
        let guard = FaultPlan::probe().arm();
        for _ in 0..5 {
            assert_eq!(hit("sim.alloc"), None);
        }
        assert_eq!(guard.hits("sim.alloc"), 5);
        assert_eq!(guard.injected(), 0);
        assert_eq!(guard.all_hits(), vec![("sim.alloc", 5)]);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_sound() {
        for seed in 0..256 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            assert_eq!(a.faults(), b.faults());
            let f = a.faults()[0];
            let info = site_info(f.site).unwrap();
            assert!(info.kinds.contains(&f.kind));
            assert!((1..=4).contains(&f.trigger));
        }
        // The seed space actually exercises more than one site.
        let distinct: std::collections::BTreeSet<_> = (0..256)
            .map(|s| FaultPlan::seeded(s, 4).faults()[0].site)
            .collect();
        assert!(distinct.len() >= 4, "seeds cover sites: {distinct:?}");
    }

    #[test]
    #[should_panic(expected = "unknown fault site")]
    fn unknown_sites_are_programmer_errors() {
        let _ = FaultPlan::single("no.such.site", FaultKind::WorkerPanic, 1);
    }

    #[test]
    #[should_panic(expected = "not sound at site")]
    fn unsound_kinds_are_programmer_errors() {
        let _ = FaultPlan::single("kernel.chunk.mid", FaultKind::DeadlineExpiry, 1);
    }
}
