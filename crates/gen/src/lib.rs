//! # `mdf-gen` — workload generation
//!
//! Deterministic, seeded generators for the test and benchmark workloads:
//!
//! * [`mldg_gen`] — random 2LDGs: reverse-retimed legal instances
//!   (LLOFRA-feasible by construction), acyclic instances, and instances
//!   with planted negative cycles;
//! * [`program_gen`] — random executable programs, and the MLDG → program
//!   realization that turns graph examples into runnable code;
//! * [`suites`] — the Section 5 experiment suite (E1–E5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mldg_gen;
pub mod program_gen;
pub mod suites;

pub use mldg_gen::{
    random_acyclic_mldg, random_infeasible_mldg, random_legal_mldg, random_legal_mldg_n, GenConfig,
};
pub use program_gen::{program_from_mldg, random_program, ProgramGenConfig};
pub use suites::{executable_suite, suite, SuiteEntry};
