//! Random MLDG generators for property tests and scaling benchmarks.
//!
//! The central trick is *reverse retiming*: draw a random retiming `r` and
//! random **retimed** edge weights `w(e) >= (0,0)`, then emit
//! `δ(e) = w(e) - r(u) + r(v)`. Every cycle's weight equals the sum of its
//! `w(e)` — lexicographically non-negative by construction — so LLOFRA is
//! guaranteed feasible on these instances, while the visible weights look
//! arbitrary (fusion-preventing dependences appear wherever `r` shears
//! them in). Infeasible instances are produced separately by planting a
//! negative cycle.

use mdf_graph::mldg::{Mldg, NodeId};
use mdf_graph::vec2::IVec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for generated graphs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Extra random edges beyond the backbone path.
    pub extra_edges: usize,
    /// Probability that an edge carries a second dependence vector with
    /// the same first coordinate (making it hard).
    pub hard_probability: f64,
    /// Probability of adding an outer-carried self-dependence to a node.
    pub self_loop_probability: f64,
    /// Magnitude bound for retiming offsets and weight components.
    pub magnitude: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            nodes: 8,
            extra_edges: 8,
            hard_probability: 0.25,
            self_loop_probability: 0.25,
            magnitude: 4,
        }
    }
}

fn random_nonneg_weight(rng: &mut StdRng, mag: i64) -> IVec2 {
    // A mix of loop-independent, same-row-forward and outer-carried
    // retimed weights, all lexicographically >= (0,0).
    match rng.random_range(0..4) {
        0 => IVec2::ZERO,
        1 => IVec2::new(0, rng.random_range(0..=mag)),
        _ => IVec2::new(rng.random_range(1..=mag), rng.random_range(-mag..=mag)),
    }
}

/// Generates a random 2LDG on which LLOFRA is feasible by construction
/// (all cycle weights `>= (0,0)`), with a connected backbone, random extra
/// edges (including back edges), hard edges and self-loops.
pub fn random_legal_mldg(seed: u64, cfg: &GenConfig) -> Mldg {
    assert!(cfg.nodes >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Mldg::new();
    let ids: Vec<NodeId> = (0..cfg.nodes)
        .map(|i| g.add_node(format!("N{i}")))
        .collect();
    let r: Vec<IVec2> = (0..cfg.nodes)
        .map(|_| {
            IVec2::new(
                rng.random_range(-cfg.magnitude..=cfg.magnitude),
                rng.random_range(-cfg.magnitude..=cfg.magnitude),
            )
        })
        .collect();

    let add_edge = |g: &mut Mldg, rng: &mut StdRng, u: usize, v: usize| {
        let w = random_nonneg_weight(rng, cfg.magnitude);
        let delta = w - r[u] + r[v];
        g.add_dep(ids[u], ids[v], delta);
        if rng.random_bool(cfg.hard_probability) {
            // A second vector with the same first coordinate but larger
            // second coordinate: keeps δ_L unchanged (lexicographically
            // larger) and makes the edge hard.
            g.add_dep(
                ids[u],
                ids[v],
                delta + IVec2::new(0, rng.random_range(1..=cfg.magnitude)),
            );
        }
    };

    // Backbone path keeps the graph connected.
    for u in 0..cfg.nodes.saturating_sub(1) {
        add_edge(&mut g, &mut rng, u, u + 1);
    }
    // Random extras, both forward and backward.
    for _ in 0..cfg.extra_edges {
        let u = rng.random_range(0..cfg.nodes);
        let v = rng.random_range(0..cfg.nodes);
        if u != v {
            add_edge(&mut g, &mut rng, u, v);
        }
    }
    // Outer-carried self-dependences (x >= 1 keeps cycles non-negative;
    // a reverse-retimed self-weight is unchanged by r).
    for &id in &ids {
        if rng.random_bool(cfg.self_loop_probability) {
            let w = IVec2::new(
                rng.random_range(1..=cfg.magnitude),
                rng.random_range(-cfg.magnitude..=cfg.magnitude),
            );
            g.add_dep(id, id, w);
        }
    }
    g
}

/// Generates a random *acyclic* 2LDG (forward edges only, arbitrary
/// weights): the domain of Algorithm 3, where full parallelism is always
/// achievable.
pub fn random_acyclic_mldg(seed: u64, cfg: &GenConfig) -> Mldg {
    assert!(cfg.nodes >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Mldg::new();
    let ids: Vec<NodeId> = (0..cfg.nodes)
        .map(|i| g.add_node(format!("N{i}")))
        .collect();
    let add = |g: &mut Mldg, rng: &mut StdRng, u: usize, v: usize| {
        let d = IVec2::new(
            rng.random_range(0..=cfg.magnitude),
            rng.random_range(-cfg.magnitude..=cfg.magnitude),
        );
        g.add_dep(ids[u], ids[v], d);
        if rng.random_bool(cfg.hard_probability) {
            g.add_dep(
                ids[u],
                ids[v],
                d + IVec2::new(0, rng.random_range(1..=cfg.magnitude)),
            );
        }
    };
    for u in 0..cfg.nodes.saturating_sub(1) {
        add(&mut g, &mut rng, u, u + 1);
    }
    for _ in 0..cfg.extra_edges {
        let u = rng.random_range(0..cfg.nodes);
        let v = rng.random_range(0..cfg.nodes);
        if u < v {
            add(&mut g, &mut rng, u, v);
        }
    }
    g
}

/// Generates a graph containing a planted lexicographically negative cycle
/// (LLOFRA must reject it with a certificate).
pub fn random_infeasible_mldg(seed: u64, cfg: &GenConfig) -> Mldg {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
    let mut g = random_legal_mldg(seed, cfg);
    // Plant a 2-cycle with total weight (0, -1) between two random nodes.
    let n = g.node_count();
    let u = NodeId(rng.random_range(0..n) as u32);
    let v = NodeId(((u.0 as usize + 1 + rng.random_range(0..n.max(2) - 1)) % n) as u32);
    if u == v {
        let w = NodeId(((u.0 as usize + 1) % n) as u32);
        let k = rng.random_range(0..=cfg.magnitude);
        g.add_dep(u, w, (0, -k - 1));
        g.add_dep(w, u, (0, k));
    } else {
        let k = rng.random_range(0..=cfg.magnitude);
        g.add_dep(u, v, (0, -k - 1));
        g.add_dep(v, u, (0, k));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::cycles::is_acyclic;
    use mdf_graph::legality::cycle_weight_report;

    #[test]
    fn legal_graphs_have_nonnegative_cycles() {
        for seed in 0..30 {
            let g = random_legal_mldg(seed, &GenConfig::default());
            let report = cycle_weight_report(&g, 2000);
            assert!(
                report.all_lex_nonnegative,
                "seed {seed}: min cycle {:?}",
                report.min_weight
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = random_legal_mldg(7, &cfg);
        let b = random_legal_mldg(7, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn acyclic_graphs_are_acyclic() {
        for seed in 0..20 {
            let g = random_acyclic_mldg(seed, &GenConfig::default());
            assert!(is_acyclic(&g), "seed {seed}");
        }
    }

    #[test]
    fn infeasible_graphs_have_a_negative_cycle() {
        for seed in 0..20 {
            let g = random_infeasible_mldg(seed, &GenConfig::default());
            let report = cycle_weight_report(&g, 4000);
            assert!(
                !report.truncated && !report.all_lex_nonnegative,
                "seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn sizes_respect_config() {
        let cfg = GenConfig {
            nodes: 20,
            extra_edges: 15,
            ..GenConfig::default()
        };
        let g = random_legal_mldg(3, &cfg);
        assert_eq!(g.node_count(), 20);
        assert!(g.edge_count() >= 19);
    }

    #[test]
    fn hard_edges_appear_with_high_probability_setting() {
        let cfg = GenConfig {
            hard_probability: 1.0,
            ..GenConfig::default()
        };
        let g = random_legal_mldg(11, &cfg);
        assert!(g.edge_ids().any(|e| g.is_hard(e)));
    }
}

/// Generates a random `N`-dimensional MLDG on which `llofra_ndim` is
/// feasible by construction (the same reverse-retiming trick as
/// [`random_legal_mldg`], lifted to `Z^N`).
pub fn random_legal_mldg_n<const N: usize>(
    seed: u64,
    cfg: &GenConfig,
) -> mdf_graph::mldg_n::MldgN<N> {
    #![allow(clippy::needless_range_loop)]
    use mdf_graph::nvec::IVecN;
    assert!(cfg.nodes >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g: mdf_graph::mldg_n::MldgN<N> = mdf_graph::mldg_n::MldgN::new();
    let ids: Vec<NodeId> = (0..cfg.nodes)
        .map(|i| g.add_node(format!("N{i}")))
        .collect();
    let r: Vec<IVecN<N>> = (0..cfg.nodes)
        .map(|_| {
            let mut v = IVecN::ZERO;
            for k in 0..N {
                v[k] = rng.random_range(-cfg.magnitude..=cfg.magnitude);
            }
            v
        })
        .collect();
    let random_nonneg = |rng: &mut StdRng| -> IVecN<N> {
        // Pick a carrying level; components before it are zero, the level
        // itself positive-or-zero-at-the-last, the rest arbitrary.
        let lead = rng.random_range(0..N);
        let mut v = IVecN::ZERO;
        v[lead] = if lead == N - 1 {
            rng.random_range(0..=cfg.magnitude)
        } else {
            rng.random_range(1..=cfg.magnitude)
        };
        for k in lead + 1..N {
            v[k] = rng.random_range(-cfg.magnitude..=cfg.magnitude);
        }
        v
    };
    let add_edge = |g: &mut mdf_graph::mldg_n::MldgN<N>, rng: &mut StdRng, u: usize, v: usize| {
        let w = random_nonneg(rng);
        g.add_dep(ids[u], ids[v], w - r[u] + r[v]);
    };
    for u in 0..cfg.nodes.saturating_sub(1) {
        add_edge(&mut g, &mut rng, u, u + 1);
    }
    for _ in 0..cfg.extra_edges {
        let u = rng.random_range(0..cfg.nodes);
        let v = rng.random_range(0..cfg.nodes);
        if u != v {
            add_edge(&mut g, &mut rng, u, v);
        }
    }
    g
}

#[cfg(test)]
mod ndim_tests {
    use super::*;

    #[test]
    fn ndim_generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = random_legal_mldg_n::<3>(5, &cfg);
        let b = random_legal_mldg_n::<3>(5, &cfg);
        assert_eq!(a.node_count(), cfg.nodes);
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(ea).src, b.edge(eb).src);
            assert_eq!(a.edge(ea).dst, b.edge(eb).dst);
            assert_eq!(a.edge(ea).deps, b.edge(eb).deps);
        }
    }
}
