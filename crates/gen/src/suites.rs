//! The Section 5 experiment suite: "5 common MLDGs".
//!
//! The paper's evaluation text is truncated in the available source after
//! naming its first examples; we follow what it specifies — the first
//! three entries are the paper's own Figures 8, 2 and 14 — and substitute
//! two realistic kernels of the motivated application classes for the
//! remainder (see DESIGN.md, Substitutions):
//!
//! | ID | Graph        | Program            | Expected plan              |
//! |----|--------------|--------------------|----------------------------|
//! | E1 | Figure 8     | realized from MLDG | Alg 3 (acyclic, DOALL)     |
//! | E2 | Figure 2     | Figure 2(b)        | Alg 4 (cyclic, DOALL)      |
//! | E3 | Figure 14    | — (not realizable) | Alg 5 (hyperplane)         |
//! | E4 | image pipeline  | E4 kernel       | Alg 4 (cyclic, DOALL)      |
//! | E5 | relaxation      | E5 kernel       | Alg 5 (hyperplane)         |

use mdf_graph::mldg::Mldg;
use mdf_ir::ast::Program;
use mdf_ir::extract::extract_mldg;
use mdf_ir::samples;

use crate::program_gen::program_from_mldg;

/// One suite entry.
pub struct SuiteEntry {
    /// Experiment id (`"E1"` ... `"E5"`).
    pub id: &'static str,
    /// Human description.
    pub description: &'static str,
    /// The 2LDG.
    pub graph: Mldg,
    /// A runnable realization, when one exists.
    pub program: Option<Program>,
}

/// Builds the full suite.
pub fn suite() -> Vec<SuiteEntry> {
    let fig8 = mdf_graph::paper::figure8();
    let fig8_program = program_from_mldg(&fig8, "fig8_code");
    let fig2_program = samples::figure2_program();
    let image = samples::image_pipeline_program();
    let relax = samples::relaxation_program();
    vec![
        SuiteEntry {
            id: "E1",
            description: "Figure 8: 7-loop acyclic 2LDG (Section 4.2)",
            graph: fig8,
            program: fig8_program,
        },
        SuiteEntry {
            id: "E2",
            description: "Figure 2: 4-loop cyclic 2LDG (running example)",
            graph: extract_mldg(&fig2_program).unwrap().graph,
            program: Some(fig2_program),
        },
        SuiteEntry {
            id: "E3",
            description: "Figure 14: cyclic 2LDG requiring the hyperplane method (Section 4.4)",
            graph: mdf_graph::paper::figure14(),
            program: None,
        },
        SuiteEntry {
            id: "E4",
            description: "image pipeline: blur/edge/sharpen/accumulate kernel (substituted)",
            graph: extract_mldg(&image).unwrap().graph,
            program: Some(image),
        },
        SuiteEntry {
            id: "E5",
            description: "relaxation: two-stage smoother with mutually hard edges (substituted)",
            graph: extract_mldg(&relax).unwrap().graph,
            program: Some(relax),
        },
    ]
}

/// The executable subset of [`suite`]: entries whose graph realizes as a
/// runnable program. This is the population `mdfuse bench` and the
/// kernel differential tests iterate over (E3's Figure 14 has hard edges
/// in both directions, so no loop-per-node program realizes it).
pub fn executable_suite() -> Vec<SuiteEntry> {
    suite()
        .into_iter()
        .filter(|e| e.program.is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_core::{plan_fusion, verify_plan, FullParallelMethod, FusionPlan};

    #[test]
    fn suite_has_five_entries_with_expected_plans() {
        let entries = suite();
        assert_eq!(entries.len(), 5);
        let kinds: Vec<&str> = entries
            .iter()
            .map(|e| {
                let plan = plan_fusion(&e.graph).unwrap();
                assert_eq!(verify_plan(&e.graph, &plan), Ok(()), "{}", e.id);
                match plan {
                    FusionPlan::FullParallel {
                        method: FullParallelMethod::Acyclic,
                        ..
                    } => "alg3",
                    FusionPlan::FullParallel {
                        method: FullParallelMethod::Cyclic,
                        ..
                    } => "alg4",
                    FusionPlan::Hyperplane { .. } => "alg5",
                }
            })
            .collect();
        assert_eq!(kinds, vec!["alg3", "alg4", "alg5", "alg4", "alg5"]);
    }

    #[test]
    fn programs_present_where_expected() {
        let entries = suite();
        let has_program: Vec<bool> = entries.iter().map(|e| e.program.is_some()).collect();
        assert_eq!(has_program, vec![true, true, false, true, true]);
    }

    #[test]
    fn e1_program_matches_graph() {
        let entries = suite();
        let e1 = &entries[0];
        let x = extract_mldg(e1.program.as_ref().unwrap()).unwrap();
        assert_eq!(x.graph.edge_count(), e1.graph.edge_count());
    }
}
