//! Program-level generators: random executable programs for end-to-end
//! property testing, and the MLDG → program realization used to turn the
//! paper's graph-only examples into runnable code.

use mdf_graph::legality::{check_executable, textual_order};
use mdf_graph::mldg::Mldg;
use mdf_ir::ast::{ArrayRef, BinOp, Expr, Program, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for random programs.
#[derive(Clone, Copy, Debug)]
pub struct ProgramGenConfig {
    /// Number of innermost loops.
    pub loops: usize,
    /// Reads per loop body (each becomes a dependence).
    pub reads_per_loop: usize,
    /// Maximum subscript offset magnitude.
    pub max_offset: i64,
    /// Probability that a read targets the loop's own array with an
    /// outer-carried offset (a self-dependence).
    pub self_read_probability: f64,
}

impl Default for ProgramGenConfig {
    fn default() -> Self {
        ProgramGenConfig {
            loops: 5,
            reads_per_loop: 3,
            max_offset: 2,
            self_read_probability: 0.3,
        }
    }
}

/// Generates a random *executable* program: loop `k` writes array `k` at
/// `[i][j]`; reads target earlier loops in the same outer iteration
/// (`di = 0`, producer textually earlier) or any loop at an earlier outer
/// iteration (`di >= 1`). By construction dependence analysis succeeds and
/// the MLDG is legal.
pub fn random_program(seed: u64, cfg: &ProgramGenConfig) -> Program {
    assert!(cfg.loops >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Program::new(format!("gen_{seed}"));
    let arrays: Vec<usize> = (0..cfg.loops)
        .map(|k| p.add_array(format!("t{k}")))
        .collect();
    let input = p.add_array("input");
    for k in 0..cfg.loops {
        let mut expr = Expr::Ref(ArrayRef::new(
            input,
            rng.random_range(-cfg.max_offset..=cfg.max_offset),
            rng.random_range(-cfg.max_offset..=cfg.max_offset),
        ));
        for _ in 0..cfg.reads_per_loop {
            let (src, di) = if rng.random_bool(cfg.self_read_probability) {
                // Self-dependence: must be outer-carried.
                (k, rng.random_range(1..=cfg.max_offset.max(1)))
            } else if k > 0 && rng.random_bool(0.6) {
                // Same-iteration read of an earlier loop.
                (rng.random_range(0..k), 0)
            } else {
                // Outer-carried read of any loop.
                (
                    rng.random_range(0..cfg.loops),
                    rng.random_range(1..=cfg.max_offset.max(1)),
                )
            };
            let r = ArrayRef::new(
                arrays[src],
                -di,
                rng.random_range(-cfg.max_offset..=cfg.max_offset),
            );
            let op = if rng.random_bool(0.5) {
                BinOp::Add
            } else {
                BinOp::Sub
            };
            expr = Expr::bin(op, expr, Expr::Ref(r));
        }
        p.add_loop(
            format!("L{k}"),
            vec![Stmt {
                lhs: ArrayRef::new(arrays[k], 0, 0),
                rhs: expr,
            }],
        );
    }
    p
}

/// Realizes an executable MLDG as a program: loops emitted in a valid
/// textual order, node `v` writing array `v` at `[i][j]` and reading, for
/// every edge `u -> v` with vector `d`, `array_u[i - d.x][j - d.y]` — so
/// the extracted dependence sets equal the input graph's exactly. Returns
/// `None` when the graph is not executable (negative outer distances or a
/// same-iteration cycle).
pub fn program_from_mldg(g: &Mldg, name: &str) -> Option<Program> {
    check_executable(g).ok()?;
    let order = textual_order(g)?;
    let mut p = Program::new(name);
    // One array per node, named after the node's label (lowercased), plus
    // a shared input array used when a node has no producers.
    let arrays: Vec<usize> = g
        .node_ids()
        .map(|n| p.add_array(format!("a_{}", g.label(n).to_lowercase())))
        .collect();
    let input = p.add_array("input");
    for &v in &order {
        let mut expr: Option<Expr> = None;
        for &e in g.in_edges(v) {
            let u = g.edge(e).src;
            for d in g.deps(e).iter() {
                let r = Expr::Ref(ArrayRef::new(arrays[u.index()], -d.x, -d.y));
                expr = Some(match expr {
                    None => r,
                    Some(acc) => Expr::bin(BinOp::Add, acc, r),
                });
            }
        }
        let rhs = match expr {
            Some(e) => Expr::bin(BinOp::Add, e, Expr::Ref(ArrayRef::new(input, 0, 0))),
            None => Expr::Ref(ArrayRef::new(input, 0, 0)),
        };
        p.add_loop(
            g.label(v).to_string(),
            vec![Stmt {
                lhs: ArrayRef::new(arrays[v.index()], 0, 0),
                rhs,
            }],
        );
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2, figure8};
    use mdf_ir::extract::extract_mldg;

    #[test]
    fn random_programs_validate_and_extract() {
        for seed in 0..25 {
            let p = random_program(seed, &ProgramGenConfig::default());
            assert_eq!(p.validate(), Ok(()), "seed {seed}");
            let x = extract_mldg(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(x.anti_count(), 0, "seed {seed}");
            assert_eq!(
                mdf_graph::legality::check_executable(&x.graph),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn figure8_realization_extracts_the_same_graph() {
        let g = figure8();
        let p = program_from_mldg(&g, "fig8_code").unwrap();
        let x = extract_mldg(&p).unwrap();
        assert_eq!(x.graph.node_count(), g.node_count());
        assert_eq!(x.graph.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            let ed = g.edge(e);
            // Realized program's node ids follow textual order, so map by
            // label.
            let src = x.graph.node_by_label(g.label(ed.src)).unwrap();
            let dst = x.graph.node_by_label(g.label(ed.dst)).unwrap();
            let mine = x.graph.edge_between(src, dst).unwrap();
            assert_eq!(
                x.graph.deps(mine).as_slice(),
                g.deps(e).as_slice(),
                "{} -> {}",
                g.label(ed.src),
                g.label(ed.dst)
            );
        }
    }

    #[test]
    fn figure2_realization_roundtrips() {
        let g = figure2();
        let p = program_from_mldg(&g, "fig2_code").unwrap();
        let x = extract_mldg(&p).unwrap();
        assert_eq!(x.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn figure14_is_not_realizable() {
        // Same-iteration cycle C -> D -> C: no textual order exists.
        assert_eq!(program_from_mldg(&figure14(), "nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ProgramGenConfig::default();
        assert_eq!(random_program(9, &cfg), random_program(9, &cfg));
    }
}
