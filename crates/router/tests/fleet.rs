//! Fleet-level integration: ring properties under proptest, cross-shard
//! bit-identity against the single-process oracle, and shard-kill
//! failover with a typed rerouted outcome.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use mdf_router::{Backend, InProcessBackend, Ring, Router, RouterConfig};
use mdf_service::transport::Endpoint;
use mdf_service::{Client, Engine, Response, ServiceConfig, Submit};

proptest! {
    /// Every key maps to exactly one live shard, for any fleet shape and
    /// any liveness pattern that keeps at least one shard up — and the
    /// mapping is deterministic.
    #[test]
    fn every_key_maps_to_exactly_one_live_shard(
        shards in 1u32..8,
        vnodes in 1u32..32,
        dead_mask in 0u8..=255,
        keys in proptest::collection::vec(0u64..=u64::MAX, 1..64),
    ) {
        let mut ring = Ring::new(shards, vnodes);
        for s in 0..shards {
            if dead_mask & (1 << s) != 0 {
                ring.set_live(s, false);
            }
        }
        if ring.live_count() == 0 {
            ring.set_live(shards - 1, true);
        }
        for key in keys {
            let owner = ring.owner(key).expect("a live shard exists");
            prop_assert!(owner < shards);
            prop_assert!(ring.is_live(owner), "owner {owner} is dead");
            prop_assert_eq!(ring.owner(key), Some(owner), "lookup is deterministic");
        }
    }

    /// Killing one shard moves only that shard's keys; every other key
    /// keeps its owner. Revival moves exactly those keys home again.
    #[test]
    fn death_moves_only_the_dead_shards_keys(
        shards in 2u32..8,
        vnodes in 1u32..32,
        victim_pick in 0u32..=u32::MAX,
        keys in proptest::collection::vec(0u64..=u64::MAX, 1..128),
    ) {
        let mut ring = Ring::new(shards, vnodes);
        let victim = victim_pick % shards;
        let before: Vec<u32> = keys.iter().map(|k| ring.owner(*k).unwrap()).collect();
        ring.set_live(victim, false);
        for (key, owner_before) in keys.iter().zip(&before) {
            let owner_after = ring.owner(*key).unwrap();
            if *owner_before == victim {
                prop_assert_ne!(owner_after, victim, "dead shard still owns {:#x}", key);
            } else {
                prop_assert_eq!(
                    owner_after, *owner_before,
                    "key {:#x} moved although its shard survived", key
                );
            }
        }
        ring.set_live(victim, true);
        let revived: Vec<u32> = keys.iter().map(|k| ring.owner(*k).unwrap()).collect();
        prop_assert_eq!(revived, before);
    }
}

/// An [`InProcessBackend`] the test keeps a handle to, so it can kill a
/// shard out from under the router mid-run.
struct SharedBackend(Arc<InProcessBackend>);

impl Backend for SharedBackend {
    fn start(&self, shard: u32, generation: u64) -> std::io::Result<Endpoint> {
        self.0.start(shard, generation)
    }
    fn stop(&self, shard: u32) {
        self.0.stop(shard)
    }
}

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/dsl/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// The fingerprint a correct execution of `source` must produce,
/// computed single-process with no fleet involved.
fn oracle_fingerprint(source: &str, n: i64, m: i64) -> u64 {
    let parsed = mdf_ir::parse_program_spanned(source).unwrap();
    let (mem, _) = mdf_sim::run_original(&parsed.program, n, m);
    mem.fingerprint()
}

fn submit_via(endpoint: &Endpoint, source: &str, engine: Engine) -> Response {
    let mut client = Client::connect_endpoint(endpoint).expect("router connect");
    client
        .submit(Submit {
            engine,
            n: 12,
            m: 10,
            deadline_ms: 30_000,
            client: String::new(),
            source: source.to_string(),
        })
        .expect("router answered")
}

fn fleet_config(shards: u32) -> (RouterConfig, Arc<InProcessBackend>) {
    let template = ServiceConfig::new(
        std::env::temp_dir().join(format!("mdf-router-test-{}.sock", std::process::id())),
    );
    let backend = Arc::new(InProcessBackend::new(shards, template));
    let mut config = RouterConfig::new(Endpoint::parse("tcp:127.0.0.1:0"), shards);
    config.health_interval = Duration::from_millis(200);
    (config, backend)
}

/// Distinct workloads land on distinct shards (fingerprint sharding),
/// and every result that comes back through the fleet is bit-identical
/// to the single-process oracle.
#[test]
fn cross_shard_results_match_the_single_process_oracle() {
    let (config, backend) = fleet_config(3);
    let router = Router::start(config, Box::new(SharedBackend(backend))).unwrap();
    let endpoint = router.endpoint().clone();

    let workloads = [
        "figure2.mdf",
        "relaxation.mdf",
        "conv_chain.mdf",
        "image_pipeline.mdf",
        "adi_pass.mdf",
    ];
    let mut shards_seen = std::collections::BTreeSet::new();
    for (i, name) in workloads.iter().enumerate() {
        let source = example(name);
        let want = oracle_fingerprint(&source, 12, 10);
        let engine = if i % 2 == 0 {
            Engine::Kernel
        } else {
            Engine::Interp
        };
        // Twice per workload: a planning miss and a cache hit must both
        // produce the oracle's bits.
        for round in 0..2 {
            let resp = submit_via(&endpoint, &source, engine);
            let Response::Done(o) = resp else {
                panic!("{name} round {round}: expected Done, got {resp:?}");
            };
            assert_eq!(
                o.fingerprint, want,
                "{name} round {round}: fleet result diverged from run_original"
            );
            assert!(!o.rerouted, "{name}: healthy fleet must not reroute");
            shards_seen.insert(o.shard);
        }
    }
    assert!(
        shards_seen.len() >= 2,
        "five workloads all hashed to one shard: sharding is not spreading \
         (saw {shards_seen:?})"
    );
    router.drain();
}

/// Killing a shard mid-run: the in-flight submission fails over with a
/// typed `rerouted` outcome (correct bits, no hang), and the supervisor
/// respawns the shard into a healthy fleet.
#[test]
fn shard_kill_reroutes_and_respawns() {
    let (config, backend) = fleet_config(2);
    let router = Router::start(config, Box::new(SharedBackend(Arc::clone(&backend)))).unwrap();
    let endpoint = router.endpoint().clone();

    let source = example("figure2.mdf");
    let want = oracle_fingerprint(&source, 12, 10);
    let Response::Done(first) = submit_via(&endpoint, &source, Engine::Kernel) else {
        panic!("first submission failed");
    };
    assert_eq!(first.fingerprint, want);
    let home = first.shard;

    // Kill the owning shard out from under the router and resubmit
    // immediately — before the health loop's next ping can notice.
    backend.stop(home);
    let resp = submit_via(&endpoint, &source, Engine::Kernel);
    let Response::Done(rerouted) = resp else {
        panic!("submission after shard kill must still complete, got {resp:?}");
    };
    assert_eq!(
        rerouted.fingerprint, want,
        "failover produced different bits"
    );
    assert!(
        rerouted.rerouted,
        "the outcome must say it was rerouted, not pretend nothing happened"
    );
    assert_ne!(rerouted.shard, home, "rerouted to the dead shard");

    // The supervisor must respawn the shard into a fully healthy fleet.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fleet = router.fleet_stats();
        if fleet.respawns >= 1 && fleet.shards.iter().all(|s| s.healthy) {
            assert!(fleet.shard_deaths >= 1, "the death was never counted");
            assert!(fleet.reroutes >= 1, "the reroute was never counted");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never respawned shard {home}: {fleet:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // And the respawned fleet still answers with the right bits.
    let Response::Done(after) = submit_via(&endpoint, &source, Engine::Kernel) else {
        panic!("post-respawn submission failed");
    };
    assert_eq!(after.fingerprint, want);
    router.drain();
}

/// Concurrent identical submissions coalesce: same bits for everyone,
/// and at least one outcome reports `batched >= 2`.
#[test]
fn concurrent_identical_submissions_batch() {
    let (mut config, backend) = fleet_config(2);
    config.batch_window = Some(Duration::from_millis(25));
    let router = Router::start(config, Box::new(SharedBackend(backend))).unwrap();
    let endpoint = router.endpoint().clone();

    let source = example("figure2.mdf");
    let want = oracle_fingerprint(&source, 12, 10);
    // Warm the plan cache so the batched round is execution-only.
    let Response::Done(_) = submit_via(&endpoint, &source, Engine::Kernel) else {
        panic!("warmup failed");
    };

    let mut handles = Vec::new();
    for _ in 0..8 {
        let endpoint = endpoint.clone();
        let source = source.clone();
        handles.push(std::thread::spawn(move || {
            submit_via(&endpoint, &source, Engine::Kernel)
        }));
    }
    let mut max_batched = 0;
    for h in handles {
        let Response::Done(o) = h.join().unwrap() else {
            panic!("batched submission failed");
        };
        assert_eq!(o.fingerprint, want, "batched result diverged");
        max_batched = max_batched.max(o.batched);
    }
    assert!(
        max_batched >= 2,
        "8 concurrent identical submissions inside a 25 ms window never \
         coalesced (max batched = {max_batched})"
    );
    let stats = router.drain();
    assert!(
        stats.batched_submits >= 2,
        "batching never counted: {stats:?}"
    );
}
