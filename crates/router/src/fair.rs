//! Fair-share admission across client identities.
//!
//! Every shard already bounds its own admission on the `Budget`-metered
//! worker pool; what a single daemon cannot see is *who* is submitting.
//! One hot client can fill every queue slot in the fleet and starve the
//! rest. The router therefore applies a second, identity-aware gate in
//! front of the per-shard meters: with `slots` total in-flight
//! submissions allowed fleet-wide, each of the `a` currently-active
//! client identities is entitled to `max(1, slots / a)` of them. A
//! client past its entitlement (or a full fleet) gets a typed
//! `Overloaded` rejection with a retry hint — never a hang, and never a
//! slot taken from a client still under its share.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mdf_service::proto::{ErrCode, ServiceError};

#[derive(Debug, Default)]
struct FairState {
    /// In-flight submissions per client identity. Entries are removed at
    /// zero so `inflight.len()` is the active-client count.
    inflight: BTreeMap<String, u64>,
    total: u64,
}

/// The fleet-wide fair-share gate.
#[derive(Debug)]
pub struct FairShare {
    slots: u64,
    state: Mutex<FairState>,
}

/// Holds one admission slot; released on drop.
#[derive(Debug)]
pub struct FairPermit {
    share: Arc<FairShare>,
    client: String,
}

impl Drop for FairPermit {
    fn drop(&mut self) {
        let mut st = self.share.state.lock().unwrap_or_else(|e| e.into_inner());
        st.total = st.total.saturating_sub(1);
        if let Some(n) = st.inflight.get_mut(&self.client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.inflight.remove(&self.client);
            }
        }
    }
}

impl FairShare {
    /// A gate with `slots` total in-flight submissions.
    pub fn new(slots: u64) -> FairShare {
        FairShare {
            slots: slots.max(1),
            state: Mutex::new(FairState::default()),
        }
    }

    /// Tries to admit one submission from `client` (empty = anonymous,
    /// which shares one identity). Returns the permit or a typed
    /// `Overloaded` rejection with a retry hint.
    pub fn acquire(self: &Arc<Self>, client: &str) -> Result<FairPermit, ServiceError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mine = st.inflight.get(client).copied().unwrap_or(0);
        // Count the requester as active even before its first slot, so a
        // newcomer's entitlement is computed against a pool that
        // includes itself.
        let active = st.inflight.len() as u64 + u64::from(mine == 0);
        let entitlement = (self.slots / active.max(1)).max(1);
        if st.total >= self.slots || mine >= entitlement {
            let hint = 25 * (mine.max(1));
            return Err(ServiceError {
                code: ErrCode::Overloaded,
                retry_after_ms: hint,
                message: format!(
                    "fair-share limit: client {:?} holds {mine} of its {entitlement} \
                     entitled slot(s) ({active} active client(s), {} fleet slot(s))",
                    if client.is_empty() {
                        "<anonymous>"
                    } else {
                        client
                    },
                    self.slots
                ),
            });
        }
        st.total += 1;
        *st.inflight.entry(client.to_string()).or_insert(0) += 1;
        Ok(FairPermit {
            share: Arc::clone(self),
            client: client.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_client_cannot_take_every_slot() {
        let share = Arc::new(FairShare::new(8));
        // A lone client may use the whole fleet.
        let solo: Vec<FairPermit> = (0..8).map(|_| share.acquire("hog").unwrap()).collect();
        assert!(share.acquire("hog").is_err());
        drop(solo);

        // With a second identity active, the hog's entitlement halves.
        let _other = share.acquire("quiet").unwrap();
        let hogs: Vec<FairPermit> = (0..4).map(|_| share.acquire("hog").unwrap()).collect();
        let err = share.acquire("hog").unwrap_err();
        assert_eq!(err.code, ErrCode::Overloaded);
        assert!(err.retry_after_ms > 0, "rejection must carry a retry hint");
        // The quiet client still gets in.
        let _quiet2 = share.acquire("quiet").unwrap();
        drop(hogs);
    }

    #[test]
    fn permits_release_on_drop() {
        let share = Arc::new(FairShare::new(2));
        let p = share.acquire("a").unwrap();
        let _q = share.acquire("b").unwrap();
        assert!(share.acquire("c").is_err(), "fleet full");
        drop(p);
        assert!(share.acquire("c").is_ok(), "slot released on drop");
    }

    #[test]
    fn entitlement_never_below_one() {
        let share = Arc::new(FairShare::new(2));
        let _a = share.acquire("a").unwrap();
        let _b = share.acquire("b").unwrap();
        // Ten active clients against two slots: entitlement clamps to 1,
        // rejection comes from the fleet bound, not a zero entitlement.
        let err = share.acquire("c").unwrap_err();
        assert_eq!(err.code, ErrCode::Overloaded);
    }
}
