//! Request batching: coalesce same-fingerprint submissions.
//!
//! The whole point of fingerprint sharding is that identical graphs land
//! on the same shard; batching takes the next step and makes *k*
//! concurrent identical submissions cost one shard execution. The first
//! arrival for a batch key becomes the **leader**: it opens a group,
//! waits out a bounded window for followers, closes the group, forwards
//! one submission, and publishes the result to every member. Followers
//! block on the group's condvar — with a hard timeout cap, so a vanished
//! leader surfaces as a typed `Internal` error, never a hang. Every
//! member's `Outcome` reports `batched = k`.
//!
//! The key is `(fingerprint, engine, n, m)`: members must agree on the
//! execution, not just the graph. Deadlines are the leader's — members
//! of a group share one run, so a follower with a tighter deadline than
//! the leader should not batch (the router only batches submissions
//! whose deadline is not tighter than the leader's window allows;
//! in practice loadgen uses one deadline for all).

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mdf_service::proto::{ErrCode, Outcome, ServiceError};

/// What identical-enough means for coalescing: same canonical graph,
/// same engine, same iteration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BatchKey {
    /// Canonical MLDG fingerprint of the source.
    pub fingerprint: u64,
    /// Engine discriminant (`Engine as u8`).
    pub engine: u8,
    /// Outer bound.
    pub n: i64,
    /// Inner bound.
    pub m: i64,
}

struct GroupState {
    members: u64,
    /// Once closed, no follower may join; the member count is final.
    closed: bool,
    result: Option<Result<Outcome, ServiceError>>,
}

/// One in-flight batch group.
pub struct Group {
    state: Mutex<GroupState>,
    cv: Condvar,
}

/// The role `join` assigned to a submission.
pub enum Role {
    /// Execute on behalf of the group after the window elapses.
    Leader(Arc<Group>),
    /// Wait for the leader's published result.
    Follower(Arc<Group>),
}

/// The batching table. One per router.
pub struct Batcher {
    window: Duration,
    groups: Mutex<BTreeMap<BatchKey, Arc<Group>>>,
}

impl Batcher {
    /// A batcher with the given coalescing window. A zero window is
    /// legal (the leader flushes immediately; only submissions that
    /// arrive while an execution is already in flight coalesce).
    pub fn new(window: Duration) -> Batcher {
        Batcher {
            window,
            groups: Mutex::new(BTreeMap::new()),
        }
    }

    /// The coalescing window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Joins (or opens) the group for `key`.
    pub fn join(&self, key: BatchKey) -> Role {
        let mut groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(group) = groups.get(&key) {
            let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.closed {
                st.members += 1;
                return Role::Follower(Arc::clone(group));
            }
            // Closed but not yet removed (leader is mid-flush): fall
            // through and open a fresh group for the next round.
        }
        let group = Arc::new(Group {
            state: Mutex::new(GroupState {
                members: 1,
                closed: false,
                result: None,
            }),
            cv: Condvar::new(),
        });
        groups.insert(key, Arc::clone(&group));
        Role::Leader(group)
    }

    /// Leader only: closes the group, removes it from the table, and
    /// returns the final member count. After this returns, no new member
    /// can join the group.
    ///
    /// The leader sleeps out the window (and waits for an execution
    /// slot) *before* closing — the longer the leader is blocked, the
    /// more followers coalesce, so batch size adapts to load.
    pub fn close(&self, key: BatchKey, group: &Arc<Group>) -> u64 {
        {
            // Remove from the table first: a submission arriving during
            // the flush opens a new group instead of joining a closed one.
            let mut groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
            if groups.get(&key).is_some_and(|g| Arc::ptr_eq(g, group)) {
                groups.remove(&key);
            }
        }
        let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        st.members
    }

    /// Leader only: publishes the result and wakes every follower. The
    /// members' `Outcome.batched` is set by the caller before publishing.
    pub fn publish(group: &Arc<Group>, result: Result<Outcome, ServiceError>) {
        let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
        st.result = Some(result);
        drop(st);
        group.cv.notify_all();
    }

    /// Follower only: waits for the published result, bounded by
    /// `timeout`. A missing result past the bound is a typed `Internal`
    /// error ("batch leader vanished") — never a hang.
    pub fn wait(group: &Arc<Group>, timeout: Duration) -> Result<Outcome, ServiceError> {
        let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        while st.result.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ServiceError {
                    code: ErrCode::Internal,
                    retry_after_ms: 25,
                    message: "batch leader vanished before publishing a result".into(),
                });
            }
            let (next, _) = group
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = next;
        }
        match st.result.as_ref() {
            Some(r) => r.clone(),
            None => unreachable!("loop exits only when result is Some"),
        }
    }
}

/// Publishes a typed `Internal` error if the leader unwinds before
/// publishing a real result, so followers never wait out their full
/// timeout on a panicked leader.
pub struct LeaderGuard {
    group: Arc<Group>,
    published: bool,
}

impl LeaderGuard {
    /// Guards `group` until [`LeaderGuard::publish`] is called.
    pub fn new(group: Arc<Group>) -> LeaderGuard {
        LeaderGuard {
            group,
            published: false,
        }
    }

    /// Publishes the real result and disarms the guard.
    pub fn publish(mut self, result: Result<Outcome, ServiceError>) {
        Batcher::publish(&self.group, result);
        self.published = true;
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.published {
            Batcher::publish(
                &self.group,
                Err(ServiceError {
                    code: ErrCode::Internal,
                    retry_after_ms: 25,
                    message: "batch leader failed before publishing; the fault was isolated".into(),
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> BatchKey {
        BatchKey {
            fingerprint: 0xabc,
            engine: 0,
            n: 8,
            m: 8,
        }
    }

    fn outcome() -> Outcome {
        Outcome {
            executed: true,
            fingerprint: 7,
            barriers: 1,
            stmt_instances: 81,
            cache_hit: true,
            recovered: false,
            batched: 1,
            rerouted: false,
            shard: 0,
            plan: "test".into(),
        }
    }

    #[test]
    fn followers_share_the_leaders_result() {
        let batcher = Arc::new(Batcher::new(Duration::from_millis(30)));
        let Role::Leader(leader) = batcher.join(key()) else {
            panic!("first join must lead");
        };
        let mut followers = Vec::new();
        for _ in 0..3 {
            let Role::Follower(g) = batcher.join(key()) else {
                panic!("joins inside the window must follow");
            };
            followers.push(std::thread::spawn(move || {
                Batcher::wait(&g, Duration::from_secs(5))
            }));
        }
        let k = batcher.close(key(), &leader);
        assert_eq!(k, 4, "leader plus three followers");
        let mut done = outcome();
        done.batched = k;
        Batcher::publish(&leader, Ok(done.clone()));
        for f in followers {
            let got = f.join().unwrap().unwrap();
            assert_eq!(got, done);
        }
        // After close+publish the key is free: the next join leads anew.
        assert!(matches!(batcher.join(key()), Role::Leader(_)));
    }

    #[test]
    fn vanished_leader_is_a_typed_error_not_a_hang() {
        let batcher = Batcher::new(Duration::from_millis(5));
        let Role::Leader(_leader) = batcher.join(key()) else {
            panic!("first join must lead");
        };
        let Role::Follower(g) = batcher.join(key()) else {
            panic!("second join must follow");
        };
        // The leader never publishes; the follower's wait must bound out.
        let err = Batcher::wait(&g, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.code, ErrCode::Internal);
    }

    #[test]
    fn leader_guard_publishes_on_unwind() {
        let batcher = Batcher::new(Duration::from_millis(5));
        let Role::Leader(leader) = batcher.join(key()) else {
            panic!("first join must lead");
        };
        let Role::Follower(g) = batcher.join(key()) else {
            panic!("second join must follow");
        };
        let guard = LeaderGuard::new(Arc::clone(&leader));
        drop(guard); // simulates the leader unwinding
        let err = Batcher::wait(&g, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.code, ErrCode::Internal);
    }
}
