//! The router process: one front door, N supervised `mdfused` shards.
//!
//! Clients speak the ordinary `mdf-service` frame protocol to the
//! router (typically over TCP — the fleet transport); the router speaks
//! the same protocol to its shards (local unix sockets). Per request:
//!
//! 1. **Fair share** — admission across client identities
//!    ([`crate::fair`]): a hot client past its entitlement gets a typed
//!    `Overloaded` with a retry hint.
//! 2. **Routing** — the canonical MLDG fingerprint of the source (the
//!    same key the shard's plan cache uses) picks the owner on the
//!    consistent-hash ring ([`crate::ring`]), so identical graphs always
//!    land on the shard whose cache is warm.
//! 3. **Batching** — with a window configured, same-key submissions
//!    coalesce ([`crate::batch`]): one shard execution serves all `k`
//!    members, each reporting `batched = k`.
//! 4. **Failover** — a shard that fails mid-request is marked dead on
//!    the ring and the request is re-sent to the next live owner; the
//!    outcome reports `rerouted = true`. The health loop pings every
//!    shard, detects deaths, and respawns with deterministic exponential
//!    backoff (generation bumped each time). No live shard at all is a
//!    typed `Overloaded` — never a hang.
//!
//! The `router.*` chaos sites inject a shard kill (`router.shard`), a
//! spurious ring dead-mark (`router.ring`), and a batch-window stall
//! (`router.batch`); the `mdfuse chaos` sweep requires every one to
//! classify as recovered or detected.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdf_service::proto::{
    ErrCode, FleetStats, Outcome, Request, Response, ServiceError, ServiceStats, ShardRow, Submit,
};
use mdf_service::transport::{read_frame_polled, Endpoint, Listener, Stream, READ_TICK};
use mdf_service::{submit_fingerprint, Client};

use crate::backend::Backend;
use crate::batch::{BatchKey, Batcher, LeaderGuard, Role};
use crate::fair::FairShare;
use crate::ring::{Ring, DEFAULT_VNODES};

/// Tuning knobs for a [`Router`].
pub struct RouterConfig {
    /// Front-door endpoint (typically `tcp:127.0.0.1:PORT`).
    pub endpoint: Endpoint,
    /// Number of worker shards.
    pub shards: u32,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u32,
    /// Batch coalescing window; `None` disables batching.
    pub batch_window: Option<Duration>,
    /// Total in-flight submissions across the fleet (the fair-share
    /// pool). Defaults to `8 × shards`.
    pub fair_slots: u64,
    /// Consult the `router.*` chaos sites. Off in production.
    pub chaos: bool,
    /// Health-ping cadence.
    pub health_interval: Duration,
}

impl RouterConfig {
    /// Defaults: 16 vnodes, batching off, `8 × shards` fair slots,
    /// chaos off, 100 ms health cadence.
    pub fn new(endpoint: Endpoint, shards: u32) -> RouterConfig {
        RouterConfig {
            endpoint,
            shards: shards.max(1),
            vnodes: DEFAULT_VNODES,
            batch_window: None,
            fair_slots: 8 * shards.max(1) as u64,
            chaos: false,
            health_interval: Duration::from_millis(100),
        }
    }
}

/// Deterministic respawn backoff: 50 ms doubling to a 400 ms cap.
fn respawn_backoff(step: u32) -> Duration {
    Duration::from_millis(50u64 << step.min(3))
}

/// Extra window the `router.batch` stall fault injects. Bounded: the
/// batch still flushes, just late.
const BATCH_STALL: Duration = Duration::from_millis(200);

/// Cap on pooled idle connections per shard.
const POOL_CAP: usize = 8;

struct ShardState {
    endpoint: Endpoint,
    generation: u64,
    healthy: bool,
    died_at: Option<Instant>,
    backoff_step: u32,
    routed: u64,
    batched: u64,
    reroutes: u64,
    /// Idle pooled connections, valid for `pool_generation` only.
    pool: Vec<Client>,
    pool_generation: u64,
}

/// A counting semaphore bounding concurrent batched executions to the
/// shard count. Leaders keep their batch group *open* while waiting for
/// a slot, so under load more followers coalesce per group — batch size
/// adapts to queue depth instead of being fixed by the window alone.
struct Gate {
    permits: Mutex<u64>,
    cv: Condvar,
}

/// One execution slot; returned to the gate on drop (panic included, so
/// an isolated leader fault can never leak a slot and wedge the router).
struct GatePermit<'a>(&'a Gate);

impl Gate {
    fn new(permits: u64) -> Gate {
        Gate {
            permits: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> GatePermit<'_> {
        let mut p = lock_unpoisoned(&self.permits);
        while *p == 0 {
            p = self.cv.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        *p -= 1;
        GatePermit(self)
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        *lock_unpoisoned(&self.0.permits) += 1;
        self.0.cv.notify_one();
    }
}

#[derive(Default)]
struct Counters {
    routed: AtomicU64,
    batched_groups: AtomicU64,
    batched_submits: AtomicU64,
    reroutes: AtomicU64,
    shard_deaths: AtomicU64,
    respawns: AtomicU64,
    fair_rejections: AtomicU64,
}

struct Shared {
    config: RouterConfig,
    backend: Box<dyn Backend>,
    draining: AtomicBool,
    ring: Mutex<Ring>,
    shards: Vec<Mutex<ShardState>>,
    counters: Counters,
    batcher: Batcher,
    gate: Gate,
    fair: Arc<FairShare>,
    /// Source text → canonical fingerprint. The fingerprint is a pure
    /// function of the source, so byte-identical resubmissions skip the
    /// parse + canonicalization on the routing path.
    fp_memo: Mutex<std::collections::BTreeMap<String, u64>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// Bound on memoized distinct sources; the table is cleared when full
/// (repeat traffic re-warms it in one round).
const FP_MEMO_CAP: usize = 1024;

/// The routing key for a submission, memoized by exact source text.
fn routing_fingerprint(shared: &Shared, source: &str) -> Result<u64, ServiceError> {
    if let Some(fp) = lock_unpoisoned(&shared.fp_memo).get(source) {
        return Ok(*fp);
    }
    let fp = submit_fingerprint(source)?;
    let mut memo = lock_unpoisoned(&shared.fp_memo);
    if memo.len() >= FP_MEMO_CAP {
        memo.clear();
    }
    memo.insert(source.to_string(), fp);
    Ok(fp)
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running fleet router. Always [`Router::drain`] before dropping.
pub struct Router {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Starts every shard through `backend`, binds the front door, and
    /// spawns the acceptor and health loops.
    pub fn start(config: RouterConfig, backend: Box<dyn Backend>) -> std::io::Result<Router> {
        let mut shards = Vec::with_capacity(config.shards as usize);
        for shard in 0..config.shards {
            let endpoint = backend.start(shard, 0)?;
            shards.push(Mutex::new(ShardState {
                endpoint,
                generation: 0,
                healthy: true,
                died_at: None,
                backoff_step: 0,
                routed: 0,
                batched: 0,
                reroutes: 0,
                pool: Vec::new(),
                pool_generation: 0,
            }));
        }
        let (listener, actual) = Listener::bind(&config.endpoint)?;
        let ring = Ring::new(config.shards, config.vnodes);
        let batcher = Batcher::new(config.batch_window.unwrap_or(Duration::ZERO));
        let fair = Arc::new(FairShare::new(config.fair_slots));
        let shared = Arc::new(Shared {
            config: RouterConfig {
                endpoint: actual,
                ..config
            },
            backend,
            draining: AtomicBool::new(false),
            ring: Mutex::new(ring),
            shards,
            counters: Counters::default(),
            batcher,
            gate: Gate::new(config.shards as u64),
            fair,
            fp_memo: Mutex::new(std::collections::BTreeMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(accept_shared, listener));
        let health_shared = Arc::clone(&shared);
        let health = std::thread::spawn(move || health_loop(health_shared));
        Ok(Router {
            shared,
            acceptor: Some(acceptor),
            health: Some(health),
        })
    }

    /// The resolved front-door endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.shared.config.endpoint
    }

    /// `true` once drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current fleet snapshot (router counters + live per-shard stats).
    pub fn fleet_stats(&self) -> FleetStats {
        fleet_stats(&self.shared)
    }

    /// Graceful shutdown: stop admitting, join every connection handler
    /// and the health loop, snapshot the fleet one last time, then stop
    /// every shard. Returns the final snapshot.
    pub fn drain(mut self) -> FleetStats {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        loop {
            let handles: Vec<JoinHandle<()>> =
                lock_unpoisoned(&self.shared.handlers).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let stats = fleet_stats(&self.shared);
        for shard in 0..self.shared.config.shards {
            // Drop pooled connections first so shard drains don't wait
            // out idle sessions.
            lock_unpoisoned(&self.shared.shards[shard as usize])
                .pool
                .clear();
            self.shared.backend.stop(shard);
        }
        stats
    }
}

fn accept_loop(shared: Arc<Shared>, listener: Listener) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    let _ =
                        catch_unwind(AssertUnwindSafe(|| handle_connection(&conn_shared, stream)));
                });
                lock_unpoisoned(&shared.handlers).push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: Stream) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    loop {
        let payload = match read_frame_polled(&mut stream, &shared.draining) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(err) => {
                let _ = stream.write_all(
                    &Response::Err(ServiceError {
                        code: ErrCode::Proto,
                        retry_after_ms: 0,
                        message: err.to_string(),
                    })
                    .encode(),
                );
                return;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(err) => {
                let _ = stream.write_all(
                    &Response::Err(ServiceError {
                        code: ErrCode::Proto,
                        retry_after_ms: 0,
                        message: err.to_string(),
                    })
                    .encode(),
                );
                return;
            }
        };
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(aggregate_stats(shared)),
            Request::Fleet => Response::Fleet(fleet_stats(shared)),
            Request::Shutdown => {
                shared.draining.store(true, Ordering::SeqCst);
                let _ = stream.write_all(&Response::ShutdownAck.encode());
                return;
            }
            Request::Submit(submit) => {
                // Per-message panic isolation, same contract as the
                // daemon: a routing bug costs one typed Internal error.
                let outcome = catch_unwind(AssertUnwindSafe(|| process_submit(shared, &submit)));
                match outcome {
                    Ok(Ok(done)) => Response::Done(done),
                    Ok(Err(err)) => Response::Err(err),
                    Err(_) => Response::Err(ServiceError {
                        code: ErrCode::Internal,
                        retry_after_ms: 25,
                        message: "router worker panicked; the fault was isolated".into(),
                    }),
                }
            }
        };
        if stream.write_all(&resp.encode()).is_err() {
            return; // client went away
        }
    }
}

/// One end-to-end submission through the router: fair share → key →
/// (batch) → route with failover.
fn process_submit(shared: &Shared, submit: &Submit) -> Result<Outcome, ServiceError> {
    let _permit = shared.fair.acquire(&submit.client).inspect_err(|_| {
        shared
            .counters
            .fair_rejections
            .fetch_add(1, Ordering::SeqCst);
    })?;
    // The routing key parses the source exactly as a shard would, so an
    // unroutable submission fails here with the same typed error the
    // daemon would return — no shard round-trip wasted.
    let fingerprint = routing_fingerprint(shared, &submit.source)?;
    if shared.config.batch_window.is_none() {
        return route_execute(shared, fingerprint, submit);
    }
    let key = BatchKey {
        fingerprint,
        engine: submit.engine as u8,
        n: submit.n,
        m: submit.m,
    };
    match shared.batcher.join(key) {
        Role::Leader(group) => {
            let guard = LeaderGuard::new(Arc::clone(&group));
            // The router.batch fault stalls the window, bounded by
            // BATCH_STALL: the batch flushes late, never never-flushes.
            let stall = if shared.config.chaos
                && mdf_chaos::hit("router.batch") == Some(mdf_chaos::FaultKind::DeadlineExpiry)
            {
                BATCH_STALL
            } else {
                Duration::ZERO
            };
            std::thread::sleep(shared.batcher.window().saturating_add(stall));
            // Execution slot before close: while this leader queues for
            // one, the group stays open and followers keep coalescing.
            let _slot = shared.gate.acquire();
            let k = shared.batcher.close(key, &group);
            shared
                .counters
                .batched_groups
                .fetch_add(1, Ordering::SeqCst);
            let mut result = route_execute(shared, fingerprint, submit);
            if let Ok(o) = &mut result {
                o.batched = k;
                if k > 1 {
                    shared
                        .counters
                        .batched_submits
                        .fetch_add(k, Ordering::SeqCst);
                    lock_unpoisoned(&shared.shards[o.shard as usize]).batched += k;
                }
            }
            guard.publish(result.clone());
            result
        }
        Role::Follower(group) => {
            let deadline_ms = if submit.deadline_ms == 0 {
                10_000
            } else {
                submit.deadline_ms
            };
            let timeout = shared.batcher.window()
                + BATCH_STALL
                + Duration::from_millis(deadline_ms)
                + Duration::from_secs(5);
            Batcher::wait(&group, timeout)
        }
    }
}

/// Routes one submission to its owner shard, failing over across the
/// ring on transport errors. Typed service errors from a shard pass
/// through unchanged (they are answers, not failures).
fn route_execute(
    shared: &Shared,
    fingerprint: u64,
    submit: &Submit,
) -> Result<Outcome, ServiceError> {
    let no_shard = || ServiceError {
        code: ErrCode::Overloaded,
        retry_after_ms: 200,
        message: "no live shard can take this request; the fleet is respawning".into(),
    };
    let mut rerouted = false;
    // Each shard gets at most one try per request (plus one slot for a
    // chaos ring flap); after that the fleet is genuinely unroutable.
    for _ in 0..=shared.config.shards {
        let owner = match lock_unpoisoned(&shared.ring).owner(fingerprint) {
            Some(s) => s,
            None => return Err(no_shard()),
        };
        // The router.ring flap: spuriously mark the owner dead. The
        // request reroutes to the next live owner; the health loop pings
        // the "dead" shard, finds it alive, and revives it in place.
        if shared.config.chaos
            && mdf_chaos::hit("router.ring") == Some(mdf_chaos::FaultKind::WorkerPanic)
        {
            lock_unpoisoned(&shared.ring).set_live(owner, false);
            rerouted = true;
            continue;
        }
        match shard_request(shared, owner, &Request::Submit(submit.clone())) {
            Ok(Response::Done(mut o)) => {
                o.shard = owner;
                o.rerouted = rerouted;
                shared.counters.routed.fetch_add(1, Ordering::SeqCst);
                let mut st = lock_unpoisoned(&shared.shards[owner as usize]);
                st.routed += 1;
                if rerouted {
                    st.reroutes += 1;
                    drop(st);
                    shared.counters.reroutes.fetch_add(1, Ordering::SeqCst);
                }
                return Ok(o);
            }
            Ok(Response::Err(e)) => return Err(e),
            Ok(other) => {
                return Err(ServiceError {
                    code: ErrCode::Internal,
                    retry_after_ms: 25,
                    message: format!("unexpected shard response {other:?}"),
                })
            }
            Err(_) => {
                // Transport failure mid-request: the shard is dead (or
                // dying). Mark it and re-route — the typed outcome the
                // client eventually sees says `rerouted`, never a hang.
                mark_dead(shared, owner);
                rerouted = true;
            }
        }
    }
    Err(no_shard())
}

/// Sends one request on a pooled shard connection (connecting fresh if
/// the pool is empty or stale). The connection returns to the pool only
/// after a clean exchange.
fn shard_request(
    shared: &Shared,
    shard: u32,
    req: &Request,
) -> Result<Response, mdf_service::ProtoError> {
    let (endpoint, generation, pooled) = {
        let mut st = lock_unpoisoned(&shared.shards[shard as usize]);
        let pooled = if st.pool_generation == st.generation {
            st.pool.pop()
        } else {
            st.pool.clear();
            None
        };
        (st.endpoint.clone(), st.generation, pooled)
    };
    let mut client = match pooled {
        Some(c) => c,
        None => Client::connect_endpoint(&endpoint)
            .map_err(|e| mdf_service::ProtoError::Io(e.to_string()))?,
    };
    let resp = client.request(req)?;
    let mut st = lock_unpoisoned(&shared.shards[shard as usize]);
    if st.generation == generation && st.pool.len() < POOL_CAP {
        st.pool_generation = generation;
        st.pool.push(client);
    }
    Ok(resp)
}

/// Marks a shard dead: off the ring, pool flushed, death counted. The
/// health loop owns respawning it.
fn mark_dead(shared: &Shared, shard: u32) {
    let mut st = lock_unpoisoned(&shared.shards[shard as usize]);
    if st.healthy {
        st.healthy = false;
        st.died_at = Some(Instant::now());
        st.pool.clear();
        shared.counters.shard_deaths.fetch_add(1, Ordering::SeqCst);
    }
    drop(st);
    lock_unpoisoned(&shared.ring).set_live(shard, false);
}

/// The supervision loop: pings healthy shards, detects deaths, respawns
/// dead shards with deterministic exponential backoff, and revives
/// shards a ring flap spuriously marked dead.
fn health_loop(shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        // The router.shard fault: kill one shard outright. Detection and
        // respawn below must bring the fleet back without operator help.
        if shared.config.chaos
            && mdf_chaos::hit("router.shard") == Some(mdf_chaos::FaultKind::WorkerPanic)
        {
            let victim = 0;
            shared.backend.stop(victim);
        }
        for shard in 0..shared.config.shards {
            let (ring_live, healthy, died_at, backoff_step, generation) = {
                let st = lock_unpoisoned(&shared.shards[shard as usize]);
                (
                    lock_unpoisoned(&shared.ring).is_live(shard),
                    st.healthy,
                    st.died_at,
                    st.backoff_step,
                    st.generation,
                )
            };
            if healthy {
                match shard_request(&shared, shard, &Request::Ping) {
                    Ok(Response::Pong) => {
                        // Alive. If a ring flap marked it dead, revive in
                        // place — no respawn, only its keys move back.
                        if !ring_live {
                            lock_unpoisoned(&shared.ring).set_live(shard, true);
                        }
                    }
                    _ => mark_dead(&shared, shard),
                }
            } else {
                let due = died_at
                    .map(|t| t.elapsed() >= respawn_backoff(backoff_step))
                    .unwrap_or(true);
                if !due {
                    continue;
                }
                match shared.backend.start(shard, generation + 1) {
                    Ok(endpoint) => {
                        let mut st = lock_unpoisoned(&shared.shards[shard as usize]);
                        st.endpoint = endpoint;
                        st.generation += 1;
                        st.healthy = true;
                        st.died_at = None;
                        st.backoff_step = 0;
                        st.pool.clear();
                        st.pool_generation = st.generation;
                        drop(st);
                        lock_unpoisoned(&shared.ring).set_live(shard, true);
                        shared.counters.respawns.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        let mut st = lock_unpoisoned(&shared.shards[shard as usize]);
                        st.backoff_step = (st.backoff_step + 1).min(3);
                        st.died_at = Some(Instant::now());
                    }
                }
            }
        }
        std::thread::sleep(shared.config.health_interval);
    }
}

/// Sum of every live shard's counters — what `Request::Stats` answers,
/// so single-daemon tooling (loadgen probes) works against a router too.
fn aggregate_stats(shared: &Shared) -> ServiceStats {
    let fleet = fleet_stats(shared);
    let mut sum = ServiceStats::default();
    for row in &fleet.shards {
        let s = &row.stats;
        sum.connections += s.connections;
        sum.requests += s.requests;
        sum.completed += s.completed;
        sum.cache_hits += s.cache_hits;
        sum.cache_misses += s.cache_misses;
        sum.cache_rejected += s.cache_rejected;
        sum.overload_rejections += s.overload_rejections;
        sum.drain_rejections += s.drain_rejections;
        sum.deadline_expiries += s.deadline_expiries;
        sum.recoveries += s.recoveries;
        sum.proto_errors += s.proto_errors;
        sum.panics_isolated += s.panics_isolated;
        sum.cache_warm_hits += s.cache_warm_hits;
        sum.cache_warm_loaded += s.cache_warm_loaded;
    }
    sum
}

fn fleet_stats(shared: &Shared) -> FleetStats {
    let c = &shared.counters;
    let mut rows = Vec::with_capacity(shared.config.shards as usize);
    for shard in 0..shared.config.shards {
        let (generation, healthy, routed, batched, reroutes) = {
            let st = lock_unpoisoned(&shared.shards[shard as usize]);
            (
                st.generation,
                st.healthy,
                st.routed,
                st.batched,
                st.reroutes,
            )
        };
        let stats = if healthy {
            match shard_request(shared, shard, &Request::Stats) {
                Ok(Response::Stats(s)) => s,
                _ => ServiceStats::default(),
            }
        } else {
            ServiceStats::default()
        };
        rows.push(ShardRow {
            id: shard,
            generation,
            healthy,
            routed,
            batched,
            reroutes,
            stats,
        });
    }
    FleetStats {
        routed: c.routed.load(Ordering::SeqCst),
        batched_groups: c.batched_groups.load(Ordering::SeqCst),
        batched_submits: c.batched_submits.load(Ordering::SeqCst),
        reroutes: c.reroutes.load(Ordering::SeqCst),
        shard_deaths: c.shard_deaths.load(Ordering::SeqCst),
        respawns: c.respawns.load(Ordering::SeqCst),
        fair_rejections: c.fair_rejections.load(Ordering::SeqCst),
        shards: rows,
    }
}
