//! # mdf-router — fingerprint-sharded fleet front door for `mdfused`
//!
//! One `mdfused` daemon pins one process; this crate turns N of them
//! into a fleet behind a single endpoint. The pieces:
//!
//! - [`ring`] — consistent-hash ring over canonical MLDG fingerprints:
//!   identical graphs land on the shard whose plan cache is warm, and a
//!   shard death remaps only that shard's keys.
//! - [`backend`] — how shards start/stop: in-process [`Server`]s for
//!   tests and `loadgen --shards`, child processes in the CLI.
//! - [`batch`] — same-fingerprint submissions inside a bounded window
//!   coalesce into one shard execution (`batched = k` in every member's
//!   outcome).
//! - [`fair`] — identity-aware fair-share admission in front of the
//!   per-shard `Budget` meters: a hot client past its entitlement gets a
//!   typed `Overloaded`, not the whole fleet.
//! - [`router`] — the process itself: front-door acceptor (unix or TCP
//!   via `mdf-service`'s transport), per-request routing with typed
//!   reroute on shard death, and a health loop that detects deaths and
//!   respawns with deterministic backoff.
//!
//! [`Server`]: mdf_service::Server

pub mod backend;
pub mod batch;
pub mod fair;
pub mod ring;
pub mod router;

pub use backend::{Backend, InProcessBackend};
pub use batch::{BatchKey, Batcher, LeaderGuard, Role};
pub use fair::{FairPermit, FairShare};
pub use ring::{Ring, DEFAULT_VNODES};
pub use router::{Router, RouterConfig};
