//! How the router starts and stops its worker shards.
//!
//! The router supervises N `mdfused` shards but does not care how they
//! run: [`Backend`] abstracts over in-process servers (tests, chaos
//! sweeps, `loadgen --shards`) and real child processes (`mdfuse route`,
//! implemented in the CLI where `current_exe` is available).

use std::sync::Mutex;

use mdf_service::transport::Endpoint;
use mdf_service::{Server, ServiceConfig};

/// Starts and stops shard daemons on behalf of the router.
pub trait Backend: Send + Sync + 'static {
    /// Starts (or restarts) shard `shard` as generation `generation` and
    /// returns the endpoint it serves on. Must not return until the
    /// shard is accepting connections.
    fn start(&self, shard: u32, generation: u64) -> std::io::Result<Endpoint>;

    /// Stops shard `shard`, releasing its resources. Used on drain and
    /// by the `router.shard` chaos fault (shard kill).
    fn stop(&self, shard: u32);
}

/// Shards as in-process [`Server`]s on temp unix sockets. This is the
/// fleet the tests, the chaos sweep, and `loadgen --shards` use: one
/// process, N daemons, real sockets between them.
pub struct InProcessBackend {
    template: ServiceConfig,
    servers: Mutex<Vec<Option<Server>>>,
}

impl InProcessBackend {
    /// A backend whose shards clone `template` (endpoint overridden per
    /// shard/generation).
    pub fn new(shards: u32, template: ServiceConfig) -> InProcessBackend {
        InProcessBackend {
            template,
            servers: Mutex::new((0..shards).map(|_| None).collect()),
        }
    }
}

impl Backend for InProcessBackend {
    fn start(&self, shard: u32, generation: u64) -> std::io::Result<Endpoint> {
        let path = std::env::temp_dir().join(format!(
            "mdfused-shard-{}-{shard}-g{generation}.sock",
            std::process::id()
        ));
        let mut config = self.template.clone();
        config.endpoint = Endpoint::Unix(path);
        // Per-shard-*slot* cache dir (generation-independent): a
        // respawned generation reopens its predecessor's store and
        // warm-starts instead of replanning the shard's key range.
        if let Some(root) = &self.template.cache_dir {
            config.cache_dir = Some(root.join(format!("shard-{shard}")));
        }
        let server = Server::start(config)?;
        let endpoint = server.endpoint().clone();
        let mut servers = self.servers.lock().unwrap_or_else(|e| e.into_inner());
        let slot = servers
            .get_mut(shard as usize)
            .ok_or_else(|| std::io::Error::other(format!("no such shard {shard}")))?;
        // A lingering previous generation is drained before the new one
        // takes the slot.
        if let Some(old) = slot.replace(server) {
            drop(servers); // drain joins threads; don't hold the lock
            let _ = old.drain();
        }
        Ok(endpoint)
    }

    fn stop(&self, shard: u32) {
        let server = {
            let mut servers = self.servers.lock().unwrap_or_else(|e| e.into_inner());
            servers.get_mut(shard as usize).and_then(Option::take)
        };
        if let Some(s) = server {
            let _ = s.drain();
        }
    }
}
