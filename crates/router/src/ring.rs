//! The consistent-hash ring: canonical MLDG fingerprint → shard.
//!
//! Each shard owns `vnodes` points on a `u64` ring, placed by a seeded
//! splitmix64 hash of `(shard, vnode)` — deterministic across router
//! restarts, so a fingerprint always lands on the same shard for a given
//! fleet size. Lookup walks clockwise from the key to the first point
//! whose shard is *live*; dead shards are skipped in place rather than
//! removed, which is what gives the minimal-remap property: when a shard
//! dies, only the keys it owned move (to their next clockwise live
//! owner), and every other key keeps its shard. When it comes back, the
//! same keys move home again.

/// splitmix64: the workspace-standard deterministic mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Default virtual nodes per shard. Enough to spread load within ~20% of
/// even for small fleets without making lookup tables large.
pub const DEFAULT_VNODES: u32 = 16;

/// A fixed-membership consistent-hash ring with per-shard liveness.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u32)>,
    live: Vec<bool>,
}

impl Ring {
    /// Builds the ring for `shards` shards with `vnodes` points each
    /// (all live). `shards` must be ≥ 1.
    pub fn new(shards: u32, vnodes: u32) -> Ring {
        assert!(shards >= 1, "a ring needs at least one shard");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity((shards * vnodes) as usize);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                // Seed each point from (shard, vnode) so membership, not
                // insertion order, determines the layout.
                let mut state = ((shard as u64) << 32) | vnode as u64;
                points.push((splitmix64(&mut state), shard));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            live: vec![true; shards as usize],
        }
    }

    /// Number of shards (live or not).
    pub fn shards(&self) -> u32 {
        self.live.len() as u32
    }

    /// Number of currently live shards.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Whether `shard` is currently live.
    pub fn is_live(&self, shard: u32) -> bool {
        self.live.get(shard as usize).copied().unwrap_or(false)
    }

    /// Marks a shard live or dead. Dead shards keep their points; they
    /// are skipped during lookup, so only their keys remap.
    pub fn set_live(&mut self, shard: u32, live: bool) {
        if let Some(l) = self.live.get_mut(shard as usize) {
            *l = live;
        }
    }

    /// The live shard owning `key`: the first clockwise point (wrapping)
    /// whose shard is live. `None` when every shard is dead.
    pub fn owner(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|(p, _)| *p < key);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if self.live[shard as usize] {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_has_exactly_one_live_owner() {
        let ring = Ring::new(4, DEFAULT_VNODES);
        for k in 0..1000u64 {
            let key = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let owner = ring.owner(key).expect("all shards live");
            assert!(owner < 4);
            // Deterministic: same key, same owner.
            assert_eq!(ring.owner(key), Some(owner));
        }
    }

    #[test]
    fn death_remaps_only_the_dead_shards_keys() {
        let mut ring = Ring::new(4, DEFAULT_VNODES);
        let keys: Vec<u64> = (0..2000u64)
            .map(|k| k.wrapping_mul(0x517c_c1b7_2722_0a95))
            .collect();
        let before: Vec<u32> = keys.iter().map(|k| ring.owner(*k).unwrap()).collect();
        ring.set_live(2, false);
        for (k, owner_before) in keys.iter().zip(&before) {
            let owner_after = ring.owner(*k).unwrap();
            if *owner_before == 2 {
                assert_ne!(owner_after, 2, "dead shard still owns key {k:#x}");
            } else {
                assert_eq!(
                    owner_after, *owner_before,
                    "key {k:#x} moved although its shard survived"
                );
            }
        }
        // Revival moves exactly those keys home again.
        ring.set_live(2, true);
        let revived: Vec<u32> = keys.iter().map(|k| ring.owner(*k).unwrap()).collect();
        assert_eq!(revived, before);
    }

    #[test]
    fn all_dead_means_no_owner() {
        let mut ring = Ring::new(2, 4);
        ring.set_live(0, false);
        ring.set_live(1, false);
        assert_eq!(ring.owner(42), None);
        assert_eq!(ring.live_count(), 0);
    }
}
