#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-core` — the paper's fusion algorithms
//!
//! Polynomial-time nested loop fusion with full parallelism, after
//! "Efficient Polynomial-Time Nested Loop Fusion with Full Parallelism"
//! (Sha, O'Neil, Passos; ICPP 1996):
//!
//! * [`llofra`] — Algorithm 2 (legal loop fusion retiming, Theorem 3.2);
//! * [`acyclic`] — Algorithm 3 (full parallelism on acyclic 2LDGs,
//!   Theorem 4.1);
//! * [`cyclic`] — Algorithm 4 (full parallelism on cyclic 2LDGs,
//!   Theorem 4.2, two-phase x/y solve);
//! * [`hyperplane`] — Algorithm 5 (DOALL hyperplane wavefront,
//!   Lemma 4.3 / Theorem 4.4);
//! * [`planner`] — end-to-end selection + independent verification;
//! * [`ndim`] — the `N`-dimensional generalization of LLOFRA;
//! * [`partial`] — partial fusion into the fewest row-DOALL clusters
//!   (an extension for graphs that defeat Theorem 4.2);
//! * [`report`] — analysis reports.
//!
//! All algorithms reduce to difference-constraint systems solved by
//! Bellman–Ford (`mdf-constraint`), are `O(|V| |E|)`, and return canonical
//! (shortest-path) retimings — which is why they reproduce the paper's
//! worked examples coefficient for coefficient.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acyclic;
pub mod cyclic;
pub mod explain;
pub mod hyperplane;
pub mod llofra;
pub mod ndim;
pub mod partial;
pub mod planner;
pub mod report;

pub use acyclic::{fuse_acyclic, fuse_acyclic_budgeted, fuse_acyclic_traced};
pub use cyclic::{fuse_cyclic, fuse_cyclic_budgeted, fuse_cyclic_traced};
pub use explain::{explain_fusion, Explanation};
pub use hyperplane::{
    fuse_hyperplane, fuse_hyperplane_budgeted, fuse_hyperplane_traced, HyperplanePlan,
};
pub use llofra::{llofra, llofra_budgeted, llofra_traced};
pub use partial::{
    fuse_partial, fuse_partial_budgeted, fuse_partial_traced, verify_partial, PartialFusionPlan,
};
pub use planner::{
    plan_fusion, plan_fusion_budgeted, plan_fusion_traced, verify_plan, DegradedPlan,
    FullParallelMethod, FusionPlan, PlanReport, Rung, RungAttempt,
};
pub use report::{analyze, AnalysisReport};

// Re-exported so downstream crates name the pipeline error and budget
// types through one crate.
pub use mdf_graph::{
    Budget, BudgetMeter, BudgetResource, InfeasiblePhase, MdfError, WitnessWeight,
};
