//! Algorithm 5: full hyperplane parallelism for cyclic 2LDGs
//! (Lemma 4.3, Theorem 4.4).
//!
//! When Theorem 4.2's conditions fail — some cycle cannot absorb its hard
//! edges, or same-iteration alignment is contradictory — the innermost loop
//! cannot be DOALL in the original row order. Algorithm 5 instead:
//!
//! 1. retimes with LLOFRA so that every dependence vector is `>= (0,0)`;
//! 2. derives a strict schedule vector `s` from the retimed vectors
//!    (Lemma 4.3);
//! 3. returns the hyperplane `h ⟂ s` along which all iterations are
//!    independent (wavefront execution).

use mdf_graph::budget::BudgetMeter;
use mdf_graph::error::MdfError;
use mdf_graph::mldg::Mldg;
use mdf_retime::{apply_retiming, wavefront_for, Retiming, Wavefront};
use mdf_trace::Span;

use crate::llofra::{llofra, llofra_traced};

/// The result of Algorithm 5: a fusion-legalizing retiming plus a wavefront
/// along which the fused loop is fully parallel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperplanePlan {
    /// The LLOFRA retiming.
    pub retiming: Retiming,
    /// Schedule vector and DOALL hyperplane.
    pub wavefront: Wavefront,
}

/// Runs Algorithm 5. Fails only when LLOFRA itself is infeasible, i.e. the
/// 2LDG has a cycle of lexicographically negative weight (such a graph is
/// not a legal nested loop at all).
pub fn fuse_hyperplane(g: &Mldg) -> Result<HyperplanePlan, MdfError> {
    finish(g, llofra(g)?)
}

/// Runs Algorithm 5 under a resource budget (the LLOFRA solve is metered).
pub fn fuse_hyperplane_budgeted(
    g: &Mldg,
    meter: &mut BudgetMeter,
) -> Result<HyperplanePlan, MdfError> {
    fuse_hyperplane_traced(g, meter, &Span::disabled())
}

/// As [`fuse_hyperplane_budgeted`], reporting the LLOFRA solve onto a
/// `solve` child of `span`.
pub fn fuse_hyperplane_traced(
    g: &Mldg,
    meter: &mut BudgetMeter,
    span: &Span,
) -> Result<HyperplanePlan, MdfError> {
    finish(g, llofra_traced(g, meter, span)?)
}

/// Derives the wavefront from a LLOFRA retiming. LLOFRA guarantees all
/// retimed dependence vectors are `>= (0,0)`, so Lemma 4.3 applies; the
/// schedule derivation failing anyway would mean the retiming is corrupt,
/// reported as [`MdfError::Invalid`] rather than a panic.
fn finish(g: &Mldg, retiming: Retiming) -> Result<HyperplanePlan, MdfError> {
    let retimed = apply_retiming(g, &retiming);
    let wavefront = wavefront_for(&retimed)
        .map_err(|e| MdfError::invalid(format!("wavefront derivation failed: {e}")))?;
    Ok(HyperplanePlan {
        retiming,
        wavefront,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2};
    use mdf_graph::v2;
    use mdf_retime::is_strict_schedule;

    #[test]
    fn figure14_reproduces_section_4_4() {
        let g = figure14();
        let plan = fuse_hyperplane(&g).unwrap();
        // Retiming from Algorithm 2 (checked against the paper's Figure 15
        // in mdf-retime); schedule s = (5,1); hyperplane h = (1,-5).
        assert_eq!(plan.wavefront.schedule, v2(5, 1));
        assert_eq!(plan.wavefront.hyperplane, v2(1, -5));
        let retimed = apply_retiming(&g, &plan.retiming);
        assert!(is_strict_schedule(&retimed, plan.wavefront.schedule));
    }

    #[test]
    fn figure2_also_admits_a_wavefront() {
        // Algorithm 4 succeeds on Figure 2, but Algorithm 5 must still
        // produce a valid (if less convenient) wavefront plan.
        let g = figure2();
        let plan = fuse_hyperplane(&g).unwrap();
        let retimed = apply_retiming(&g, &plan.retiming);
        assert!(is_strict_schedule(&retimed, plan.wavefront.schedule));
        assert_eq!(plan.wavefront.schedule.dot(plan.wavefront.hyperplane), 0);
    }

    #[test]
    fn illegal_graph_propagates_llofra_error() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -5));
        g.add_dep(b, a, (0, 2));
        assert!(matches!(
            fuse_hyperplane(&g),
            Err(MdfError::Infeasible { .. })
        ));
    }

    #[test]
    fn budgeted_hyperplane_matches_plain() {
        use mdf_graph::budget::Budget;
        let g = figure14();
        let mut meter = Budget::unlimited().meter();
        assert_eq!(
            fuse_hyperplane_budgeted(&g, &mut meter).unwrap(),
            fuse_hyperplane(&g).unwrap()
        );
    }
}
