//! Algorithm 4: legal loop fusion with full parallelism for *cyclic*
//! 2LDGs (Theorem 4.2).
//!
//! The retiming is computed in two scalar phases:
//!
//! * **Phase one (x):** solve `r_x(v) - r_x(u) <= δ_L(e).x - 1` for hard
//!   edges and `<= δ_L(e).x` otherwise (Figure 11(a)). Hard edges then end
//!   up with retimed first coordinate `>= 1` — they can never be made
//!   loop-independent, because two of their dependence vectors would need
//!   different second-coordinate adjustments.
//! * **Phase two (y):** every non-hard edge whose phase-one retimed first
//!   coordinate is zero must become exactly `(0,0)`, giving *equality*
//!   constraints `r_y(v) - r_y(u) = δ_L(e).y`, encoded as opposing
//!   inequalities (Figure 11(b)).
//!
//! Theorem 4.2: a DOALL-after-fusion retiming exists iff both constraint
//! graphs are free of negative cycles.

use mdf_constraint::{DifferenceSystem, Engine, Infeasible};
use mdf_graph::budget::BudgetMeter;
use mdf_graph::error::{InfeasiblePhase, MdfError, WitnessWeight};
use mdf_graph::mldg::{EdgeId, Mldg};
use mdf_graph::vec2::IVec2;
use mdf_retime::Retiming;
use mdf_trace::Span;

use crate::llofra::infeasible_witness;

/// Builds the phase-one ("in x") difference system: one scalar variable per
/// node; constraint indices equal MLDG edge indices.
pub fn build_x_system(g: &Mldg) -> DifferenceSystem<i64> {
    let mut sys = DifferenceSystem::new(g.node_count());
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let discount = if g.is_hard(e) { 1 } else { 0 };
        sys.add_le(ed.dst.index(), ed.src.index(), g.delta(e).x - discount);
    }
    sys
}

/// Builds the phase-two ("in y") difference system given the phase-one
/// solution: equality constraints for every non-hard edge that is
/// loop-independent in x after phase one.
pub fn build_y_system(g: &Mldg, rx: &[i64]) -> DifferenceSystem<i64> {
    let mut sys = DifferenceSystem::new(g.node_count());
    for e in g.edge_ids() {
        if g.is_hard(e) {
            continue;
        }
        let ed = g.edge(e);
        if g.delta(e).x + rx[ed.src.index()] - rx[ed.dst.index()] == 0 {
            sys.add_eq(ed.dst.index(), ed.src.index(), g.delta(e).y);
        }
    }
    sys
}

/// Maps a phase-one infeasibility onto the unified witness: constraint
/// indices equal MLDG edge indices in [`build_x_system`].
fn phase_x_infeasible(g: &Mldg, inf: Infeasible<i64>) -> MdfError {
    infeasible_witness(
        g,
        InfeasiblePhase::OuterX,
        inf.cycle.edges.iter().map(|&i| EdgeId(i as u32)).collect(),
        WitnessWeight::Scalar(inf.cycle.total),
    )
}

/// Maps a phase-two infeasibility. The y system's constraints do not map
/// 1:1 onto MLDG edges (equalities lower to two edges each), so the
/// witness carries only the weight.
fn phase_y_infeasible(inf: Infeasible<i64>) -> MdfError {
    MdfError::Infeasible {
        phase: InfeasiblePhase::InnerY,
        cycle: Vec::new(),
        nodes: Vec::new(),
        weight: WitnessWeight::Scalar(inf.cycle.total),
    }
}

/// Runs Algorithm 4 with the default Bellman–Ford engine.
pub fn fuse_cyclic(g: &Mldg) -> Result<Retiming, MdfError> {
    fuse_cyclic_with_engine(g, Engine::BellmanFord)
}

/// Runs Algorithm 4 with a caller-selected engine.
pub fn fuse_cyclic_with_engine(g: &Mldg, engine: Engine) -> Result<Retiming, MdfError> {
    // PHASE ONE: first components.
    let x_sys = build_x_system(g);
    let rx = x_sys
        .solve(engine)
        .map_err(|inf| phase_x_infeasible(g, inf))?;

    // PHASE TWO: second components.
    let y_sys = build_y_system(g, &rx);
    let ry = y_sys.solve(engine).map_err(phase_y_infeasible)?;

    combine(rx, ry)
}

/// Runs Algorithm 4 under a resource budget: both scalar solves are
/// metered, so oversized systems fail fast with
/// [`MdfError::BudgetExceeded`].
pub fn fuse_cyclic_budgeted(g: &Mldg, meter: &mut BudgetMeter) -> Result<Retiming, MdfError> {
    fuse_cyclic_traced(g, meter, &Span::disabled())
}

/// As [`fuse_cyclic_budgeted`], reporting each scalar phase's solve onto
/// `solve-x` / `solve-y` children of `span`.
pub fn fuse_cyclic_traced(
    g: &Mldg,
    meter: &mut BudgetMeter,
    span: &Span,
) -> Result<Retiming, MdfError> {
    let x_sys = build_x_system(g);
    let solve_x = span.child("solve-x");
    let rx = x_sys
        .solve_traced(meter, &solve_x)?
        .map_err(|inf| phase_x_infeasible(g, inf))?;
    solve_x.finish();
    let y_sys = build_y_system(g, &rx);
    let solve_y = span.child("solve-y");
    let ry = y_sys
        .solve_traced(meter, &solve_y)?
        .map_err(phase_y_infeasible)?;
    combine(rx, ry)
}

/// PHASE THREE: combine the per-axis solutions.
fn combine(rx: Vec<i64>, ry: Vec<i64>) -> Result<Retiming, MdfError> {
    let offsets = rx
        .into_iter()
        .zip(ry)
        .map(|(x, y)| IVec2::new(x, y))
        .collect();
    Ok(Retiming::from_offsets(offsets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::legality::fused_inner_loop_is_doall;
    use mdf_graph::paper::{figure14, figure2};
    use mdf_graph::v2;
    use mdf_retime::{
        apply_retiming, check_fusion_legal, check_inner_doall, check_retiming_consistency,
    };

    #[test]
    fn figure2_reproduces_figure12_retiming() {
        let g = figure2();
        let r = fuse_cyclic(&g).unwrap();
        // Section 4.3: r(A)=r(B)=(0,0), r(C)=(-1,0), r(D)=(-1,-1).
        assert_eq!(r.offsets(), &[v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)]);
        let gr = apply_retiming(&g, &r);
        assert_eq!(check_retiming_consistency(&g, &gr, &r, 100), Ok(()));
        assert_eq!(check_fusion_legal(&gr), Ok(()));
        assert_eq!(check_inner_doall(&gr), Ok(()));
        assert!(fused_inner_loop_is_doall(&gr));
    }

    #[test]
    fn figure2_x_constraint_graph_matches_figure11a() {
        // Figure 11(a): hard edge B->C discounted to -1; all other weights
        // are the first coordinates of δ_L.
        let g = figure2();
        let sys = build_x_system(&g);
        let weights: Vec<i64> = sys.graph().edges().iter().map(|e| e.weight).collect();
        // Edge insertion order: A->B, B->C, C->D, A->C, D->A, C->C.
        assert_eq!(weights, vec![1, -1, 0, 0, 2, 1]);
    }

    #[test]
    fn figure2_y_constraint_graph_matches_figure11b() {
        let g = figure2();
        let rx = vec![0, 0, -1, -1];
        let sys = build_y_system(&g, &rx);
        // Only C->D qualifies (non-hard, x-weight 0 after phase one):
        // equality encoded as two edges with weights -1 and +1.
        assert_eq!(sys.constraints(), 2);
        let ws: Vec<i64> = sys.graph().edges().iter().map(|e| e.weight).collect();
        assert_eq!(ws, vec![-1, 1]);
    }

    #[test]
    fn figure14_fails_phase_x() {
        // Figure 14 needs the hyperplane method: the cycle B->C->D->E->B has
        // zero outer weight but contains the hard edges B->C and C->D, so
        // the x system demands sum <= -2 around a cycle.
        let g = figure14();
        match fuse_cyclic(&g) {
            Err(MdfError::Infeasible {
                phase: InfeasiblePhase::OuterX,
                cycle,
                nodes,
                weight: WitnessWeight::Scalar(weight),
            }) => {
                assert!(weight < 0);
                assert!(!cycle.is_empty());
                assert_eq!(nodes.len(), cycle.len());
                // The witness must be a real cycle of the MLDG whose
                // x-weight minus hard-edge discounts equals `weight`.
                let mut w = 0;
                for &e in &cycle {
                    w += g.delta(e).x - if g.is_hard(e) { 1 } else { 0 };
                }
                assert_eq!(w, weight);
            }
            other => panic!("expected PhaseX failure, got {other:?}"),
        }
    }

    #[test]
    fn phase_y_failure_case() {
        // Two same-iteration paths from A to B demanding different
        // alignments: A->B directly with (0,2) and via C with (0,0)+(0,1).
        // All edges are non-hard and loop-independent in x, so phase two
        // requires y(B)-y(A) = 2 and y(B)-y(A) = 1 simultaneously.
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_dep(a, b, (0, 2));
        g.add_dep(a, c, (0, 0));
        g.add_dep(c, b, (0, 1));
        match fuse_cyclic(&g) {
            Err(MdfError::Infeasible {
                phase: InfeasiblePhase::InnerY,
                weight: WitnessWeight::Scalar(weight),
                ..
            }) => assert!(weight < 0),
            other => panic!("expected PhaseY failure, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_cyclic_matches_plain() {
        use mdf_graph::budget::Budget;
        let g = figure2();
        let mut meter = Budget::unlimited().meter();
        assert_eq!(
            fuse_cyclic_budgeted(&g, &mut meter).unwrap(),
            fuse_cyclic(&g).unwrap()
        );
    }

    #[test]
    fn engines_agree_on_figure2() {
        let g = figure2();
        let a = fuse_cyclic_with_engine(&g, Engine::BellmanFord).unwrap();
        let b = fuse_cyclic_with_engine(&g, Engine::Spfa).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn acyclic_graphs_also_work() {
        // Algorithm 4 generalizes Algorithm 3's feasibility on DAGs (though
        // it only forces hard edges across iterations, not every edge).
        let g = mdf_graph::paper::figure8();
        let r = fuse_cyclic(&g).unwrap();
        let gr = apply_retiming(&g, &r);
        assert_eq!(check_fusion_legal(&gr), Ok(()));
        assert_eq!(check_inner_doall(&gr), Ok(()));
    }
}
