//! Step-by-step derivation traces.
//!
//! [`explain_fusion`] re-runs the planner while recording *why* each
//! decision was taken — the inequalities built, their solutions, the
//! retimed weights, the schedule derivation — in the same order the paper
//! presents its worked examples. The `mdfuse explain` command prints it;
//! the structure is also useful for debugging generated workloads.

use std::fmt::Write as _;

use mdf_graph::legality::{cycle_weight_report, fusion_preventing_edges};
use mdf_graph::mldg::Mldg;
use mdf_retime::{apply_retiming, Retiming};

use crate::cyclic::{build_x_system, build_y_system};
use crate::llofra::build_llofra_system;
use crate::planner::{plan_fusion, verify_plan, FullParallelMethod, FusionPlan};

/// One titled step of a derivation.
#[derive(Clone, Debug)]
pub struct Step {
    /// Heading.
    pub title: String,
    /// Pre-rendered body text.
    pub body: String,
}

/// A complete derivation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Ordered steps.
    pub steps: Vec<Step>,
    /// The plan the derivation arrives at, when one exists.
    pub plan: Option<FusionPlan>,
}

impl Explanation {
    /// Renders the derivation as numbered sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "[{}] {}", i + 1, s.title);
            for line in s.body.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }

    fn push(&mut self, title: impl Into<String>, body: impl Into<String>) {
        self.steps.push(Step {
            title: title.into(),
            body: body.into(),
        });
    }
}

fn describe_graph(g: &Mldg) -> String {
    let mut s = String::new();
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let _ = writeln!(
            s,
            "{} -> {} : {:?}{}",
            g.label(ed.src),
            g.label(ed.dst),
            g.deps(e),
            if g.is_hard(e) { "  [hard]" } else { "" }
        );
    }
    s
}

fn describe_retimed(g: &Mldg, r: &Retiming) -> String {
    let gr = apply_retiming(g, r);
    let mut s = String::new();
    for e in gr.edge_ids() {
        let ed = gr.edge(e);
        let _ = writeln!(
            s,
            "{} -> {} : {:?}",
            gr.label(ed.src),
            gr.label(ed.dst),
            gr.deps(e)
        );
    }
    s
}

/// Runs the planner on `g`, recording the derivation.
pub fn explain_fusion(g: &Mldg) -> Explanation {
    let mut ex = Explanation {
        steps: Vec::new(),
        plan: None,
    };

    ex.push(
        format!(
            "the MLDG: {} nodes, {} edges, {} hard",
            g.node_count(),
            g.edge_count(),
            g.edge_ids().filter(|&e| g.is_hard(e)).count()
        ),
        describe_graph(g),
    );

    let fp = fusion_preventing_edges(g);
    let cw = cycle_weight_report(g, 2048);
    ex.push(
        "legality (Theorem 3.1 / Lemma 2.1)",
        format!(
            "fusion-preventing edges (δ < (0,0)): {}\nmin cycle weight: {}{}",
            fp.len(),
            cw.min_weight
                .map_or("n/a (acyclic)".into(), |w| w.to_string()),
            if cw.truncated { " (truncated)" } else { "" },
        ),
    );

    let plan = match plan_fusion(g) {
        Ok(p) => p,
        Err(e) => {
            ex.push(
                "planning fails",
                format!("the graph is not a legal nested loop: {e}"),
            );
            return ex;
        }
    };

    match &plan {
        FusionPlan::FullParallel {
            retiming,
            method: FullParallelMethod::Acyclic,
        } => {
            ex.push(
                "selection: the graph is acyclic — Algorithm 3 (Theorem 4.1)",
                "constraints: r(v) - r(u) <= δ_L(e) - (1,-1) for every edge;\n\
                 the constraint graph inherits acyclicity, so a solution always exists;\n\
                 second components are zeroed afterwards.",
            );
            ex.push("retiming", format!("{}", retiming.display(g)));
        }
        FusionPlan::FullParallel {
            retiming,
            method: FullParallelMethod::Cyclic,
        } => {
            ex.push(
                "selection: cyclic graph, Theorem 4.2 holds — Algorithm 4",
                "two scalar phases: x forces hard edges across outer iterations;\n\
                 y aligns the remaining loop-independent edges exactly.",
            );
            let xs = build_x_system(g);
            let mut body = String::new();
            for e in xs.graph().edges() {
                let _ = writeln!(
                    body,
                    "rx({}) - rx({}) <= {}",
                    g.label(mdf_graph::NodeId(e.dst as u32)),
                    g.label(mdf_graph::NodeId(e.src as u32)),
                    e.weight
                );
            }
            ex.push(
                "phase one: the constraint graph in x (Figure 11(a) style)",
                body,
            );
            let rx: Vec<i64> = retiming.offsets().iter().map(|v| v.x).collect();
            let ys = build_y_system(g, &rx);
            let mut body = String::new();
            if ys.constraints() == 0 {
                body.push_str("(no loop-independent non-hard edges: y phase is trivial)\n");
            }
            for e in ys.graph().edges() {
                let _ = writeln!(
                    body,
                    "ry({}) - ry({}) <= {}",
                    g.label(mdf_graph::NodeId(e.dst as u32)),
                    g.label(mdf_graph::NodeId(e.src as u32)),
                    e.weight
                );
            }
            ex.push(
                "phase two: the constraint graph in y (Figure 11(b) style)",
                body,
            );
            ex.push("combined retiming", format!("{}", retiming.display(g)));
        }
        FusionPlan::Hyperplane {
            retiming,
            wavefront,
        } => {
            ex.push(
                "selection: Theorem 4.2 fails — Algorithm 5 (wavefront)",
                "some cycle cannot absorb its hard edges (or alignment is\n\
                 contradictory); LLOFRA still legalizes fusion and Lemma 4.3\n\
                 yields a DOALL hyperplane.",
            );
            let sys = build_llofra_system(g);
            let mut body = String::new();
            for e in sys.graph().edges() {
                let _ = writeln!(
                    body,
                    "r({}) - r({}) <= {}",
                    g.label(mdf_graph::NodeId(e.dst as u32)),
                    g.label(mdf_graph::NodeId(e.src as u32)),
                    e.weight
                );
            }
            ex.push("LLOFRA's 2-ILP system (Figure 5 style)", body);
            ex.push("retiming", format!("{}", retiming.display(g)));
            ex.push(
                "schedule (Lemma 4.3)",
                format!(
                    "s = {} (minimal s1 with s·d > 0 for every retimed d);\nhyperplane h = {} ⟂ s",
                    wavefront.schedule, wavefront.hyperplane
                ),
            );
        }
    }

    ex.push(
        "retimed dependence sets",
        describe_retimed(g, plan.retiming()),
    );
    let verdict = verify_plan(g, &plan);
    ex.push(
        "independent verification",
        match &verdict {
            Ok(()) => {
                "retiming consistency, fusion legality and parallelism claims all hold".to_string()
            }
            Err(e) => format!("FAILED: {e}"),
        },
    );
    ex.plan = Some(plan);
    ex
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2, figure8};

    #[test]
    fn figure2_explanation_walks_algorithm4() {
        let ex = explain_fusion(&figure2());
        let text = ex.render();
        assert!(text.contains("Algorithm 4"));
        assert!(text.contains("rx(C) - rx(B) <= -1"), "{text}"); // hard edge discount
        assert!(text.contains("r(A)=(0,0) r(B)=(0,0) r(C)=(-1,0) r(D)=(-1,-1)"));
        assert!(text.contains("all hold"));
        assert!(ex.plan.is_some());
    }

    #[test]
    fn figure8_explanation_walks_algorithm3() {
        let text = explain_fusion(&figure8()).render();
        assert!(text.contains("Algorithm 3"));
        assert!(text.contains("r(B)=(-1,0)"));
    }

    #[test]
    fn figure14_explanation_walks_algorithm5() {
        let text = explain_fusion(&figure14()).render();
        assert!(text.contains("Algorithm 5"));
        assert!(text.contains("s = (5,1)"));
        assert!(text.contains("h = (1,-5)"));
    }

    #[test]
    fn infeasible_graph_explained() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -1));
        g.add_dep(b, a, (0, 0));
        let ex = explain_fusion(&g);
        assert!(ex.plan.is_none());
        assert!(ex.render().contains("not a legal nested loop"));
    }
}
