//! Partial fusion — an extension of Algorithm 4 for graphs that defeat
//! Theorem 4.2.
//!
//! When no single fused loop can be DOALL, the loops can still be grouped
//! into *clusters*, each fused into one DOALL loop, executed in sequence
//! within every outer iteration (one barrier per cluster per iteration
//! instead of one per original loop). The constraint system generalizes
//! Algorithm 4's two phases with per-edge requirements:
//!
//! * **intra-cluster** edges need the full DOALL treatment: hard edges
//!   retimed to `x >= 1`; other edges to `x >= 0`, with exact `y = 0`
//!   alignment when `x` lands on 0;
//! * **inter-cluster forward** edges (producer's cluster runs earlier in
//!   the row) only need `x >= 0`: the barrier between the clusters orders
//!   the whole producing row before the consuming row, so any second
//!   coordinate is legal;
//! * **inter-cluster backward** edges need `x >= 1` (the value must come
//!   from an earlier outer iteration).
//!
//! A greedy scan grows the current cluster while the system stays
//! feasible. The result sits between the paper's Algorithm 4 (one cluster)
//! and no fusion (all singletons), and is an alternative to Algorithm 5's
//! wavefront that preserves the row-parallel execution model.

use mdf_constraint::{DifferenceSystem, Engine};
use mdf_graph::budget::BudgetMeter;
use mdf_graph::cycles::topological_order;
use mdf_graph::error::MdfError;
use mdf_graph::legality::textual_order;
use mdf_graph::mldg::{Mldg, NodeId};
use mdf_graph::vec2::IVec2;
use mdf_retime::Retiming;
use mdf_trace::Span;

/// A partial-fusion result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialFusionPlan {
    /// Clusters in execution order; each is fused into one DOALL loop.
    pub clusters: Vec<Vec<NodeId>>,
    /// The global retiming realizing the clustering.
    pub retiming: Retiming,
}

impl PartialFusionPlan {
    /// Barriers per outer iteration (= cluster count).
    pub fn barriers_per_iteration(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster index of each node.
    pub fn cluster_of(&self, node_count: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; node_count];
        for (ci, c) in self.clusters.iter().enumerate() {
            for &n in c {
                out[n.index()] = ci;
            }
        }
        out
    }
}

/// Builds the phase-one ("in x") system for a given cluster assignment.
fn build_x_assignment_system(g: &Mldg, cluster_of: &[usize]) -> DifferenceSystem<i64> {
    let mut xs: DifferenceSystem<i64> = DifferenceSystem::new(g.node_count());
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let (cu, cv) = (cluster_of[ed.src.index()], cluster_of[ed.dst.index()]);
        let discount = if cu == cv {
            i64::from(g.is_hard(e))
        } else if cu < cv {
            0 // forward across a barrier: x >= 0 suffices
        } else {
            1 // backward: must come from an earlier outer iteration
        };
        xs.add_le(ed.dst.index(), ed.src.index(), g.delta(e).x - discount);
    }
    xs
}

/// Builds the phase-two ("in y") system: only intra-cluster alignment
/// matters.
fn build_y_assignment_system(g: &Mldg, cluster_of: &[usize], rx: &[i64]) -> DifferenceSystem<i64> {
    let mut ys: DifferenceSystem<i64> = DifferenceSystem::new(g.node_count());
    for e in g.edge_ids() {
        let ed = g.edge(e);
        if cluster_of[ed.src.index()] != cluster_of[ed.dst.index()] || g.is_hard(e) {
            continue;
        }
        if g.delta(e).x + rx[ed.src.index()] - rx[ed.dst.index()] == 0 {
            ys.add_eq(ed.dst.index(), ed.src.index(), g.delta(e).y);
        }
    }
    ys
}

fn combine(rx: Vec<i64>, ry: Vec<i64>) -> Retiming {
    Retiming::from_offsets(
        rx.into_iter()
            .zip(ry)
            .map(|(x, y)| IVec2::new(x, y))
            .collect(),
    )
}

/// Solves the mixed constraint system for a given cluster assignment.
/// `cluster_of[v]` is the execution position of `v`'s cluster.
fn solve_for_assignment(g: &Mldg, cluster_of: &[usize]) -> Option<Retiming> {
    let rx = build_x_assignment_system(g, cluster_of)
        .solve(Engine::BellmanFord)
        .ok()?;
    let ry = build_y_assignment_system(g, cluster_of, &rx)
        .solve(Engine::BellmanFord)
        .ok()?;
    Some(combine(rx, ry))
}

/// As [`solve_for_assignment`], but metered and traced: `Err` is a budget
/// trip, `Ok(None)` ordinary infeasibility of this assignment. The greedy
/// scan performs `O(|V|)` of these solves, so counters accumulate directly
/// on the caller's span rather than spawning a child span per solve.
fn solve_for_assignment_traced(
    g: &Mldg,
    cluster_of: &[usize],
    meter: &mut BudgetMeter,
    span: &Span,
) -> Result<Option<Retiming>, MdfError> {
    let Ok(rx) = build_x_assignment_system(g, cluster_of).solve_traced(meter, span)? else {
        return Ok(None);
    };
    let Ok(ry) = build_y_assignment_system(g, cluster_of, &rx).solve_traced(meter, span)? else {
        return Ok(None);
    };
    Ok(Some(combine(rx, ry)))
}

/// Greedy partial fusion. Returns `None` when even the all-singleton
/// partition is infeasible (the graph has a lexicographically negative
/// cycle, or a same-iteration cycle no ordering can serialize).
///
/// ```
/// use mdf_core::partial::{fuse_partial, verify_partial};
/// use mdf_graph::paper::figure2;
///
/// // Figure 2 fuses into a single row-DOALL cluster.
/// let plan = fuse_partial(&figure2()).unwrap();
/// assert_eq!(plan.clusters.len(), 1);
/// assert!(verify_partial(&figure2(), &plan));
/// ```
pub fn fuse_partial(g: &Mldg) -> Option<PartialFusionPlan> {
    if g.node_count() == 0 {
        return Some(PartialFusionPlan {
            clusters: Vec::new(),
            retiming: Retiming::identity(0),
        });
    }
    // Scan order: the textual order when one exists, otherwise any
    // topological-ish order (feasibility is decided by the solver anyway).
    let order = textual_order(g)
        .or_else(|| topological_order(g))
        .unwrap_or_else(|| g.node_ids().collect());

    let mut cluster_of = vec![usize::MAX; g.node_count()];
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut retiming: Option<Retiming> = None;

    for &v in &order {
        // Try appending v to the last cluster.
        if let Some(last) = clusters.len().checked_sub(1) {
            cluster_of[v.index()] = last;
            // Unassigned nodes each get their own future position so their
            // edges are treated as inter-cluster in scan order.
            let tentative = assignment_with_tail(&cluster_of, &order, clusters.len());
            if let Some(r) = solve_for_assignment(g, &tentative) {
                clusters[last].push(v);
                retiming = Some(r);
                continue;
            }
        }
        // Start a new cluster with v.
        let next = clusters.len();
        cluster_of[v.index()] = next;
        clusters.push(vec![v]);
        let tentative = assignment_with_tail(&cluster_of, &order, clusters.len());
        match solve_for_assignment(g, &tentative) {
            Some(r) => retiming = Some(r),
            None => return None,
        }
    }
    let retiming = retiming?;
    Some(PartialFusionPlan { clusters, retiming })
}

/// Greedy partial fusion under a resource budget: the per-assignment
/// solves are metered (the greedy scan performs `O(|V|)` of them, so this
/// is the most solver-hungry rung of the planner's ladder). `Err` is a
/// budget trip; `Ok(None)` means no row-parallel clustering exists, as in
/// [`fuse_partial`].
pub fn fuse_partial_budgeted(
    g: &Mldg,
    meter: &mut BudgetMeter,
) -> Result<Option<PartialFusionPlan>, MdfError> {
    fuse_partial_traced(g, meter, &Span::disabled())
}

/// As [`fuse_partial_budgeted`], reporting every per-assignment solve's
/// counters onto `span` (plus `partial.clusters` on success).
pub fn fuse_partial_traced(
    g: &Mldg,
    meter: &mut BudgetMeter,
    span: &Span,
) -> Result<Option<PartialFusionPlan>, MdfError> {
    if g.node_count() == 0 {
        return Ok(Some(PartialFusionPlan {
            clusters: Vec::new(),
            retiming: Retiming::identity(0),
        }));
    }
    let order = textual_order(g)
        .or_else(|| topological_order(g))
        .unwrap_or_else(|| g.node_ids().collect());

    let mut cluster_of = vec![usize::MAX; g.node_count()];
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut retiming: Option<Retiming> = None;

    for &v in &order {
        meter.check_deadline()?;
        if let Some(last) = clusters.len().checked_sub(1) {
            cluster_of[v.index()] = last;
            let tentative = assignment_with_tail(&cluster_of, &order, clusters.len());
            if let Some(r) = solve_for_assignment_traced(g, &tentative, meter, span)? {
                clusters[last].push(v);
                retiming = Some(r);
                continue;
            }
        }
        let next = clusters.len();
        cluster_of[v.index()] = next;
        clusters.push(vec![v]);
        let tentative = assignment_with_tail(&cluster_of, &order, clusters.len());
        match solve_for_assignment_traced(g, &tentative, meter, span)? {
            Some(r) => retiming = Some(r),
            None => return Ok(None),
        }
    }
    let Some(retiming) = retiming else {
        return Ok(None);
    };
    span.add("partial.clusters", clusters.len() as u64);
    Ok(Some(PartialFusionPlan { clusters, retiming }))
}

/// Completes a partial assignment: nodes not yet placed get singleton
/// clusters after all existing ones, in scan order.
fn assignment_with_tail(cluster_of: &[usize], order: &[NodeId], next_free: usize) -> Vec<usize> {
    let mut out = cluster_of.to_vec();
    let mut next = next_free;
    for &v in order {
        if out[v.index()] == usize::MAX {
            out[v.index()] = next;
            next += 1;
        }
    }
    out
}

/// Verifies a partial-fusion plan against the graph: every dependence
/// vector must satisfy its cluster-relative requirement after retiming.
pub fn verify_partial(g: &Mldg, plan: &PartialFusionPlan) -> bool {
    let cluster_of = plan.cluster_of(g.node_count());
    if cluster_of.contains(&usize::MAX) {
        return false;
    }
    g.edge_ids().all(|e| {
        let ed = g.edge(e);
        let shift = plan.retiming.get(ed.src) - plan.retiming.get(ed.dst);
        let (cu, cv) = (cluster_of[ed.src.index()], cluster_of[ed.dst.index()]);
        g.deps(e).iter().all(|d| {
            let r = d + shift;
            if cu == cv {
                r == IVec2::ZERO || r.x >= 1 // row-DOALL inside the cluster
            } else if cu < cv {
                r.x >= 0 // barrier orders the rows
            } else {
                r.x >= 1
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2, figure8};

    #[test]
    fn single_cluster_when_algorithm4_would_succeed() {
        for g in [figure2(), figure8()] {
            let plan = fuse_partial(&g).unwrap();
            assert_eq!(plan.clusters.len(), 1, "{plan:?}");
            assert!(verify_partial(&g, &plan));
            // Matches Algorithm 4's capability.
            assert!(crate::cyclic::fuse_cyclic(&g).is_ok());
        }
    }

    #[test]
    fn relaxation_splits_into_two_doall_clusters() {
        // E5's A <-> B cycle with two hard edges: no single DOALL loop
        // exists (Alg 4 fails), but {A}, {B} works — partial fusion finds
        // the 2-cluster solution where Alg 5 would pay a wavefront.
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_deps(a, b, [mdf_graph::v2(0, -1), mdf_graph::v2(0, 1)]);
        g.add_deps(b, a, [mdf_graph::v2(1, -1), mdf_graph::v2(1, 1)]);
        assert!(crate::cyclic::fuse_cyclic(&g).is_err());
        let plan = fuse_partial(&g).unwrap();
        assert_eq!(plan.clusters.len(), 2);
        assert!(verify_partial(&g, &plan));
    }

    #[test]
    fn figure14_admits_no_row_doall_partition() {
        // The C <-> D cycle has x-weight 0 but y-weight 1: putting C and D
        // in different clusters needs retimed x-sum >= 1 around the cycle,
        // and putting them together needs the same (the hard edge C -> D
        // must cross iterations) — both impossible since retiming
        // preserves the cycle's x-weight of 0. No row-parallel scheme
        // exists at any granularity; Figure 14 genuinely requires the
        // wavefront of Algorithm 5, and partial fusion reports that
        // honestly.
        assert_eq!(fuse_partial(&figure14()), None);
    }

    #[test]
    fn negative_cycle_is_still_rejected() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -2));
        g.add_dep(b, a, (0, 1));
        assert_eq!(fuse_partial(&g), None);
    }

    #[test]
    fn independent_nodes_fuse_fully() {
        let mut g = Mldg::new();
        for l in ["A", "B", "C", "D"] {
            g.add_node(l);
        }
        let plan = fuse_partial(&g).unwrap();
        assert_eq!(plan.clusters.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let plan = fuse_partial(&Mldg::new()).unwrap();
        assert!(plan.clusters.is_empty());
    }

    #[test]
    fn budgeted_partial_matches_plain() {
        use mdf_graph::budget::Budget;
        for g in [figure2(), figure8(), figure14()] {
            let mut meter = Budget::unlimited().meter();
            assert_eq!(
                fuse_partial_budgeted(&g, &mut meter).unwrap(),
                fuse_partial(&g)
            );
        }
    }

    #[test]
    fn verify_rejects_tampered_plans() {
        let g = figure2();
        let mut plan = fuse_partial(&g).unwrap();
        plan.retiming.set(NodeId(2), mdf_graph::v2(5, 5));
        assert!(!verify_partial(&g, &plan));
    }
}
