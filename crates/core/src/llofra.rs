//! LLOFRA — the Legal LOop Fusion Retiming Algorithm (Algorithm 2,
//! Theorem 3.2).
//!
//! Finds a retiming `r` with `δ_r(e) >= (0,0)` for every edge, making loop
//! fusion legal (Theorem 3.1). The inequality system
//! `r(v_j) - r(v_i) <= δ_L(e)` is lowered to a constraint graph with a
//! virtual source (Figure 5) and solved with the two-dimensional
//! Bellman–Ford algorithm. Infeasibility — impossible for any 2LDG whose
//! cycles all weigh at least `(0,0)` — is reported with the offending
//! cycle.

use mdf_constraint::{DifferenceSystem, Engine};
use mdf_graph::budget::BudgetMeter;
use mdf_graph::error::{InfeasiblePhase, MdfError, WitnessWeight};
use mdf_graph::mldg::{EdgeId, Mldg};
use mdf_graph::vec2::IVec2;
use mdf_retime::Retiming;
use mdf_trace::Span;

/// Builds the pipeline-wide [`MdfError::Infeasible`] witness from a
/// negative cycle expressed as MLDG edges: node labels are read off the
/// edge sources in traversal order so the error is self-describing.
pub(crate) fn infeasible_witness(
    g: &Mldg,
    phase: InfeasiblePhase,
    cycle: Vec<EdgeId>,
    weight: WitnessWeight,
) -> MdfError {
    let nodes = cycle
        .iter()
        .map(|&e| g.label(g.edge(e).src).to_string())
        .collect();
    MdfError::Infeasible {
        phase,
        cycle,
        nodes,
        weight,
    }
}

/// Builds LLOFRA's 2-ILP system: one `IVec2` variable per node, one
/// constraint `r(v) - r(u) <= δ_L(e)` per edge. Constraint indices equal
/// MLDG edge indices, which lets infeasibility cycles map back directly.
pub fn build_llofra_system(g: &Mldg) -> DifferenceSystem<IVec2> {
    let mut sys = DifferenceSystem::new(g.node_count());
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let idx = sys.add_le(ed.dst.index(), ed.src.index(), g.delta(e));
        debug_assert_eq!(idx, e.index());
    }
    sys
}

/// Runs LLOFRA with the default Bellman–Ford engine.
///
/// ```
/// use mdf_core::llofra;
/// use mdf_graph::{paper::figure2, v2};
///
/// // Figure 2's 2LDG has fusion-preventing dependences; LLOFRA finds the
/// // retiming of the paper's Section 3.3.
/// let r = llofra(&figure2()).unwrap();
/// assert_eq!(r.offsets(), &[v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
/// ```
pub fn llofra(g: &Mldg) -> Result<Retiming, MdfError> {
    llofra_with_engine(g, Engine::BellmanFord)
}

/// Runs LLOFRA with a caller-selected constraint engine (used by the
/// ablation benchmarks; all engines return the same canonical retiming).
pub fn llofra_with_engine(g: &Mldg, engine: Engine) -> Result<Retiming, MdfError> {
    let sys = build_llofra_system(g);
    match sys.solve(engine) {
        Ok(offsets) => Ok(Retiming::from_offsets(offsets)),
        Err(inf) => Err(lex_infeasible(g, inf)),
    }
}

/// Runs LLOFRA under a resource budget: the 2-D Bellman–Ford solve is
/// metered (rounds + deadline), so oversized or adversarial graphs return
/// [`MdfError::BudgetExceeded`] instead of stalling.
pub fn llofra_budgeted(g: &Mldg, meter: &mut BudgetMeter) -> Result<Retiming, MdfError> {
    llofra_traced(g, meter, &Span::disabled())
}

/// As [`llofra_budgeted`], reporting the 2-D solve onto a `solve` child
/// of `span`.
pub fn llofra_traced(g: &Mldg, meter: &mut BudgetMeter, span: &Span) -> Result<Retiming, MdfError> {
    let sys = build_llofra_system(g);
    let solve = span.child("solve");
    match sys.solve_traced(meter, &solve)? {
        Ok(offsets) => Ok(Retiming::from_offsets(offsets)),
        Err(inf) => Err(lex_infeasible(g, inf)),
    }
}

fn lex_infeasible(g: &Mldg, inf: mdf_constraint::Infeasible<IVec2>) -> MdfError {
    infeasible_witness(
        g,
        InfeasiblePhase::Lex,
        inf.cycle.edges.iter().map(|&i| EdgeId(i as u32)).collect(),
        WitnessWeight::Lex(inf.cycle.total),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2};
    use mdf_graph::v2;
    use mdf_retime::{apply_retiming, check_fusion_legal, check_retiming_consistency};

    #[test]
    fn figure2_reproduces_section_3_3_retiming() {
        let g = figure2();
        let r = llofra(&g).unwrap();
        // Section 3.3: r(A)=(0,0), r(B)=(0,0), r(C)=(0,-2), r(D)=(0,-3).
        assert_eq!(r.offsets(), &[v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
        let gr = apply_retiming(&g, &r);
        assert_eq!(check_retiming_consistency(&g, &gr, &r, 100), Ok(()));
        assert_eq!(check_fusion_legal(&gr), Ok(()));
    }

    #[test]
    fn figure6_retimed_weights() {
        // Figure 6(a) shows the retimed 2LDG: A->B (1,1), B->C (0,0),
        // C->D (0,0), A->C (0,3), D->A (2,-2), C->C (1,0).
        let g = figure2();
        let r = llofra(&g).unwrap();
        let gr = apply_retiming(&g, &r);
        let id = |s: &str| gr.node_by_label(s).unwrap();
        let dd = |a: &str, b: &str| gr.delta(gr.edge_between(id(a), id(b)).unwrap());
        assert_eq!(dd("A", "B"), v2(1, 1));
        assert_eq!(dd("B", "C"), v2(0, 0));
        assert_eq!(dd("C", "D"), v2(0, 0));
        assert_eq!(dd("A", "C"), v2(0, 3));
        assert_eq!(dd("D", "A"), v2(2, -2));
        assert_eq!(dd("C", "C"), v2(1, 0));
    }

    #[test]
    fn figure14_reproduces_section_4_4_retiming() {
        let g = figure14();
        let r = llofra(&g).unwrap();
        assert_eq!(
            r.offsets(),
            &[
                v2(0, 0),
                v2(0, -4),
                v2(0, -6),
                v2(0, -3),
                v2(0, -5),
                v2(0, -6),
                v2(0, 0)
            ]
        );
    }

    #[test]
    fn all_engines_agree() {
        let g = figure14();
        let bf = llofra_with_engine(&g, Engine::BellmanFord).unwrap();
        let spfa = llofra_with_engine(&g, Engine::Spfa).unwrap();
        let dag = llofra_with_engine(&g, Engine::DagOrBellmanFord).unwrap();
        let scc = llofra_with_engine(&g, Engine::SccDecomposed).unwrap();
        assert_eq!(bf, spfa);
        assert_eq!(bf, dag);
        assert_eq!(bf, scc);
    }

    #[test]
    fn negative_cycle_reported_with_witness() {
        // A graph violating the legality hypothesis: cycle weight (0,-1).
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -2));
        g.add_dep(b, a, (0, 1));
        match llofra(&g) {
            Err(MdfError::Infeasible {
                phase: InfeasiblePhase::Lex,
                cycle,
                nodes,
                weight: WitnessWeight::Lex(weight),
            }) => {
                assert_eq!(weight, v2(0, -1));
                assert_eq!(cycle.len(), 2);
                assert_eq!(g.delta_sum(&cycle), v2(0, -1));
                // Node labels follow the cycle's edge sources.
                assert_eq!(nodes.len(), 2);
                assert!(nodes.contains(&"A".to_string()));
                assert!(nodes.contains(&"B".to_string()));
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_llofra_matches_plain_llofra() {
        use mdf_graph::budget::Budget;
        let g = figure2();
        let mut meter = Budget::unlimited().meter();
        assert_eq!(
            llofra_budgeted(&g, &mut meter).unwrap(),
            llofra(&g).unwrap()
        );
    }

    #[test]
    fn already_legal_graph_gets_identity_like_retiming() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, 2));
        g.add_dep(b, a, (1, 0));
        let r = llofra(&g).unwrap();
        // δ_r must be >= (0,0); with nothing negative, shortest paths from
        // the virtual source are all (0,0).
        assert!(r.is_identity());
    }
}
