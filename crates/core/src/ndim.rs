//! `N`-dimensional legal loop fusion — the direct generalization of
//! LLOFRA (Algorithm 2) to loop nests of arbitrary depth.
//!
//! The paper develops its machinery for the two-dimensional case but the
//! MLDG model and Theorem 3.2's argument are dimension-agnostic: the
//! inequality system `r(v_j) - r(v_i) <= δ_L(e)` over `Z^N` with the
//! lexicographic order is feasible iff the constraint graph has no
//! lexicographically negative cycle, and shortest paths from a virtual
//! source (the `N`-dimensional Bellman–Ford) solve it. This module
//! implements that extension.

use mdf_constraint::bellman_ford::{solve_difference_constraints, Solution};
use mdf_constraint::ConstraintGraph;
use mdf_graph::mldg::EdgeId;
use mdf_graph::mldg_n::MldgN;
use mdf_graph::nvec::IVecN;

/// Why `N`-dimensional fusion failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NdimFusionError<const N: usize> {
    /// A lexicographically negative cycle (as MLDG edges) makes the
    /// constraint system infeasible.
    Infeasible {
        /// Edges of the cycle.
        cycle: Vec<EdgeId>,
        /// Its weight.
        weight: IVecN<N>,
    },
}

/// Computes a retiming making fusion legal for an `N`-dimensional MLDG:
/// afterwards every edge weight is lexicographically non-negative.
pub fn llofra_ndim<const N: usize>(g: &MldgN<N>) -> Result<Vec<IVecN<N>>, NdimFusionError<N>> {
    let mut cg: ConstraintGraph<IVecN<N>> = ConstraintGraph::new(g.node_count());
    for e in g.edge_ids() {
        let ed = g.edge(e);
        cg.add_edge(ed.src.index(), ed.dst.index(), g.delta(e));
    }
    match solve_difference_constraints(&cg) {
        Solution::Feasible { dist } => Ok(dist),
        Solution::Infeasible { cycle } => Err(NdimFusionError::Infeasible {
            cycle: cycle.edges.iter().map(|&i| EdgeId(i as u32)).collect(),
            weight: cycle.total,
        }),
    }
}

/// Verifies the post-condition: all retimed minimal weights `>= 0`.
pub fn fusion_legal_after<const N: usize>(g: &MldgN<N>, r: &[IVecN<N>]) -> bool {
    let gr = g.retimed(r);
    gr.edge_ids().all(|e| gr.delta(e).is_lex_nonnegative())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::nvec::vn;

    /// A three-deep nest: outer k, middle i, inner j — the 3-D analogue of
    /// Figure 2's shape.
    fn sample_3d() -> MldgN<3> {
        let mut g: MldgN<3> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_dep(a, b, vn([0, 0, -2]));
        g.add_dep(b, c, vn([0, -1, 3]));
        g.add_dep(c, a, vn([1, 2, 0]));
        g.add_dep(c, c, vn([1, 0, 0]));
        g
    }

    #[test]
    fn three_dimensional_fusion_made_legal() {
        let g = sample_3d();
        // Direct fusion is illegal: (0,0,-2) and (0,-1,3) are negative.
        assert!(g.edge_ids().any(|e| !g.delta(e).is_lex_nonnegative()));
        let r = llofra_ndim(&g).unwrap();
        assert!(fusion_legal_after(&g, &r));
    }

    #[test]
    fn two_dimensional_agrees_with_llofra() {
        // Figure 2 rebuilt as an MldgN<2> must give the same retiming as
        // the specialized 2-D pipeline.
        let mut g: MldgN<2> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        let d = g.add_node("D");
        g.add_dep(a, b, vn([1, 1]));
        g.add_dep(a, b, vn([2, 1]));
        g.add_dep(b, c, vn([0, -2]));
        g.add_dep(b, c, vn([0, 1]));
        g.add_dep(c, d, vn([0, -1]));
        g.add_dep(a, c, vn([0, 1]));
        g.add_dep(d, a, vn([2, 1]));
        g.add_dep(c, c, vn([1, 0]));
        let r = llofra_ndim(&g).unwrap();
        let as_2d: Vec<_> = r.iter().map(|v| v.to_ivec2()).collect();
        let specialized = crate::llofra::llofra(&mdf_graph::paper::figure2()).unwrap();
        assert_eq!(as_2d, specialized.offsets());
    }

    #[test]
    fn negative_cycle_rejected_in_4d() {
        let mut g: MldgN<4> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, vn([0, 0, 0, -1]));
        g.add_dep(b, a, vn([0, 0, 0, 0]));
        match llofra_ndim(&g) {
            Err(NdimFusionError::Infeasible { weight, cycle }) => {
                assert_eq!(weight, vn([0, 0, 0, -1]));
                assert_eq!(cycle.len(), 2);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }
}

/// `true` iff `s · d > 0` for every non-zero dependence vector of `g` —
/// the `N`-dimensional strict-schedule condition of Section 2.3.
pub fn is_strict_schedule_ndim<const N: usize>(g: &MldgN<N>, s: &IVecN<N>) -> bool {
    g.edge_ids().all(|e| {
        g.edge(e)
            .deps
            .iter()
            .all(|d| *d == IVecN::ZERO || s.dot(d) > 0)
    })
}

/// Generalizes Lemma 4.3 to `N` dimensions: given a graph whose dependence
/// vectors are all lexicographically non-negative (e.g. any
/// [`llofra_ndim`]-retimed graph), constructs a strict schedule vector by
/// back-substitution. With `lead(d)` the first non-zero coordinate of `d`
/// (positive, by lex non-negativity), the requirement
/// `s[lead] * d[lead] + Σ_{j>lead} s[j] d[j] > 0` fixes each component
/// once the later ones are known, so components are chosen from the
/// innermost dimension outwards.
pub fn schedule_ndim<const N: usize>(g: &MldgN<N>) -> Result<IVecN<N>, NdimFusionError<N>> {
    // Validate the hypothesis and collect all vectors.
    let mut vectors = Vec::new();
    for e in g.edge_ids() {
        for d in &g.edge(e).deps {
            if !d.is_lex_nonnegative() {
                return Err(NdimFusionError::Infeasible {
                    cycle: vec![e],
                    weight: *d,
                });
            }
            if *d != IVecN::ZERO {
                vectors.push(*d);
            }
        }
    }
    let mut s = IVecN::<N>::ZERO;
    if N > 0 {
        s[N - 1] = 1;
    }
    for k in (0..N.saturating_sub(1)).rev() {
        let mut min_sk = 1i64;
        for d in &vectors {
            if d.carrying_level() == Some(k) {
                let tail: i64 = (k + 1..N).map(|j| s[j] * d[j]).sum();
                // Need s[k] * d[k] + tail > 0, i.e. s[k] > -tail / d[k].
                min_sk = min_sk.max((-tail).div_euclid(d[k]) + 1);
            }
        }
        s[k] = min_sk;
    }
    debug_assert!(is_strict_schedule_ndim(g, &s));
    Ok(s)
}

/// The `N`-dimensional analogue of Algorithm 5: legalize fusion with
/// [`llofra_ndim`], then construct a strict schedule for the retimed
/// graph. All iterations on a hyperplane `{ x : s · x = t }` can then run
/// in parallel.
pub fn fuse_hyperplane_ndim<const N: usize>(
    g: &MldgN<N>,
) -> Result<(Vec<IVecN<N>>, IVecN<N>), NdimFusionError<N>> {
    let r = llofra_ndim(g)?;
    let retimed = g.retimed(&r);
    let s = schedule_ndim(&retimed)?;
    Ok((r, s))
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use mdf_graph::nvec::vn;

    #[test]
    fn three_dimensional_schedule() {
        let mut g: MldgN<3> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, vn([0, 0, 2]));
        g.add_dep(b, a, vn([0, 1, -3]));
        g.add_dep(a, a, vn([1, -2, -2]));
        let s = schedule_ndim(&g).unwrap();
        assert!(is_strict_schedule_ndim(&g, &s));
        // Back-substitution: s[2]=1; lead-1 vector (0,1,-3) needs
        // s[1] > 3 -> 4; lead-0 vector (1,-2,-2) needs s[0] > 2*4+2 -> 11.
        assert_eq!(s, vn([11, 4, 1]));
    }

    #[test]
    fn two_dimensional_agrees_with_lemma_4_3() {
        // The retimed Figure 14 vectors: max constraint from (1,-4).
        let mut g: MldgN<2> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        for d in [[0, 5], [0, 0], [0, 2], [0, 1], [1, 0], [1, -4], [1, 3]] {
            g.add_dep(a, b, vn(d));
        }
        let s = schedule_ndim(&g).unwrap();
        assert_eq!(s, vn([5, 1])); // the paper's s = (5,1)
    }

    #[test]
    fn full_ndim_pipeline() {
        let mut g: MldgN<3> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_dep(a, b, vn([0, 0, -2])); // fusion-preventing in 3-D
        g.add_dep(b, c, vn([0, -1, 3]));
        g.add_dep(c, a, vn([1, 2, 0]));
        let (r, s) = fuse_hyperplane_ndim(&g).unwrap();
        let retimed = g.retimed(&r);
        assert!(fusion_legal_after(&g, &r));
        assert!(is_strict_schedule_ndim(&retimed, &s));
    }

    #[test]
    fn negative_vector_rejected_by_schedule() {
        let mut g: MldgN<3> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, vn([0, 0, -1]));
        assert!(schedule_ndim(&g).is_err());
    }

    #[test]
    fn zero_only_dependences_get_trivial_schedule() {
        let mut g: MldgN<2> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, vn([0, 0]));
        let s = schedule_ndim(&g).unwrap();
        assert_eq!(s, vn([1, 1]));
    }
}
