//! Algorithm 3: legal loop fusion with full parallelism for *acyclic*
//! 2LDGs (Theorem 4.1).
//!
//! The constraint system `r(v_j) - r(v_i) <= δ_L(e) - (1,-1)` always has a
//! solution on an acyclic graph (its constraint graph is acyclic too), and
//! any solution gives `δ_r(e) >= (1,-1)` — hence, since the lexicographic
//! minimum carries the smallest first coordinate, every dependence vector
//! is carried by the outer loop and the fused innermost loop is DOALL.
//! Following the paper, the second retiming component is then zeroed: only
//! the first component is needed for the DOALL property, and dropping the
//! second avoids inner-dimension prologue shifts.

use mdf_constraint::{DifferenceSystem, Engine};
use mdf_graph::budget::BudgetMeter;
use mdf_graph::cycles::is_acyclic;
use mdf_graph::error::MdfError;
use mdf_graph::mldg::Mldg;
use mdf_graph::vec2::IVec2;
use mdf_retime::Retiming;
use mdf_trace::Span;

/// Runs Algorithm 3 with the default engine (a topological sweep, since the
/// constraint graph is a DAG; `O(|V| + |E|)`).
pub fn fuse_acyclic(g: &Mldg) -> Result<Retiming, MdfError> {
    fuse_acyclic_with_engine(g, Engine::DagOrBellmanFord)
}

fn build_acyclic_system(g: &Mldg) -> DifferenceSystem<IVec2> {
    let mut sys: DifferenceSystem<IVec2> = DifferenceSystem::new(g.node_count());
    for e in g.edge_ids() {
        let ed = g.edge(e);
        sys.add_le(
            ed.dst.index(),
            ed.src.index(),
            g.delta(e) - IVec2::ONE_NEG_ONE,
        );
    }
    sys
}

/// Zeroes the second components (final loop of Algorithm 3).
fn zero_y(offsets: Vec<IVec2>) -> Retiming {
    Retiming::from_offsets(offsets.into_iter().map(|v| IVec2::new(v.x, 0)).collect())
}

/// Runs Algorithm 3 with a caller-selected engine.
pub fn fuse_acyclic_with_engine(g: &Mldg, engine: Engine) -> Result<Retiming, MdfError> {
    if !is_acyclic(g) {
        return Err(MdfError::NotAcyclic);
    }
    let offsets = build_acyclic_system(g).solve(engine).map_err(|_| {
        MdfError::invalid("acyclic constraint system infeasible, contradicting Theorem 4.1")
    })?;
    Ok(zero_y(offsets))
}

/// Runs Algorithm 3 under a resource budget (the solve is metered). The
/// constraint system of an acyclic 2LDG is always feasible (Theorem 4.1),
/// so the only failure modes are [`MdfError::NotAcyclic`] and
/// [`MdfError::BudgetExceeded`].
pub fn fuse_acyclic_budgeted(g: &Mldg, meter: &mut BudgetMeter) -> Result<Retiming, MdfError> {
    fuse_acyclic_traced(g, meter, &Span::disabled())
}

/// As [`fuse_acyclic_budgeted`], reporting the constraint solve's shape
/// and relaxation counters onto a `solve` child of `span`.
pub fn fuse_acyclic_traced(
    g: &Mldg,
    meter: &mut BudgetMeter,
    span: &Span,
) -> Result<Retiming, MdfError> {
    if !is_acyclic(g) {
        return Err(MdfError::NotAcyclic);
    }
    let solve = span.child("solve");
    let offsets = build_acyclic_system(g)
        .solve_traced(meter, &solve)?
        .map_err(|_| {
            MdfError::invalid("acyclic constraint system infeasible, contradicting Theorem 4.1")
        })?;
    Ok(zero_y(offsets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::legality::fused_inner_loop_is_doall;
    use mdf_graph::paper::{figure2, figure8};
    use mdf_graph::v2;
    use mdf_retime::{apply_retiming, check_inner_doall, check_retiming_consistency};

    #[test]
    fn figure8_reproduces_figure10_retiming() {
        let g = figure8();
        let r = fuse_acyclic(&g).unwrap();
        // Figure 10: r(A)=(0,0), r(B)=(-1,0), r(C)=(-2,0), r(D)=(-2,0),
        // r(E)=(-1,0), r(F)=(-2,0), r(G)=(-2,0).
        assert_eq!(
            r.offsets(),
            &[
                v2(0, 0),
                v2(-1, 0),
                v2(-2, 0),
                v2(-2, 0),
                v2(-1, 0),
                v2(-2, 0),
                v2(-2, 0)
            ]
        );
    }

    #[test]
    fn figure10_retimed_weights_match_paper() {
        let g = figure8();
        let r = fuse_acyclic(&g).unwrap();
        let gr = apply_retiming(&g, &r);
        let id = |s: &str| gr.node_by_label(s).unwrap();
        let dd = |a: &str, b: &str| gr.delta(gr.edge_between(id(a), id(b)).unwrap());
        assert_eq!(dd("A", "B"), v2(1, 1));
        assert_eq!(dd("B", "C"), v2(1, -2));
        assert_eq!(dd("C", "D"), v2(1, 3));
        assert_eq!(dd("D", "E"), v2(1, -2));
        assert_eq!(dd("B", "F"), v2(1, -2));
        assert_eq!(dd("F", "G"), v2(1, 2));
        assert_eq!(dd("B", "E"), v2(1, 2));
        assert_eq!(dd("A", "D"), v2(2, -3));
        assert_eq!(check_retiming_consistency(&g, &gr, &r, 100), Ok(()));
        assert_eq!(check_inner_doall(&gr), Ok(()));
        assert!(fused_inner_loop_is_doall(&gr));
    }

    #[test]
    fn cyclic_input_rejected() {
        assert_eq!(fuse_acyclic(&figure2()), Err(MdfError::NotAcyclic));
    }

    #[test]
    fn budgeted_acyclic_matches_plain() {
        use mdf_graph::budget::Budget;
        let g = figure8();
        let mut meter = Budget::unlimited().meter();
        assert_eq!(
            fuse_acyclic_budgeted(&g, &mut meter).unwrap(),
            fuse_acyclic(&g).unwrap()
        );
    }

    #[test]
    fn single_node_graph() {
        let mut g = Mldg::new();
        g.add_node("A");
        let r = fuse_acyclic(&g).unwrap();
        assert!(r.is_identity());
    }

    #[test]
    fn engines_agree() {
        let g = figure8();
        let a = fuse_acyclic_with_engine(&g, Engine::BellmanFord).unwrap();
        let b = fuse_acyclic_with_engine(&g, Engine::Spfa).unwrap();
        let c = fuse_acyclic_with_engine(&g, Engine::DagOrBellmanFord).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn second_components_are_always_zero() {
        let g = figure8();
        let r = fuse_acyclic(&g).unwrap();
        assert!(r.offsets().iter().all(|v| v.y == 0));
    }
}
