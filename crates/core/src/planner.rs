//! The fusion planner: selects and runs the right algorithm for a 2LDG,
//! then independently verifies the result.
//!
//! Selection follows the paper's case analysis:
//!
//! 1. acyclic graph → Algorithm 3 (always yields a DOALL fused loop);
//! 2. cyclic graph satisfying Theorem 4.2 → Algorithm 4 (DOALL fused loop
//!    in the original row order);
//! 3. otherwise → Algorithm 5 (legal fusion + DOALL hyperplane wavefront);
//! 4. if even LLOFRA is infeasible the graph has a lexicographically
//!    negative cycle and is rejected with the witness.
//!
//! [`plan_fusion_budgeted`] additionally runs the case analysis as a
//! *graceful-degradation ladder* under a [`Budget`]: each rung is
//! attempted with the (cumulative) meter, a rung that runs over budget or
//! fails degrades to the next one — Algorithm 3/4 → Algorithm 5 →
//! partial fusion — and the returned [`PlanReport`] records every rung
//! attempted and which one finally succeeded.

use mdf_graph::budget::{Budget, BudgetMeter};
use mdf_graph::cycles::is_acyclic;
use mdf_graph::error::MdfError;
use mdf_graph::mldg::Mldg;
use mdf_retime::{
    apply_retiming, check_fusion_legal, check_inner_doall, check_retiming_consistency,
    is_strict_schedule, Retiming, VerifyError, Wavefront,
};
use mdf_trace::Span;

use crate::acyclic::{fuse_acyclic, fuse_acyclic_traced};
use crate::cyclic::{fuse_cyclic, fuse_cyclic_traced};
use crate::hyperplane::{fuse_hyperplane, fuse_hyperplane_traced};
use crate::partial::{fuse_partial_traced, verify_partial, PartialFusionPlan};

/// Which algorithm produced a full-parallel plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullParallelMethod {
    /// Algorithm 3 (acyclic 2LDG).
    Acyclic,
    /// Algorithm 4 (cyclic 2LDG, Theorem 4.2 conditions hold).
    Cyclic,
}

/// A complete fusion plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusionPlan {
    /// Retiming after which the fused innermost loop is DOALL, executed in
    /// the original row-by-row order.
    FullParallel {
        /// The retiming to apply before fusing.
        retiming: Retiming,
        /// Which algorithm found it.
        method: FullParallelMethod,
    },
    /// Retiming after which fusion is legal, plus a wavefront giving full
    /// parallelism along a hyperplane.
    Hyperplane {
        /// The retiming to apply before fusing.
        retiming: Retiming,
        /// The schedule vector and hyperplane.
        wavefront: Wavefront,
    },
}

impl FusionPlan {
    /// The plan's retiming.
    pub fn retiming(&self) -> &Retiming {
        match self {
            FusionPlan::FullParallel { retiming, .. } => retiming,
            FusionPlan::Hyperplane { retiming, .. } => retiming,
        }
    }

    /// `true` when the fused inner loop is DOALL in row order.
    pub fn is_full_parallel(&self) -> bool {
        matches!(self, FusionPlan::FullParallel { .. })
    }

    /// The wavefront, when the plan is a hyperplane plan.
    pub fn wavefront(&self) -> Option<Wavefront> {
        match self {
            FusionPlan::Hyperplane { wavefront, .. } => Some(*wavefront),
            FusionPlan::FullParallel { .. } => None,
        }
    }
}

/// Plans fusion for `g`. Only fails when the graph has a lexicographically
/// negative cycle (not a legal nested loop).
///
/// ```
/// use mdf_core::{plan_fusion, verify_plan};
/// use mdf_graph::paper::{figure2, figure14};
///
/// // Figure 2 admits a fully parallel fused loop (Algorithm 4)...
/// let plan = plan_fusion(&figure2()).unwrap();
/// assert!(plan.is_full_parallel());
/// verify_plan(&figure2(), &plan).unwrap();
///
/// // ...Figure 14 needs the hyperplane method (Algorithm 5).
/// let plan = plan_fusion(&figure14()).unwrap();
/// assert_eq!(plan.wavefront().unwrap().schedule, mdf_graph::v2(5, 1));
/// ```
pub fn plan_fusion(g: &Mldg) -> Result<FusionPlan, MdfError> {
    if is_acyclic(g) {
        let retiming = fuse_acyclic(g)?;
        return Ok(FusionPlan::FullParallel {
            retiming,
            method: FullParallelMethod::Acyclic,
        });
    }
    if let Ok(retiming) = fuse_cyclic(g) {
        return Ok(FusionPlan::FullParallel {
            retiming,
            method: FullParallelMethod::Cyclic,
        });
    }
    let hp = fuse_hyperplane(g)?;
    Ok(FusionPlan::Hyperplane {
        retiming: hp.retiming,
        wavefront: hp.wavefront,
    })
}

/// One rung of the budgeted planner's degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Algorithm 3 (acyclic full parallelism).
    Acyclic,
    /// Algorithm 4 (cyclic full parallelism).
    Cyclic,
    /// Algorithm 5 (hyperplane wavefront).
    Hyperplane,
    /// Greedy partial fusion into row-DOALL clusters.
    Partial,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Acyclic => write!(f, "Algorithm 3 (acyclic)"),
            Rung::Cyclic => write!(f, "Algorithm 4 (cyclic)"),
            Rung::Hyperplane => write!(f, "Algorithm 5 (hyperplane)"),
            Rung::Partial => write!(f, "partial fusion"),
        }
    }
}

/// The outcome of attempting one ladder rung.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RungAttempt {
    /// The rung attempted.
    pub rung: Rung,
    /// `None` when the rung succeeded; the failure that caused
    /// degradation otherwise.
    pub error: Option<MdfError>,
}

/// What the budgeted planner finally produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradedPlan {
    /// A single fused loop (full parallelism or wavefront).
    Fused(FusionPlan),
    /// The graph would not fuse into one DOALL loop under the budget, but
    /// partial fusion into row-DOALL clusters succeeded.
    Partial(PartialFusionPlan),
}

impl DegradedPlan {
    /// The plan's retiming.
    pub fn retiming(&self) -> &Retiming {
        match self {
            DegradedPlan::Fused(p) => p.retiming(),
            DegradedPlan::Partial(p) => &p.retiming,
        }
    }
}

/// A budgeted planning result: the plan that survived the degradation
/// ladder plus the full attempt log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanReport {
    /// The surviving plan.
    pub plan: DegradedPlan,
    /// Every rung attempted, in order; the last entry always has
    /// `error: None` (the rung that produced `plan`).
    pub attempts: Vec<RungAttempt>,
}

impl PlanReport {
    /// The rung that finally succeeded.
    pub fn succeeded_rung(&self) -> Rung {
        self.attempts
            .last()
            .map(|a| a.rung)
            .unwrap_or(Rung::Acyclic)
    }

    /// A one-line-per-rung human-readable ladder trace.
    pub fn ladder_trace(&self) -> String {
        let mut out = String::new();
        for a in &self.attempts {
            match &a.error {
                Some(e) => out.push_str(&format!("{}: degraded ({e})\n", a.rung)),
                None => out.push_str(&format!("{}: succeeded\n", a.rung)),
            }
        }
        out
    }

    /// Independently re-verifies the surviving plan against the graph.
    pub fn verify(&self, g: &Mldg) -> Result<(), String> {
        match &self.plan {
            DegradedPlan::Fused(p) => verify_plan(g, p).map_err(|e| e.to_string()),
            DegradedPlan::Partial(p) => {
                if verify_partial(g, p) {
                    Ok(())
                } else {
                    Err("partial fusion plan fails verification".to_string())
                }
            }
        }
    }
}

/// Plans fusion under a resource [`Budget`], degrading gracefully.
///
/// The ladder: Algorithm 3 (acyclic graphs) or Algorithm 4 (cyclic) →
/// Algorithm 5 (hyperplane) → partial fusion. A rung that fails for
/// *algorithmic* reasons (Theorem 4.2 does not hold) or runs over budget
/// records its error and falls to the next rung; the meter is cumulative
/// across rungs, so the whole call respects the single budget. Hard
/// failure modes:
///
/// * the graph itself exceeds `max_nodes` / `max_edges` → immediate
///   [`MdfError::BudgetExceeded`], nothing is attempted;
/// * the graph has a lexicographically negative cycle → the Algorithm 5
///   rung surfaces [`MdfError::Infeasible`] with the witness (no later
///   rung could succeed either);
/// * every rung ran over budget → the last budget error.
pub fn plan_fusion_budgeted(g: &Mldg, budget: &Budget) -> Result<PlanReport, MdfError> {
    plan_fusion_traced(g, budget, &Span::disabled())
}

/// Classifies a rung failure for the `plan.degraded.*` counters.
fn degradation_counter(e: &MdfError) -> &'static str {
    match e {
        MdfError::Infeasible { .. } | MdfError::NotAcyclic => "plan.degraded.infeasible",
        MdfError::BudgetExceeded { .. } => "plan.degraded.budget",
        MdfError::Invalid { .. } => "plan.degraded.invalid",
        _ => "plan.degraded.other",
    }
}

/// As [`plan_fusion_budgeted`], reporting the ladder onto `span`: one
/// child span per rung attempted (`alg3-acyclic`, `alg4-cyclic`,
/// `alg5-hyperplane`, `partial`, each carrying its constraint-solve
/// counters), plus `plan.attempts`, `plan.degradations` and a
/// `plan.degraded.{infeasible,budget,invalid,other}` reason counter per
/// failed rung. Tracing is strictly observational — the ladder's
/// decisions are identical with an enabled and a disabled span.
pub fn plan_fusion_traced(g: &Mldg, budget: &Budget, span: &Span) -> Result<PlanReport, MdfError> {
    let mut meter = budget.meter();
    meter.check_size(g.node_count(), g.edge_count())?;
    meter.check_deadline()?;

    let mut attempts: Vec<RungAttempt> = Vec::new();

    // Rung 1: full parallelism in row order (Algorithm 3 or 4).
    if is_acyclic(g) {
        let rung = span.child("alg3-acyclic");
        span.add("plan.attempts", 1);
        match fuse_acyclic_traced(g, &mut meter, &rung) {
            Ok(retiming) => {
                attempts.push(RungAttempt {
                    rung: Rung::Acyclic,
                    error: None,
                });
                return Ok(PlanReport {
                    plan: DegradedPlan::Fused(FusionPlan::FullParallel {
                        retiming: chaos_retiming(&mut meter, retiming),
                        method: FullParallelMethod::Acyclic,
                    }),
                    attempts,
                });
            }
            Err(e) => {
                span.add("plan.degradations", 1);
                span.add(degradation_counter(&e), 1);
                attempts.push(RungAttempt {
                    rung: Rung::Acyclic,
                    error: Some(e),
                });
            }
        }
        rung.finish();
    } else {
        let rung = span.child("alg4-cyclic");
        span.add("plan.attempts", 1);
        match fuse_cyclic_traced(g, &mut meter, &rung) {
            Ok(retiming) => {
                attempts.push(RungAttempt {
                    rung: Rung::Cyclic,
                    error: None,
                });
                return Ok(PlanReport {
                    plan: DegradedPlan::Fused(FusionPlan::FullParallel {
                        retiming: chaos_retiming(&mut meter, retiming),
                        method: FullParallelMethod::Cyclic,
                    }),
                    attempts,
                });
            }
            Err(e) => {
                span.add("plan.degradations", 1);
                span.add(degradation_counter(&e), 1);
                attempts.push(RungAttempt {
                    rung: Rung::Cyclic,
                    error: Some(e),
                });
            }
        }
        rung.finish();
    }

    // Rung 2: hyperplane wavefront (Algorithm 5).
    let rung = span.child("alg5-hyperplane");
    span.add("plan.attempts", 1);
    match fuse_hyperplane_traced(g, &mut meter, &rung) {
        Ok(hp) => {
            attempts.push(RungAttempt {
                rung: Rung::Hyperplane,
                error: None,
            });
            return Ok(PlanReport {
                plan: DegradedPlan::Fused(FusionPlan::Hyperplane {
                    retiming: chaos_retiming(&mut meter, hp.retiming),
                    wavefront: hp.wavefront,
                }),
                attempts,
            });
        }
        // A negative-cycle witness here is terminal: the graph is not a
        // legal nested loop, so no later rung can succeed.
        Err(e @ MdfError::Infeasible { .. }) => return Err(e),
        Err(e) => {
            span.add("plan.degradations", 1);
            span.add(degradation_counter(&e), 1);
            attempts.push(RungAttempt {
                rung: Rung::Hyperplane,
                error: Some(e),
            });
        }
    }
    rung.finish();

    // Rung 3: partial fusion into row-DOALL clusters.
    let rung = span.child("partial");
    span.add("plan.attempts", 1);
    match fuse_partial_traced(g, &mut meter, &rung) {
        Ok(Some(plan)) => {
            attempts.push(RungAttempt {
                rung: Rung::Partial,
                error: None,
            });
            Ok(PlanReport {
                plan: DegradedPlan::Partial(plan),
                attempts,
            })
        }
        Ok(None) => {
            span.add("plan.degradations", 1);
            span.add("plan.degraded.infeasible", 1);
            Err(last_error(
                attempts,
                MdfError::invalid("no row-parallel clustering exists"),
            ))
        }
        Err(e) => Err(e),
    }
}

/// Chaos hook on the `planner.retiming` fault site: when the armed fault
/// plan says so, corrupt a freshly computed retiming in flight (shift the
/// first node's column offset). The corrupted plan must then be rejected
/// by [`PlanReport::verify`] / the downstream certificate checkers — the
/// chaos sweep asserts an injected corruption never reaches execution as
/// a silently wrong answer.
fn chaos_retiming(meter: &mut BudgetMeter, retiming: Retiming) -> Retiming {
    if !meter.chaos_corrupts("planner.retiming") {
        return retiming;
    }
    let mut offsets = retiming.offsets().to_vec();
    if let Some(o) = offsets.first_mut() {
        o.y += 1;
    }
    Retiming::from_offsets(offsets)
}

/// The most informative error once the whole ladder is exhausted: the last
/// recorded rung failure, or `fallback` when (impossibly) none exists.
fn last_error(attempts: Vec<RungAttempt>, fallback: MdfError) -> MdfError {
    attempts
        .into_iter()
        .rev()
        .find_map(|a| a.error)
        .unwrap_or(fallback)
}

/// Independently verifies a plan's claims against the graph:
/// * the retimed graph is consistent with the retiming;
/// * fusion is legal on the retimed graph (Theorem 3.1);
/// * full-parallel plans yield a DOALL inner loop (Property 4.2);
/// * hyperplane plans yield a strict schedule vector.
pub fn verify_plan(g: &Mldg, plan: &FusionPlan) -> Result<(), VerifyError> {
    let retimed = apply_retiming(g, plan.retiming());
    check_retiming_consistency(g, &retimed, plan.retiming(), 256)?;
    check_fusion_legal(&retimed)?;
    match plan {
        FusionPlan::FullParallel { .. } => check_inner_doall(&retimed),
        FusionPlan::Hyperplane { wavefront, .. } => {
            if is_strict_schedule(&retimed, wavefront.schedule) {
                Ok(())
            } else {
                Err(VerifyError::InnerLoopSerialized)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::error::BudgetResource;
    use mdf_graph::paper::{figure14, figure2, figure8};

    #[test]
    fn figure8_planned_as_acyclic() {
        let g = figure8();
        let plan = plan_fusion(&g).unwrap();
        assert!(matches!(
            plan,
            FusionPlan::FullParallel {
                method: FullParallelMethod::Acyclic,
                ..
            }
        ));
        assert_eq!(verify_plan(&g, &plan), Ok(()));
    }

    #[test]
    fn figure2_planned_as_cyclic_full_parallel() {
        let g = figure2();
        let plan = plan_fusion(&g).unwrap();
        assert!(matches!(
            plan,
            FusionPlan::FullParallel {
                method: FullParallelMethod::Cyclic,
                ..
            }
        ));
        assert_eq!(verify_plan(&g, &plan), Ok(()));
    }

    #[test]
    fn figure14_planned_as_hyperplane() {
        let g = figure14();
        let plan = plan_fusion(&g).unwrap();
        assert!(matches!(plan, FusionPlan::Hyperplane { .. }));
        assert!(!plan.is_full_parallel());
        assert!(plan.wavefront().is_some());
        assert_eq!(verify_plan(&g, &plan), Ok(()));
    }

    #[test]
    fn negative_cycle_rejected() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -3));
        g.add_dep(b, a, (0, 1));
        assert!(matches!(plan_fusion(&g), Err(MdfError::Infeasible { .. })));
    }

    #[test]
    fn plan_accessors() {
        let g = figure2();
        let plan = plan_fusion(&g).unwrap();
        assert!(plan.is_full_parallel());
        assert!(plan.wavefront().is_none());
        assert_eq!(plan.retiming().len(), 4);
    }

    #[test]
    fn budgeted_planner_matches_plain_planner_when_unlimited() {
        for g in [figure2(), figure8(), figure14()] {
            let report = plan_fusion_budgeted(&g, &Budget::unlimited()).unwrap();
            let plain = plan_fusion(&g).unwrap();
            assert_eq!(report.plan, DegradedPlan::Fused(plain));
            assert_eq!(report.attempts.last().unwrap().error, None);
            assert!(report.verify(&g).is_ok());
        }
    }

    #[test]
    fn oversized_graph_rejected_before_any_work() {
        let budget = Budget::unlimited().with_max_graph(3, 100);
        match plan_fusion_budgeted(&figure2(), &budget) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::Nodes,
                limit: 3,
                used: 4,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn figure14_ladder_records_cyclic_degradation() {
        // Algorithm 4 fails on Figure 14; the ladder must record the
        // attempt and land on the hyperplane rung.
        let report = plan_fusion_budgeted(&figure14(), &Budget::unlimited()).unwrap();
        assert_eq!(report.succeeded_rung(), Rung::Hyperplane);
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].rung, Rung::Cyclic);
        assert!(matches!(
            report.attempts[0].error,
            Some(MdfError::Infeasible { .. })
        ));
        let trace = report.ladder_trace();
        assert!(trace.contains("Algorithm 4 (cyclic): degraded"), "{trace}");
        assert!(
            trace.contains("Algorithm 5 (hyperplane): succeeded"),
            "{trace}"
        );
    }

    #[test]
    fn two_cluster_graph_degrades_to_partial_when_wavefront_unavailable() {
        // A <-> B with hard edges in both directions: Algorithm 4 fails.
        // Algorithm 5 would succeed, but if its solver budget is exhausted
        // the ladder must still salvage the 2-cluster partial plan...
        // except partial fusion also needs solves. So instead exercise the
        // unlimited path and check partial is reachable by comparing with
        // the direct call.
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_deps(a, b, [mdf_graph::v2(0, -1), mdf_graph::v2(0, 1)]);
        g.add_deps(b, a, [mdf_graph::v2(1, -1), mdf_graph::v2(1, 1)]);
        let report = plan_fusion_budgeted(&g, &Budget::unlimited()).unwrap();
        // Hyperplane handles this graph, so the ladder stops there.
        assert_eq!(report.succeeded_rung(), Rung::Hyperplane);
        assert!(report.verify(&g).is_ok());
    }

    #[test]
    fn infeasible_graph_fails_budgeted_planner_with_witness() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -3));
        g.add_dep(b, a, (0, 1));
        assert!(matches!(
            plan_fusion_budgeted(&g, &Budget::unlimited()),
            Err(MdfError::Infeasible { .. })
        ));
    }
}
