//! The fusion planner: selects and runs the right algorithm for a 2LDG,
//! then independently verifies the result.
//!
//! Selection follows the paper's case analysis:
//!
//! 1. acyclic graph → Algorithm 3 (always yields a DOALL fused loop);
//! 2. cyclic graph satisfying Theorem 4.2 → Algorithm 4 (DOALL fused loop
//!    in the original row order);
//! 3. otherwise → Algorithm 5 (legal fusion + DOALL hyperplane wavefront);
//! 4. if even LLOFRA is infeasible the graph has a lexicographically
//!    negative cycle and is rejected with the witness.

use mdf_graph::cycles::is_acyclic;
use mdf_graph::mldg::Mldg;
use mdf_retime::{
    apply_retiming, check_fusion_legal, check_inner_doall, check_retiming_consistency,
    is_strict_schedule, Retiming, VerifyError, Wavefront,
};

use crate::acyclic::fuse_acyclic;
use crate::cyclic::fuse_cyclic;
use crate::hyperplane::fuse_hyperplane;
use crate::llofra::FusionError;

/// Which algorithm produced a full-parallel plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullParallelMethod {
    /// Algorithm 3 (acyclic 2LDG).
    Acyclic,
    /// Algorithm 4 (cyclic 2LDG, Theorem 4.2 conditions hold).
    Cyclic,
}

/// A complete fusion plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusionPlan {
    /// Retiming after which the fused innermost loop is DOALL, executed in
    /// the original row-by-row order.
    FullParallel {
        /// The retiming to apply before fusing.
        retiming: Retiming,
        /// Which algorithm found it.
        method: FullParallelMethod,
    },
    /// Retiming after which fusion is legal, plus a wavefront giving full
    /// parallelism along a hyperplane.
    Hyperplane {
        /// The retiming to apply before fusing.
        retiming: Retiming,
        /// The schedule vector and hyperplane.
        wavefront: Wavefront,
    },
}

impl FusionPlan {
    /// The plan's retiming.
    pub fn retiming(&self) -> &Retiming {
        match self {
            FusionPlan::FullParallel { retiming, .. } => retiming,
            FusionPlan::Hyperplane { retiming, .. } => retiming,
        }
    }

    /// `true` when the fused inner loop is DOALL in row order.
    pub fn is_full_parallel(&self) -> bool {
        matches!(self, FusionPlan::FullParallel { .. })
    }

    /// The wavefront, when the plan is a hyperplane plan.
    pub fn wavefront(&self) -> Option<Wavefront> {
        match self {
            FusionPlan::Hyperplane { wavefront, .. } => Some(*wavefront),
            FusionPlan::FullParallel { .. } => None,
        }
    }
}

/// Plans fusion for `g`. Only fails when the graph has a lexicographically
/// negative cycle (not a legal nested loop).
///
/// ```
/// use mdf_core::{plan_fusion, verify_plan};
/// use mdf_graph::paper::{figure2, figure14};
///
/// // Figure 2 admits a fully parallel fused loop (Algorithm 4)...
/// let plan = plan_fusion(&figure2()).unwrap();
/// assert!(plan.is_full_parallel());
/// verify_plan(&figure2(), &plan).unwrap();
///
/// // ...Figure 14 needs the hyperplane method (Algorithm 5).
/// let plan = plan_fusion(&figure14()).unwrap();
/// assert_eq!(plan.wavefront().unwrap().schedule, mdf_graph::v2(5, 1));
/// ```
pub fn plan_fusion(g: &Mldg) -> Result<FusionPlan, FusionError> {
    if is_acyclic(g) {
        let retiming = fuse_acyclic(g)?;
        return Ok(FusionPlan::FullParallel {
            retiming,
            method: FullParallelMethod::Acyclic,
        });
    }
    if let Ok(retiming) = fuse_cyclic(g) {
        return Ok(FusionPlan::FullParallel {
            retiming,
            method: FullParallelMethod::Cyclic,
        });
    }
    let hp = fuse_hyperplane(g)?;
    Ok(FusionPlan::Hyperplane {
        retiming: hp.retiming,
        wavefront: hp.wavefront,
    })
}

/// Independently verifies a plan's claims against the graph:
/// * the retimed graph is consistent with the retiming;
/// * fusion is legal on the retimed graph (Theorem 3.1);
/// * full-parallel plans yield a DOALL inner loop (Property 4.2);
/// * hyperplane plans yield a strict schedule vector.
pub fn verify_plan(g: &Mldg, plan: &FusionPlan) -> Result<(), VerifyError> {
    let retimed = apply_retiming(g, plan.retiming());
    check_retiming_consistency(g, &retimed, plan.retiming(), 256)?;
    check_fusion_legal(&retimed)?;
    match plan {
        FusionPlan::FullParallel { .. } => check_inner_doall(&retimed),
        FusionPlan::Hyperplane { wavefront, .. } => {
            if is_strict_schedule(&retimed, wavefront.schedule) {
                Ok(())
            } else {
                Err(VerifyError::InnerLoopSerialized)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2, figure8};

    #[test]
    fn figure8_planned_as_acyclic() {
        let g = figure8();
        let plan = plan_fusion(&g).unwrap();
        assert!(matches!(
            plan,
            FusionPlan::FullParallel {
                method: FullParallelMethod::Acyclic,
                ..
            }
        ));
        assert_eq!(verify_plan(&g, &plan), Ok(()));
    }

    #[test]
    fn figure2_planned_as_cyclic_full_parallel() {
        let g = figure2();
        let plan = plan_fusion(&g).unwrap();
        assert!(matches!(
            plan,
            FusionPlan::FullParallel {
                method: FullParallelMethod::Cyclic,
                ..
            }
        ));
        assert_eq!(verify_plan(&g, &plan), Ok(()));
    }

    #[test]
    fn figure14_planned_as_hyperplane() {
        let g = figure14();
        let plan = plan_fusion(&g).unwrap();
        assert!(matches!(plan, FusionPlan::Hyperplane { .. }));
        assert!(!plan.is_full_parallel());
        assert!(plan.wavefront().is_some());
        assert_eq!(verify_plan(&g, &plan), Ok(()));
    }

    #[test]
    fn negative_cycle_rejected() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -3));
        g.add_dep(b, a, (0, 1));
        assert!(matches!(
            plan_fusion(&g),
            Err(FusionError::Infeasible { .. })
        ));
    }

    #[test]
    fn plan_accessors() {
        let g = figure2();
        let plan = plan_fusion(&g).unwrap();
        assert!(plan.is_full_parallel());
        assert!(plan.wavefront().is_none());
        assert_eq!(plan.retiming().len(), 4);
    }
}
