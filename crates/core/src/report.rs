//! Human-readable analysis reports for a 2LDG and its fusion plan — the
//! output the `mdfuse analyze` command and the experiment binaries print.

use std::fmt::Write as _;

use mdf_graph::legality::{cycle_weight_report, direct_fusion_legal, fusion_preventing_edges};
use mdf_graph::mldg::Mldg;
use mdf_retime::apply_retiming;

use crate::planner::{plan_fusion, verify_plan, FullParallelMethod, FusionPlan};

/// A structured summary of one graph + plan, with a text renderer.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Graph name for display.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Total dependence vectors.
    pub dep_vectors: usize,
    /// Number of hard edges.
    pub hard_edges: usize,
    /// Whether the graph is acyclic.
    pub acyclic: bool,
    /// Whether fusion is legal without any retiming (Theorem 3.1).
    pub direct_fusion_legal: bool,
    /// Number of fusion-preventing edges before retiming.
    pub fusion_preventing: usize,
    /// The computed plan, if any.
    pub plan: Option<FusionPlan>,
    /// Result of independent verification of the plan.
    pub verified: bool,
    /// Lexicographically minimal cycle weight (bounded enumeration).
    pub min_cycle_weight: Option<mdf_graph::IVec2>,
    /// When the plan is a hyperplane plan, the number of row-DOALL clusters
    /// partial fusion can offer instead (`None` when no row-parallel
    /// scheme exists at any granularity, as for Figure 14).
    pub partial_clusters: Option<usize>,
}

/// Analyzes a graph end to end: structure, legality, plan, verification.
pub fn analyze(g: &Mldg, name: &str) -> AnalysisReport {
    let cw = cycle_weight_report(g, 4096);
    let plan = plan_fusion(g).ok();
    let verified = plan.as_ref().is_some_and(|p| verify_plan(g, p).is_ok());
    let partial_clusters = match &plan {
        Some(FusionPlan::Hyperplane { .. }) => {
            crate::partial::fuse_partial(g).map(|pp| pp.clusters.len())
        }
        _ => None,
    };
    AnalysisReport {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        dep_vectors: g.total_dep_vectors(),
        hard_edges: g.edge_ids().filter(|&e| g.is_hard(e)).count(),
        acyclic: mdf_graph::cycles::is_acyclic(g),
        direct_fusion_legal: direct_fusion_legal(g),
        fusion_preventing: fusion_preventing_edges(g).len(),
        plan,
        verified,
        min_cycle_weight: cw.min_weight,
        partial_clusters,
    }
}

impl AnalysisReport {
    /// The plan kind as a short display string.
    pub fn plan_kind(&self) -> &'static str {
        match &self.plan {
            None => "INFEASIBLE (negative cycle)",
            Some(FusionPlan::FullParallel {
                method: FullParallelMethod::Acyclic,
                ..
            }) => "full parallel (Alg 3, acyclic)",
            Some(FusionPlan::FullParallel {
                method: FullParallelMethod::Cyclic,
                ..
            }) => "full parallel (Alg 4, cyclic)",
            Some(FusionPlan::Hyperplane { .. }) => "hyperplane wavefront (Alg 5)",
        }
    }

    /// Renders the report as indented text, including the retimed edge
    /// weights when a graph is supplied.
    pub fn render(&self, g: Option<&Mldg>) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== {} ===", self.name);
        let _ = writeln!(
            s,
            "nodes: {}  edges: {}  dep-vectors: {}  hard-edges: {}  {}",
            self.nodes,
            self.edges,
            self.dep_vectors,
            self.hard_edges,
            if self.acyclic { "acyclic" } else { "cyclic" }
        );
        let _ = writeln!(
            s,
            "direct fusion: {}  fusion-preventing edges: {}  min cycle weight: {}",
            if self.direct_fusion_legal {
                "legal"
            } else {
                "ILLEGAL"
            },
            self.fusion_preventing,
            self.min_cycle_weight
                .map_or("n/a (acyclic)".to_string(), |w| w.to_string()),
        );
        let _ = writeln!(
            s,
            "plan: {}  independently verified: {}",
            self.plan_kind(),
            if self.verified { "yes" } else { "NO" }
        );
        if let (Some(plan), Some(g)) = (&self.plan, g) {
            let _ = writeln!(s, "retiming: {}", plan.retiming().display(g));
            if let Some(w) = plan.wavefront() {
                let _ = writeln!(
                    s,
                    "schedule: s={}  hyperplane: h={}",
                    w.schedule, w.hyperplane
                );
                match self.partial_clusters {
                    Some(k) => {
                        let _ = writeln!(
                            s,
                            "row-parallel alternative: partial fusion into {k} DOALL cluster(s)"
                        );
                    }
                    None => {
                        let _ = writeln!(
                            s,
                            "row-parallel alternative: none exists (wavefront is necessary)"
                        );
                    }
                }
            }
            let gr = apply_retiming(g, plan.retiming());
            let _ = write!(s, "retimed weights:");
            for e in gr.edge_ids() {
                let ed = gr.edge(e);
                let _ = write!(
                    s,
                    " {}->{}:{}",
                    gr.label(ed.src),
                    gr.label(ed.dst),
                    gr.delta(e)
                );
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::paper::{figure14, figure2, figure8};

    #[test]
    fn figure2_report() {
        let g = figure2();
        let r = analyze(&g, "fig2");
        assert_eq!(r.nodes, 4);
        assert_eq!(r.edges, 6);
        assert_eq!(r.dep_vectors, 8);
        assert_eq!(r.hard_edges, 1);
        assert!(!r.acyclic);
        assert!(!r.direct_fusion_legal);
        assert_eq!(r.fusion_preventing, 2);
        assert_eq!(r.plan_kind(), "full parallel (Alg 4, cyclic)");
        assert!(r.verified);
        let text = r.render(Some(&g));
        assert!(text.contains("r(C)=(-1,0)"));
        assert!(text.contains("independently verified: yes"));
    }

    #[test]
    fn figure8_report() {
        let r = analyze(&figure8(), "fig8");
        assert!(r.acyclic);
        assert_eq!(r.plan_kind(), "full parallel (Alg 3, acyclic)");
        assert!(r.verified);
    }

    #[test]
    fn figure14_report() {
        let g = figure14();
        let r = analyze(&g, "fig14");
        assert_eq!(r.plan_kind(), "hyperplane wavefront (Alg 5)");
        assert!(r.verified);
        // Figure 14 admits no row-DOALL partition at any granularity.
        assert_eq!(r.partial_clusters, None);
        let text = r.render(Some(&g));
        assert!(text.contains("s=(5,1)"));
        assert!(text.contains("h=(1,-5)"));
        assert!(text.contains("wavefront is necessary"));
    }

    #[test]
    fn hyperplane_report_offers_partial_alternative_when_possible() {
        // The relaxation shape: hyperplane plan, but 2 row-DOALL clusters
        // exist as an alternative.
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_deps(a, b, [mdf_graph::v2(0, -1), mdf_graph::v2(0, 1)]);
        g.add_deps(b, a, [mdf_graph::v2(1, -1), mdf_graph::v2(1, 1)]);
        let r = analyze(&g, "relax");
        assert_eq!(r.plan_kind(), "hyperplane wavefront (Alg 5)");
        assert_eq!(r.partial_clusters, Some(2));
        assert!(r
            .render(Some(&g))
            .contains("partial fusion into 2 DOALL cluster(s)"));
    }

    #[test]
    fn infeasible_report() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -1));
        g.add_dep(b, a, (0, 0));
        let r = analyze(&g, "bad");
        assert!(r.plan.is_none());
        assert_eq!(r.plan_kind(), "INFEASIBLE (negative cycle)");
        assert!(!r.verified);
    }
}
