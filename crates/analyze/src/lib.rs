#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-analyze` — static analysis & certificates
//!
//! Three passes that check the fusion pipeline's headline claims without
//! trusting the code that produced them:
//!
//! * [`race`] — a **static DOALL race certifier**: proves, for all
//!   iteration-space sizes, that the fused inner loop (or each wavefront
//!   hyperplane) carries no read-write/write-write conflict, or produces a
//!   concrete two-iteration witness. An independent oracle for the
//!   planner's Property 4.2 / Lemma 4.3 claims, cross-checked against the
//!   dynamic `mdf-sim` oracle by the fuzzer.
//! * [`certify`] — a **retiming certificate checker**: re-derives every
//!   retimed edge weight `d + r(u) − r(v)` from the raw MLDG and checks
//!   the per-algorithm postconditions (Theorem 3.1; Algorithm 3's
//!   `x ≥ 1` with zeroed `y`; Theorem 4.2's hard-edge conditions; Lemma
//!   4.3's strict schedules).
//! * [`lint`] — **DSL lints** with source spans (unused arrays, dead
//!   loops, non-uniform subscripts, reads-before-writer, and
//!   fusion-preventing or hard edges explained at their source line).
//!
//! * [`bytecode`] — a **static bytecode verifier** over `mdf-kernel`'s
//!   lowered instruction stream: proves register discipline, flat-buffer
//!   segment bounds across the entire retimed iteration space, and
//!   pairwise write-disjointness of the parallel steps a plan certifies —
//!   issuing a machine-checkable [`bytecode::BytecodeCert`] that licenses
//!   the kernel's unchecked execution path.
//!
//! All passes speak [`diag::Diagnostic`] with stable `MDF0xx`/`MDF1xx`
//! codes (`MDF2xx` for the bytecode verifier), rendered human-readable or
//! as JSON by [`diag`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytecode;
pub mod certify;
pub mod diag;
pub mod lint;
pub mod race;

pub use bytecode::{BytecodeCert, VmImage, VmInstr, VmLoop, VmMode, VmRange, VmStmt};
pub use certify::{check_certificate, check_certificate_traced, check_fusion_certificate};
pub use diag::{
    has_errors, render_human, render_json, render_json_with, Diagnostic, Severity, Span,
};
pub use lint::lint_source;
pub use race::{
    certify_doall, certify_doall_traced, certify_elision, certify_elision_traced, ElisionVerdict,
    ParallelMode, RaceVerdict, RaceWitness,
};
