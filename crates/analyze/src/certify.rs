//! Retiming certificate checking.
//!
//! A fusion plan is treated as a *certificate*: the planner claims that
//! applying retiming `r` to the MLDG makes the fused loop legal (Theorem
//! 3.1) and fully parallel (Property 4.2, or Lemma 4.3 along a
//! wavefront). This pass re-derives every retimed dependence vector
//! `d_r = d + r(u) − r(v)` directly from the *raw* graph — without calling
//! into `mdf-core`'s retiming application or verifier — and checks the
//! postcondition that the producing algorithm is supposed to establish:
//!
//! * **Theorem 3.1** (all plans): every `d_r ≥ (0, 0)` lexicographically.
//! * **Algorithm 3** (acyclic): after the final `y`-zeroing step every
//!   retimed vector has `d_r.x ≥ 1`, and every `r(v).y == 0`. (The paper
//!   states the looser `d_r ≥ (1, −1)`; the implementation's `zero_y`
//!   normalization makes the first-component bound the invariant that
//!   actually guarantees Property 4.2.)
//! * **Algorithm 4** (cyclic): hard edges carry only vectors with
//!   `d_r.x ≥ 1`; on any edge each vector satisfies `d_r.x ≥ 1` or is
//!   exactly `(0, 0)` — the `y`-phase equality system pins zero-`x`
//!   vectors of non-hard edges to zero.
//! * **Algorithm 5** (hyperplane): `s · d_r ≥ 1` for every nonzero
//!   retimed vector, and the published hyperplane is `s.perpendicular()`.
//!
//! Violations are reported as `MDF006` errors; a verified certificate
//! produces a single `MDF005` info; partial-fusion plans produce an
//! `MDF007` skip warning (their per-cluster certificates are a separate
//! concern).

use crate::diag::{Diagnostic, Severity};
use mdf_core::{DegradedPlan, FullParallelMethod, FusionPlan, PlanReport};
use mdf_graph::{IVec2, Mldg};
use mdf_retime::{Retiming, Wavefront};
use mdf_trace::Span as TraceSpan;

/// Codes emitted by this pass.
pub const CODE_CERTIFIED: &str = "MDF005";
/// Certificate violation.
pub const CODE_VIOLATION: &str = "MDF006";
/// Certification skipped (partial plan or missing data).
pub const CODE_SKIPPED: &str = "MDF007";

/// Checks the plan in `report` against the raw graph `g`, returning
/// diagnostics (exactly one `MDF005` info on success).
pub fn check_certificate(g: &Mldg, report: &PlanReport) -> Vec<Diagnostic> {
    match &report.plan {
        DegradedPlan::Fused(plan) => check_fusion_certificate(g, plan),
        DegradedPlan::Partial(p) => vec![Diagnostic::new(
            CODE_SKIPPED,
            Severity::Warning,
            format!(
                "certification skipped: partial fusion into {} cluster(s) \
                 (per-cluster certificates are not derived)",
                p.clusters.len()
            ),
        )],
    }
}

/// As [`check_certificate`], reporting `analyze.certificates` and the
/// number of violation diagnostics (`analyze.witnesses`) onto `span`.
pub fn check_certificate_traced(
    g: &Mldg,
    report: &PlanReport,
    span: &TraceSpan,
) -> Vec<Diagnostic> {
    let diags = check_certificate(g, report);
    span.add("analyze.certificates", 1);
    let violations = diags.iter().filter(|d| d.code == CODE_VIOLATION).count();
    if violations > 0 {
        span.add("analyze.witnesses", violations as u64);
    }
    diags
}

/// Checks a full [`FusionPlan`] certificate against the raw graph.
pub fn check_fusion_certificate(g: &Mldg, plan: &FusionPlan) -> Vec<Diagnostic> {
    let r = plan.retiming();
    let mut diags = Vec::new();
    if r.len() != g.node_count() {
        diags.push(Diagnostic::new(
            CODE_VIOLATION,
            Severity::Error,
            format!(
                "retiming has {} offsets but the graph has {} nodes",
                r.len(),
                g.node_count()
            ),
        ));
        return diags;
    }

    let mut vectors = 0usize;
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let hard = g.is_hard(e);
        for d in g.deps(e).iter() {
            vectors += 1;
            let dr = retimed(d, r, ed.src.index(), ed.dst.index());
            let ctx = || {
                format!(
                    "edge {} -> {}, vector {} retimed to {}",
                    g.label(ed.src),
                    g.label(ed.dst),
                    d,
                    dr
                )
            };
            // Theorem 3.1: fusion legality.
            if dr < IVec2::ZERO {
                diags.push(
                    Diagnostic::new(
                        CODE_VIOLATION,
                        Severity::Error,
                        format!("Theorem 3.1 violated: retimed vector {dr} < (0, 0)"),
                    )
                    .with_note(ctx()),
                );
                continue;
            }
            match plan {
                FusionPlan::FullParallel { method, .. } => {
                    let ok = match method {
                        // Algorithm 3's zero_y normalization: x >= 1 always.
                        FullParallelMethod::Acyclic => dr.x >= 1,
                        // Algorithm 4: x >= 1, except non-hard edges may
                        // pin a vector to exactly (0, 0).
                        FullParallelMethod::Cyclic => dr.x >= 1 || (!hard && dr == IVec2::ZERO),
                    };
                    if !ok {
                        diags.push(
                            Diagnostic::new(
                                CODE_VIOLATION,
                                Severity::Error,
                                format!(
                                    "Property 4.2 violated: retimed vector {dr} is neither \
                                     outer-carried (x >= 1) nor zero{}",
                                    if hard { " (hard edge)" } else { "" }
                                ),
                            )
                            .with_note(ctx()),
                        );
                    }
                }
                FusionPlan::Hyperplane { wavefront, .. } => {
                    let s = wavefront.schedule;
                    if dr != IVec2::ZERO && s.dot(dr) < 1 {
                        diags.push(
                            Diagnostic::new(
                                CODE_VIOLATION,
                                Severity::Error,
                                format!(
                                    "Lemma 4.3 violated: schedule {s} does not strictly \
                                     separate retimed vector {dr} (s . d = {})",
                                    s.dot(dr)
                                ),
                            )
                            .with_note(ctx()),
                        );
                    }
                }
            }
        }
    }

    if let FusionPlan::FullParallel {
        method: FullParallelMethod::Acyclic,
        retiming,
    } = plan
    {
        for (i, off) in retiming.offsets().iter().enumerate() {
            if off.y != 0 {
                diags.push(Diagnostic::new(
                    CODE_VIOLATION,
                    Severity::Error,
                    format!(
                        "Algorithm 3 postcondition violated: r({}) = {} has a nonzero \
                         y component after zero_y normalization",
                        node_label(g, i),
                        off
                    ),
                ));
            }
        }
    }
    if let FusionPlan::Hyperplane { wavefront, .. } = plan {
        check_wavefront_shape(*wavefront, &mut diags);
    }

    if diags.is_empty() {
        diags.push(Diagnostic::new(
            CODE_CERTIFIED,
            Severity::Info,
            format!(
                "retiming certificate verified: {} vector(s) across {} edge(s) satisfy {}",
                vectors,
                g.edge_count(),
                postcondition_name(plan)
            ),
        ));
    }
    diags
}

/// The hyperplane published with a wavefront must be orthogonal to the
/// schedule (the paper takes `h = (s.y, -s.x)`).
fn check_wavefront_shape(w: Wavefront, diags: &mut Vec<Diagnostic>) {
    if w.hyperplane != w.schedule.perpendicular() {
        diags.push(Diagnostic::new(
            CODE_VIOLATION,
            Severity::Error,
            format!(
                "wavefront hyperplane {} is not perpendicular to schedule {} \
                 (expected {})",
                w.hyperplane,
                w.schedule,
                w.schedule.perpendicular()
            ),
        ));
    }
}

fn retimed(d: IVec2, r: &Retiming, src: usize, dst: usize) -> IVec2 {
    let ro = r.offsets();
    let rs = ro.get(src).copied().unwrap_or(IVec2::ZERO);
    let rd = ro.get(dst).copied().unwrap_or(IVec2::ZERO);
    IVec2 {
        x: d.x + rs.x - rd.x,
        y: d.y + rs.y - rd.y,
    }
}

fn node_label(g: &Mldg, i: usize) -> String {
    g.node_ids()
        .nth(i)
        .map(|n| g.label(n).to_string())
        .unwrap_or_else(|| format!("#{i}"))
}

fn postcondition_name(plan: &FusionPlan) -> &'static str {
    match plan {
        FusionPlan::FullParallel {
            method: FullParallelMethod::Acyclic,
            ..
        } => "Theorem 3.1 + Algorithm 3 (x >= 1, zeroed y)",
        FusionPlan::FullParallel {
            method: FullParallelMethod::Cyclic,
            ..
        } => "Theorem 3.1 + Theorem 4.2 (x >= 1 or zero)",
        FusionPlan::Hyperplane { .. } => "Theorem 3.1 + Lemma 4.3 (strict schedule)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use mdf_core::plan_fusion_budgeted;
    use mdf_graph::paper::{figure14, figure2, figure8};
    use mdf_graph::Budget;

    fn report_for(g: &Mldg) -> PlanReport {
        plan_fusion_budgeted(g, &Budget::default()).unwrap()
    }

    #[test]
    fn figure2_cyclic_certificate_verifies() {
        let g = figure2();
        let diags = check_certificate(&g, &report_for(&g));
        assert!(!has_errors(&diags), "{diags:?}");
        assert_eq!(diags[0].code, CODE_CERTIFIED);
    }

    #[test]
    fn figure8_acyclic_certificate_verifies() {
        let g = figure8();
        let diags = check_certificate(&g, &report_for(&g));
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn figure14_hyperplane_certificate_verifies() {
        let g = figure14();
        let diags = check_certificate(&g, &report_for(&g));
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn corrupted_retiming_is_rejected() {
        let g = figure2();
        let report = report_for(&g);
        let DegradedPlan::Fused(plan) = &report.plan else {
            panic!("figure 2 fuses fully");
        };
        let mut offsets = plan.retiming().offsets().to_vec();
        offsets[2].y += 1; // perturb one component
        let broken = match plan {
            FusionPlan::FullParallel { method, .. } => FusionPlan::FullParallel {
                retiming: Retiming::from_offsets(offsets),
                method: *method,
            },
            FusionPlan::Hyperplane { wavefront, .. } => FusionPlan::Hyperplane {
                retiming: Retiming::from_offsets(offsets),
                wavefront: *wavefront,
            },
        };
        let diags = check_fusion_certificate(&g, &broken);
        assert!(has_errors(&diags), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == CODE_VIOLATION));
    }

    #[test]
    fn wrong_length_retiming_is_rejected() {
        let g = figure2();
        let broken = FusionPlan::FullParallel {
            retiming: Retiming::identity(2),
            method: FullParallelMethod::Cyclic,
        };
        let diags = check_fusion_certificate(&g, &broken);
        assert!(has_errors(&diags));
    }
}
