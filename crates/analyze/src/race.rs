//! Static DOALL race certification over array subscripts.
//!
//! The dynamic oracle (`mdf-sim`'s `doall_check`) executes a fused spec at
//! one iteration-space size and reports conflicts it *observes*. This pass
//! instead proves the absence of races for **all** sizes: under the uniform
//! subscript model, the fused iterations at which a writer `W` of array `X`
//! and any other access `A` of `X` touch the same cell differ by a fixed
//! *conflict vector* `c` that depends only on the subscript offsets and the
//! retiming — not on `n`, `m`, or the iteration point. A parallel step of
//! the fused loop races exactly when some `c` places two distinct
//! iterations of the same step on one cell:
//!
//! * rows (Property 4.2): `c.x == 0 && c.y != 0`;
//! * a wavefront with schedule `s` (Lemma 4.3): `c != 0 && s · c == 0`.
//!
//! `c == 0` means the two accesses land in the *same* fused iteration,
//! where the fused body order serializes them. When a race exists, the
//! certifier also constructs a concrete witness — two fused iterations and
//! a cell, plus bounds `(n, m)` at which both iterations are live — so the
//! claim can be replayed against the dynamic oracle.

use mdf_graph::{v2, IVec2};
use mdf_ir::ast::{ArrayRef, Program};
use mdf_ir::retgen::FusedSpec;
use mdf_trace::Span as TraceSpan;

/// Which parallel interpretation of the fused loop is being certified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelMode {
    /// Fused rows run in parallel (`DOALL J`; Property 4.2).
    Rows,
    /// Hyperplanes of the given schedule run in parallel (Lemma 4.3).
    Hyperplanes(IVec2),
}

/// A concrete race: two fused iterations of one parallel step touching the
/// same cell, with at least one write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceWitness {
    /// The conflicting array.
    pub array: usize,
    /// The conflicting array's name.
    pub array_name: String,
    /// Loop index of the writing statement.
    pub writer_loop: usize,
    /// Statement index of the write within its loop.
    pub writer_stmt: usize,
    /// Loop index of the other access.
    pub access_loop: usize,
    /// Statement index of the other access.
    pub access_stmt: usize,
    /// Position of the access among the statement's reads (in
    /// `rhs.refs()` order), or `None` when the access is itself a write.
    pub access_read_index: Option<usize>,
    /// Subscript offsets of the writer reference.
    pub writer_ref: ArrayRef,
    /// Subscript offsets of the conflicting reference.
    pub access_ref: ArrayRef,
    /// Fused-iteration separation between the two touches.
    pub conflict: IVec2,
    /// Fused `(I, J)` at which the writer touches the cell.
    pub write_iter: (i64, i64),
    /// Fused `(I, J)` at which the other access touches the cell.
    pub access_iter: (i64, i64),
    /// The shared `(i, j)` cell.
    pub cell: (i64, i64),
    /// Iteration-space bounds `(n, m)` making both touches live.
    pub bounds: (i64, i64),
}

/// Outcome of static certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceVerdict {
    /// No access pair can conflict within a parallel step, at any
    /// iteration-space size.
    Certified {
        /// Number of (writer, access) pairs examined.
        pairs_checked: usize,
    },
    /// A conflicting pair exists; the boxed witness realizes it.
    Race(Box<RaceWitness>),
}

impl RaceVerdict {
    /// `true` for [`RaceVerdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, RaceVerdict::Certified { .. })
    }
}

/// Does separation `c` put two distinct iterations of one parallel step on
/// the same cell?
fn is_race(c: IVec2, mode: ParallelMode) -> bool {
    match mode {
        ParallelMode::Rows => c.x == 0 && c.y != 0,
        ParallelMode::Hyperplanes(s) => c != IVec2::ZERO && s.dot(c) == 0,
    }
}

/// Certifies that the fused loop described by `spec` is free of
/// same-parallel-step races under `mode`, for every iteration-space size.
///
/// The proof is a complete enumeration of (writer, access) pairs per
/// array: the program model has finitely many references with constant
/// offsets, and the retiming contributes a constant per-loop shift, so
/// each pair yields one conflict vector checked in O(1).
pub fn certify_doall(spec: &FusedSpec, mode: ParallelMode) -> RaceVerdict {
    let p = &spec.program;
    let mut pairs = 0usize;
    for (u, lu) in p.loops.iter().enumerate() {
        let ru = offset(spec, u);
        for (su, stmt) in lu.stmts.iter().enumerate() {
            let w = stmt.lhs;
            // Every access (read or write) of the same array anywhere in
            // the program, including this statement's own reads.
            for (v, lv) in p.loops.iter().enumerate() {
                let rv = offset(spec, v);
                for (sv, st) in lv.stmts.iter().enumerate() {
                    let mut accesses: Vec<(ArrayRef, Option<usize>)> = Vec::new();
                    if st.lhs.array == w.array && (v, sv) != (u, su) {
                        // A second writer (invalid under the paper model,
                        // but certified anyway so the pass is total).
                        accesses.push((st.lhs, None));
                    }
                    for (ri, r) in st.rhs.refs().into_iter().enumerate() {
                        if r.array == w.array {
                            accesses.push((r, Some(ri)));
                        }
                    }
                    for (a, read_index) in accesses {
                        pairs += 1;
                        let c = v2(ru.x + w.di - rv.x - a.di, ru.y + w.dj - rv.y - a.dj);
                        if is_race(c, mode) {
                            return RaceVerdict::Race(Box::new(realize_witness(
                                p, spec, u, su, v, sv, read_index, w, a, c,
                            )));
                        }
                    }
                }
            }
        }
    }
    RaceVerdict::Certified {
        pairs_checked: pairs,
    }
}

/// As [`certify_doall`], reporting `analyze.certificates`,
/// `analyze.pairs-checked` and `analyze.witnesses` onto `span`. Purely
/// observational: the verdict is exactly [`certify_doall`]'s.
pub fn certify_doall_traced(spec: &FusedSpec, mode: ParallelMode, span: &TraceSpan) -> RaceVerdict {
    let verdict = certify_doall(spec, mode);
    span.add("analyze.certificates", 1);
    match &verdict {
        RaceVerdict::Certified { pairs_checked } => {
            span.add("analyze.pairs-checked", *pairs_checked as u64);
        }
        RaceVerdict::Race(_) => span.add("analyze.witnesses", 1),
    }
    verdict
}

fn offset(spec: &FusedSpec, l: usize) -> IVec2 {
    spec.offsets.get(l).copied().unwrap_or(IVec2::ZERO)
}

/// Outcome of barrier-elision certification (tiled wavefront execution).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElisionVerdict {
    /// Every conflict vector is monotone along the fused outer axis: the
    /// skewed `(front, row)` tiling may replace per-front barriers with
    /// per-tile-wave barriers.
    Certified {
        /// Number of (writer, access) pairs examined.
        pairs_checked: usize,
    },
    /// The schedule cannot order tile rows by ascending `fj` within a
    /// front band (`s.y < 1`), so the in-tile sweep order is unlicensed.
    BadSchedule {
        /// The offending schedule vector.
        schedule: IVec2,
    },
    /// A conflict vector either lies inside a hyperplane (`s·c == 0`,
    /// `c != 0` — a race even untiled) or points backwards along the
    /// fused outer axis (`s·c > 0` with `c.x < 0`), which would let two
    /// same-wave tiles touch one cell.
    Conflict {
        /// The offending conflict vector (oriented so `s·c >= 0`).
        conflict: IVec2,
    },
}

impl ElisionVerdict {
    /// `true` for [`ElisionVerdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, ElisionVerdict::Certified { .. })
    }
}

/// Certifies that the hyperplane wavefront of `spec` under schedule `s`
/// may run **tiled**, with barriers only between tile waves instead of
/// between every pair of adjacent fronts.
///
/// The tiled executor partitions `(t, fi)` space — `t = s · (fi, fj)` the
/// front index, `fi` the fused row — into rectangular blocks and runs the
/// anti-diagonal block waves `T + I = w` in ascending `w`, each tile
/// swept row-major (`fi` ascending, then `fj` ascending). That erases the
/// barrier between fronts that share a wave, so it is sound only when no
/// conflict can cross between two tiles of one wave and no intra-tile
/// conflict is reordered by the row-major sweep. Both follow from two
/// facts checked here over every (writer, access) conflict vector `c`:
///
/// 1. `s · c != 0` whenever `c != 0` (the untiled hyperplane certificate,
///    re-proved so this verdict is self-contained);
/// 2. orienting `c` so `s · c > 0`, `c.x >= 0` — the sink of every
///    conflict sits in a row at or below its source. Then the sink's tile
///    indices satisfy `T2 >= T1` and `I2 >= I1`, so distinct same-wave
///    tiles (`T2 + I2 == T1 + I1`, `T2 != T1`) can never be linked, and
///    within one tile the row-major sweep (licensed by `s.y >= 1`, which
///    makes `c.x == 0` imply `c.y > 0`) serializes source before sink.
pub fn certify_elision(spec: &FusedSpec, s: IVec2) -> ElisionVerdict {
    if s.y < 1 {
        return ElisionVerdict::BadSchedule { schedule: s };
    }
    let p = &spec.program;
    let mut pairs = 0usize;
    for (u, lu) in p.loops.iter().enumerate() {
        let ru = offset(spec, u);
        for (su, stmt) in lu.stmts.iter().enumerate() {
            let w = stmt.lhs;
            for (v, lv) in p.loops.iter().enumerate() {
                let rv = offset(spec, v);
                for (sv, st) in lv.stmts.iter().enumerate() {
                    let mut accesses: Vec<ArrayRef> = Vec::new();
                    if st.lhs.array == w.array && (v, sv) != (u, su) {
                        accesses.push(st.lhs);
                    }
                    for r in st.rhs.refs() {
                        if r.array == w.array {
                            accesses.push(r);
                        }
                    }
                    for a in accesses {
                        pairs += 1;
                        let c = v2(ru.x + w.di - rv.x - a.di, ru.y + w.dj - rv.y - a.dj);
                        if c == IVec2::ZERO {
                            continue; // same fused iteration: body order
                        }
                        let dot = s.dot(c);
                        // Orient the pair so the sink is the later front.
                        let fwd = if dot >= 0 { c } else { v2(-c.x, -c.y) };
                        if dot == 0 || fwd.x < 0 {
                            return ElisionVerdict::Conflict { conflict: fwd };
                        }
                    }
                }
            }
        }
    }
    ElisionVerdict::Certified {
        pairs_checked: pairs,
    }
}

/// As [`certify_elision`], reporting `analyze.elision.certified` or
/// `analyze.elision.blocked` onto `span`. Purely observational.
pub fn certify_elision_traced(spec: &FusedSpec, s: IVec2, span: &TraceSpan) -> ElisionVerdict {
    let verdict = certify_elision(spec, s);
    match &verdict {
        ElisionVerdict::Certified { .. } => span.add("analyze.elision.certified", 1),
        _ => span.add("analyze.elision.blocked", 1),
    }
    verdict
}

/// Builds a concrete two-iteration witness far enough from the boundary
/// that both touches are live under the fused guards.
#[allow(clippy::too_many_arguments)]
fn realize_witness(
    p: &Program,
    spec: &FusedSpec,
    u: usize,
    su: usize,
    v: usize,
    sv: usize,
    access_read_index: Option<usize>,
    w: ArrayRef,
    a: ArrayRef,
    c: IVec2,
) -> RaceWitness {
    let mut reach = p.max_offset() + c.x.abs().max(c.y.abs());
    for r in &spec.offsets {
        reach = reach.max(r.x.abs()).max(r.y.abs());
    }
    let k = reach + 1;
    let write_iter = (k, k);
    let access_iter = (k + c.x, k + c.y);
    let ru = offset(spec, u);
    let cell = (write_iter.0 + ru.x + w.di, write_iter.1 + ru.y + w.dj);
    RaceWitness {
        array: w.array,
        array_name: p
            .arrays
            .get(w.array)
            .cloned()
            .unwrap_or_else(|| format!("#{}", w.array)),
        writer_loop: u,
        writer_stmt: su,
        access_loop: v,
        access_stmt: sv,
        access_read_index,
        writer_ref: w,
        access_ref: a,
        conflict: c,
        write_iter,
        access_iter,
        cell,
        bounds: (3 * k, 3 * k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_ir::samples::figure2_program;

    fn fig2_spec(offsets: Vec<IVec2>) -> FusedSpec {
        FusedSpec::new(figure2_program(), offsets)
    }

    #[test]
    fn unretimed_figure2_races_by_rows() {
        // Figure 2 has same-row dependences before retiming, e.g.
        // B reads a[i-1][j-1] while A writes a[i][j].
        let spec = fig2_spec(vec![IVec2::ZERO; 4]);
        match certify_doall(&spec, ParallelMode::Rows) {
            RaceVerdict::Race(w) => assert_eq!(w.conflict.x, 0),
            other => panic!("expected a race, got {other:?}"),
        }
    }

    #[test]
    fn witness_is_realizable_within_its_bounds() {
        let spec = fig2_spec(vec![IVec2::ZERO; 4]);
        let RaceVerdict::Race(w) = certify_doall(&spec, ParallelMode::Rows) else {
            panic!("expected a race");
        };
        let (n, m) = w.bounds;
        // Both fused iterations execute their loop bodies at these bounds.
        assert!(spec.node_active(w.writer_loop, w.write_iter.0, w.write_iter.1, n, m));
        assert!(spec.node_active(w.access_loop, w.access_iter.0, w.access_iter.1, n, m));
        // Same parallel step, different iterations.
        assert_eq!(w.write_iter.0, w.access_iter.0);
        assert_ne!(w.write_iter.1, w.access_iter.1);
    }

    #[test]
    fn planner_retiming_certifies_figure2_rows() {
        // The Figure 2 plan retiming from the paper (Alg 4).
        let spec = fig2_spec(vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)]);
        let verdict = certify_doall(&spec, ParallelMode::Rows);
        assert!(verdict.is_certified(), "{verdict:?}");
    }

    #[test]
    fn llofra_retiming_still_races_by_rows() {
        // Figure 6/7: LLOFRA legalizes fusion but leaves same-row
        // dependences; static certification must reject it.
        let spec = fig2_spec(vec![v2(0, 0), v2(0, 0), v2(0, -2), v2(0, -3)]);
        assert!(!certify_doall(&spec, ParallelMode::Rows).is_certified());
    }

    #[test]
    fn hyperplane_mode_checks_schedule_orthogonality() {
        let spec = fig2_spec(vec![IVec2::ZERO; 4]);
        // Schedule (1, 0): iterations on a plane share I. The same-row
        // conflicts (c.x == 0, c.y != 0) are exactly orthogonal to it.
        assert!(!certify_doall(&spec, ParallelMode::Hyperplanes(v2(1, 0))).is_certified());
        // Schedule (5, 1) separates every conflict vector of Figure 2.
        assert!(certify_doall(&spec, ParallelMode::Hyperplanes(v2(5, 1))).is_certified());
    }

    #[test]
    fn elision_certifies_when_conflicts_are_row_monotone() {
        // Unretimed Figure 2 under s = (5, 1): every conflict has
        // s·c != 0 and its forward orientation stays in rows below or at
        // the source, so tile waves may elide the per-front barriers.
        let spec = fig2_spec(vec![IVec2::ZERO; 4]);
        let verdict = certify_elision(&spec, v2(5, 1));
        assert!(verdict.is_certified(), "{verdict:?}");
        let ElisionVerdict::Certified { pairs_checked } = verdict else {
            unreachable!()
        };
        // Same pair enumeration as certify_doall.
        let RaceVerdict::Certified {
            pairs_checked: doall,
        } = certify_doall(&spec, ParallelMode::Hyperplanes(v2(5, 1)))
        else {
            panic!("expected certified")
        };
        assert_eq!(pairs_checked, doall);
    }

    #[test]
    fn elision_rejects_non_ordering_schedules() {
        let spec = fig2_spec(vec![IVec2::ZERO; 4]);
        assert_eq!(
            certify_elision(&spec, v2(1, 0)),
            ElisionVerdict::BadSchedule { schedule: v2(1, 0) }
        );
        assert_eq!(
            certify_elision(&spec, v2(3, -1)),
            ElisionVerdict::BadSchedule {
                schedule: v2(3, -1)
            }
        );
    }

    #[test]
    fn elision_rejects_in_plane_and_backward_conflicts() {
        // Retimed relaxation (the E5 plan): conflict vectors
        // {(0, 2), (0, 0), (1, 0), (1, -2)}.
        let spec = FusedSpec::new(
            mdf_ir::samples::relaxation_program(),
            vec![v2(0, 0), v2(0, -1)],
        );
        // The planned schedule: every conflict is forward and row-
        // monotone.
        assert!(certify_elision(&spec, v2(3, 1)).is_certified());
        // s = (0, 1): conflict (1, 0) lies inside a hyperplane — a race
        // even untiled, so elision must refuse.
        assert_eq!(
            certify_elision(&spec, v2(0, 1)),
            ElisionVerdict::Conflict { conflict: v2(1, 0) }
        );
        // s = (1, 3): conflict (1, -2) has s·c < 0; oriented forward it
        // is (-1, 2) — the sink sits one row *up*, which two tiles of a
        // wave would race on.
        assert_eq!(
            certify_elision(&spec, v2(1, 3)),
            ElisionVerdict::Conflict {
                conflict: v2(-1, 2)
            }
        );
    }
}
