//! Stable diagnostics shared by every `mdf-analyze` pass.
//!
//! Each diagnostic carries a stable `MDF0xx`/`MDF1xx` code so that tools
//! (and the CI artifact diff) can track individual findings across
//! refactors. Rendering is either human-readable (`rustc`-flavoured) or a
//! small hand-rolled JSON document — the build environment is offline, so
//! no serialization crates are available.

use std::fmt::Write as _;

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a property was positively certified.
    Info,
    /// A remark tying graph-level facts back to source lines.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// A proven problem (a race witness, a broken certificate, bad input).
    Error,
}

impl Severity {
    /// Lower-case label used in both output formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A 1-based source position attached to a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One finding of an analysis or lint pass.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `"MDF002"`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// One-line message.
    pub message: String,
    /// Source position, when the finding maps to DSL input.
    pub span: Option<Span>,
    /// Extra free-form detail lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no span and no notes.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a source position.
    #[must_use]
    pub fn with_span(mut self, line: usize, col: usize) -> Self {
        self.span = Some(Span { line, col });
        self
    }

    /// Appends a detail line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// `true` when any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics in a `rustc`-flavoured human format.
pub fn render_human(diags: &[Diagnostic], source_name: &str) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}[{}]: {}", d.severity.as_str(), d.code, d.message);
        if let Some(sp) = d.span {
            let _ = writeln!(out, "  --> {}:{}:{}", source_name, sp.line, sp.col);
        }
        for n in &d.notes {
            let _ = writeln!(out, "  = note: {n}");
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let _ = writeln!(
        out,
        "{} diagnostic(s): {} error(s), {} warning(s)",
        diags.len(),
        errors,
        warnings
    );
    out
}

/// Renders diagnostics as a single pretty-printed JSON document.
pub fn render_json(diags: &[Diagnostic], source_name: &str) -> String {
    render_json_with(diags, source_name, &[])
}

/// Like [`render_json`], with extra top-level `(key, pre-rendered JSON
/// value)` sections inserted after the counts — used by `mdfuse analyze
/// --json` to attach e.g. the `bytecode` certificate section.
pub fn render_json_with(
    diags: &[Diagnostic],
    source_name: &str,
    sections: &[(&str, String)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"source\": \"{}\",", escape(source_name));
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let _ = writeln!(out, "  \"errors\": {errors},");
    let _ = writeln!(out, "  \"warnings\": {warnings},");
    for (key, value) in sections {
        let _ = writeln!(out, "  \"{}\": {value},", escape(key));
    }
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&diag_object_json(d));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders one diagnostic as a single-line JSON object.
pub(crate) fn diag_object_json(d: &Diagnostic) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"",
        d.code,
        d.severity.as_str(),
        escape(&d.message)
    );
    if let Some(sp) = d.span {
        let _ = write!(out, ", \"line\": {}, \"col\": {}", sp.line, sp.col);
    }
    if !d.notes.is_empty() {
        out.push_str(", \"notes\": [");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(n));
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_code_span_and_notes() {
        let d = Diagnostic::new("MDF002", Severity::Error, "race on 'a'")
            .with_span(3, 7)
            .with_note("conflict vector (0, 2)");
        let s = render_human(&[d], "ex.mdf");
        assert!(s.contains("error[MDF002]: race on 'a'"));
        assert!(s.contains("--> ex.mdf:3:7"));
        assert!(s.contains("note: conflict vector (0, 2)"));
        assert!(s.contains("1 error(s)"));
    }

    #[test]
    fn json_rendering_is_well_formed_and_escaped() {
        let d = Diagnostic::new(
            "MDF101",
            Severity::Warning,
            "unused array \"x\"\nsecond line",
        );
        let s = render_json(&[d], "a\\b.mdf");
        assert!(s.contains("\"source\": \"a\\\\b.mdf\""));
        assert!(s.contains("\\\"x\\\"\\nsecond line"));
        assert!(s.contains("\"warnings\": 1"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_diagnostics_render() {
        assert!(render_json(&[], "x").contains("\"diagnostics\": []"));
        assert!(!has_errors(&[]));
    }

    #[test]
    fn extra_sections_render_between_counts_and_diagnostics() {
        let s = render_json_with(
            &[],
            "x",
            &[("bytecode", "{ \"verified\": true }".to_string())],
        );
        assert!(s.contains("\"bytecode\": { \"verified\": true },"));
        let counts = s.find("\"warnings\"").unwrap();
        let section = s.find("\"bytecode\"").unwrap();
        let list = s.find("\"diagnostics\"").unwrap();
        assert!(counts < section && section < list);
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
