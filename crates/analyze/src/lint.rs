//! DSL lints with source spans.
//!
//! The lint pass runs the full front half of the pipeline — lenient parse,
//! validation, dependence analysis, MLDG extraction — and maps everything
//! it learns back to source lines via the parser's [`SpanTable`]. Codes:
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | MDF101 | warning  | array declared but never referenced |
//! | MDF102 | note     | read textually before the array's writer (sees initial contents) |
//! | MDF103 | warning  | non-uniform subscript (degrades dependence extraction) |
//! | MDF104 | warning  | dead loop: its written array is never read |
//! | MDF105 | note     | fusion-preventing edge (lex-negative dependence) at its source read |
//! | MDF106 | note     | hard edge (retiming-invariant; Section 2.2) |
//! | MDF107 | error    | intra-loop serializing dependence (inner loop is not DOALL as written) |
//! | MDF108 | error    | program fails validation |
//! | MDF109 | error    | parse error |
//! | MDF110 | warning  | constant subscript provably outside the declared iteration space |

use crate::diag::{Diagnostic, Severity};
use mdf_graph::legality;
use mdf_graph::MdfError;
use mdf_ir::ast::{ArrayRef, Program};
use mdf_ir::deps::{analyze_dependences, AnalysisError, DepKind, Dependence};
use mdf_ir::extract::extract_mldg;
use mdf_ir::{parse_program_lenient, SpanTable, SrcLoc};

/// Lints DSL source, returning diagnostics in pass order.
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let parsed = match parse_program_lenient(src) {
        Ok(p) => p,
        Err(e) => {
            diags.push(parse_error_diag(&e));
            return diags;
        }
    };
    let p = &parsed.program;
    let spans = &parsed.spans;

    for issue in &parsed.subscript_issues {
        diags.push(
            Diagnostic::new(
                "MDF103",
                Severity::Warning,
                format!(
                    "non-uniform subscript: expected '{} ± const', found '{}'",
                    issue.expected, issue.found
                ),
            )
            .with_span(issue.loc.line, issue.loc.col)
            .with_note(
                "dependence extraction assumes uniform `index ± const` subscripts; \
                 this access is treated as a plain offset, which may hide dependences"
                    .to_string(),
            ),
        );
        // MDF110: a *negative* constant subscript is outside the declared
        // iteration space (`i` and `j` both range over [0, bound)) for
        // every bound — provable at parse time, no analysis needed. The
        // bytecode verifier (MDF2xx) would also catch the resulting
        // escape, but only after planning and lowering.
        if let Ok(v) = issue.found.parse::<i64>() {
            if v < 0 {
                diags.push(
                    Diagnostic::new(
                        "MDF110",
                        Severity::Warning,
                        format!(
                            "constant subscript {v} is provably outside the iteration \
                             space: '{}' ranges over [0, bound) for every bound",
                            issue.expected
                        ),
                    )
                    .with_span(issue.loc.line, issue.loc.col)
                    .with_note(
                        "the lowered kernel would fault or read halo cells here; \
                         the bytecode verifier rejects such an access with MDF202/MDF203"
                            .to_string(),
                    ),
                );
            }
        }
    }

    if let Err(e) = p.validate() {
        diags.push(Diagnostic::new(
            "MDF108",
            Severity::Error,
            format!("invalid program: {e}"),
        ));
        return diags;
    }

    lint_usage(p, spans, &mut diags);

    let deps = match analyze_dependences(p) {
        Ok(d) => d,
        Err(AnalysisError::IntraLoopConflict {
            loop_index,
            array,
            distance,
        }) => {
            let mut d = Diagnostic::new(
                "MDF107",
                Severity::Error,
                format!(
                    "loop '{}' carries an intra-loop dependence on '{}' at distance {}: \
                     it is not DOALL as written",
                    loop_label(p, loop_index),
                    array_name(p, array),
                    distance
                ),
            );
            if let Some(loc) = spans.loops.get(loop_index).map(|l| l.label) {
                d = d.with_span(loc.line, loc.col);
            }
            diags.push(d);
            return diags;
        }
        Err(AnalysisError::Program(e)) => {
            diags.push(Diagnostic::new(
                "MDF108",
                Severity::Error,
                format!("invalid program: {e}"),
            ));
            return diags;
        }
    };

    let Ok(extracted) = extract_mldg(p) else {
        return diags; // already reported above; extraction repeats analysis
    };
    let g = &extracted.graph;

    for e in legality::fusion_preventing_edges(g) {
        let ed = g.edge(e);
        let delta = g.delta(e);
        let (src_l, dst_l) = (ed.src.index(), ed.dst.index());
        let mut d = Diagnostic::new(
            "MDF105",
            Severity::Note,
            format!(
                "fusion-preventing dependence {} -> {} with lex-negative minimum vector {}: \
                 direct fusion is illegal without retiming",
                g.label(ed.src),
                g.label(ed.dst),
                delta
            ),
        );
        if let Some(loc) = dep_read_loc(p, spans, &deps, src_l, dst_l, delta) {
            d = d.with_span(loc.line, loc.col);
        }
        diags.push(d);
    }

    for e in g.edge_ids() {
        if !g.is_hard(e) {
            continue;
        }
        let ed = g.edge(e);
        let vecs: Vec<String> = g.deps(e).iter().map(|v| v.to_string()).collect();
        let mut d = Diagnostic::new(
            "MDF106",
            Severity::Note,
            format!(
                "hard edge {} -> {}: dependence vectors {} agree on x but differ in y, \
                 so no retiming can separate them (Section 2.2)",
                g.label(ed.src),
                g.label(ed.dst),
                vecs.join(", ")
            ),
        );
        if let Some(loc) = spans.loops.get(ed.dst.index()).map(|l| l.label) {
            d = d.with_span(loc.line, loc.col);
        }
        diags.push(d);
    }

    diags
}

/// Maps a parse/lex failure to MDF109.
fn parse_error_diag(e: &MdfError) -> Diagnostic {
    match e {
        MdfError::Parse { line, col, message } => {
            Diagnostic::new("MDF109", Severity::Error, format!("parse error: {message}"))
                .with_span(*line, *col)
        }
        other => Diagnostic::new("MDF109", Severity::Error, format!("parse error: {other}")),
    }
}

/// MDF101 (unused array), MDF104 (dead loop), MDF102 (read before writer).
fn lint_usage(p: &Program, spans: &SpanTable, diags: &mut Vec<Diagnostic>) {
    let n_arrays = p.arrays.len();
    let mut read = vec![false; n_arrays];
    let mut written = vec![false; n_arrays];
    for l in &p.loops {
        for s in &l.stmts {
            written[s.lhs.array] = true;
            for r in s.rhs.refs() {
                read[r.array] = true;
            }
        }
    }

    for a in 0..n_arrays {
        if !read[a] && !written[a] {
            let mut d = Diagnostic::new(
                "MDF101",
                Severity::Warning,
                format!("array '{}' is declared but never referenced", p.arrays[a]),
            );
            if let Some(loc) = spans.arrays.get(a) {
                d = d.with_span(loc.line, loc.col);
            }
            diags.push(d);
        }
    }

    for (li, l) in p.loops.iter().enumerate() {
        let all_dead = l.stmts.iter().all(|s| !read[s.lhs.array]);
        if all_dead {
            let arrays: Vec<&str> = l
                .stmts
                .iter()
                .map(|s| p.arrays[s.lhs.array].as_str())
                .collect();
            let mut d = Diagnostic::new(
                "MDF104",
                Severity::Warning,
                format!(
                    "dead loop '{}': it only writes {} which no loop reads",
                    l.label,
                    arrays
                        .iter()
                        .map(|a| format!("'{a}'"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            if let Some(loc) = spans.loops.get(li).map(|s| s.label) {
                d = d.with_span(loc.line, loc.col);
            }
            diags.push(d);
        }
    }

    // MDF102: a read of `X` in a loop textually before `X`'s writer
    // observes the array's *initial* contents (an anti-dependence), while
    // later reads observe written values — an easy-to-miss asymmetry.
    for (li, l) in p.loops.iter().enumerate() {
        for (si, s) in l.stmts.iter().enumerate() {
            for (ri, r) in s.rhs.refs().into_iter().enumerate() {
                let Some((wl, _)) = p.writer_of(r.array) else {
                    continue;
                };
                if li < wl {
                    let mut d = Diagnostic::new(
                        "MDF102",
                        Severity::Note,
                        format!(
                            "loop '{}' reads '{}' before its writer loop '{}': within an \
                             outer iteration this read sees the previous iteration's (or \
                             initial) contents",
                            l.label,
                            array_name(p, r.array),
                            loop_label(p, wl)
                        ),
                    );
                    if let Some(loc) = read_loc(spans, li, si, ri) {
                        d = d.with_span(loc.line, loc.col);
                    }
                    diags.push(d);
                }
            }
        }
    }
}

/// Source location of the read reference participating in the dependence
/// `src_l -> dst_l` with vector `delta`.
fn dep_read_loc(
    p: &Program,
    spans: &SpanTable,
    deps: &[Dependence],
    src_l: usize,
    dst_l: usize,
    delta: mdf_graph::IVec2,
) -> Option<SrcLoc> {
    let dep = deps
        .iter()
        .find(|d| d.src == src_l && d.dst == dst_l && d.vector == delta)?;
    // Reconstruct the reading reference. For a flow dependence the reader
    // is `dst` and `d = write − read`; for an anti dependence the reader
    // is `src` and the stored vector is `read − write`.
    let (wl, ws) = p.writer_of(dep.array)?;
    let w = p.loops.get(wl)?.stmts.get(ws)?.lhs;
    let (reader_loop, read_ref) = match dep.kind {
        DepKind::Flow => (
            dep.dst,
            ArrayRef::new(dep.array, w.di - dep.vector.x, w.dj - dep.vector.y),
        ),
        DepKind::Anti => (
            dep.src,
            ArrayRef::new(dep.array, w.di + dep.vector.x, w.dj + dep.vector.y),
        ),
    };
    find_read(p, spans, reader_loop, read_ref)
}

/// Finds the span of the first read in `loop_idx` matching `target`.
fn find_read(p: &Program, spans: &SpanTable, loop_idx: usize, target: ArrayRef) -> Option<SrcLoc> {
    let l = p.loops.get(loop_idx)?;
    for (si, s) in l.stmts.iter().enumerate() {
        for (ri, r) in s.rhs.refs().into_iter().enumerate() {
            if r == target {
                return read_loc(spans, loop_idx, si, ri);
            }
        }
    }
    None
}

fn read_loc(spans: &SpanTable, li: usize, si: usize, ri: usize) -> Option<SrcLoc> {
    spans.loops.get(li)?.stmts.get(si)?.reads.get(ri).copied()
}

fn loop_label(p: &Program, li: usize) -> String {
    p.loops
        .get(li)
        .map(|l| l.label.clone())
        .unwrap_or_else(|| format!("#{li}"))
}

fn array_name(p: &Program, a: usize) -> String {
    p.arrays.get(a).cloned().unwrap_or_else(|| format!("#{a}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_produces_no_warnings_or_errors() {
        let diags = lint_source(
            "program p { arrays a, b; do i {
                doall A: j { a[i][j] = b[i-1][j]; }
                doall B: j { b[i][j] = a[i][j-1]; }
            } }",
        );
        assert!(!has_errors(&diags), "{diags:?}");
        assert!(
            !diags.iter().any(|d| d.severity == Severity::Warning),
            "{diags:?}"
        );
        // The B -> A backward use shows up as an MDF102 note on loop A.
        assert!(codes(&diags).contains(&"MDF102"), "{diags:?}");
    }

    #[test]
    fn unused_array_flagged_at_declaration() {
        let diags =
            lint_source("program p { arrays a, ghost; do i { doall A: j { a[i][j] = 1; } } }");
        let d = diags.iter().find(|d| d.code == "MDF101").unwrap();
        assert!(d.message.contains("ghost"));
        let sp = d.span.unwrap();
        assert_eq!(sp.line, 1);
    }

    #[test]
    fn dead_loop_flagged() {
        let diags = lint_source(
            "program p { arrays a, b; do i {
                doall A: j { a[i][j] = 1; }
                doall B: j { b[i][j] = a[i-1][j]; }
            } }",
        );
        // Loop B writes b which nobody reads.
        let d = diags.iter().find(|d| d.code == "MDF104").unwrap();
        assert!(d.message.contains("'B'"), "{}", d.message);
        // Loop A is alive (a is read by B), so only one dead loop.
        assert_eq!(diags.iter().filter(|d| d.code == "MDF104").count(), 1);
    }

    #[test]
    fn non_uniform_subscript_is_a_warning_not_an_error() {
        let diags =
            lint_source("program p { arrays a, b; do i { doall A: j { a[i][0] = b[j][j]; } } }");
        assert_eq!(diags.iter().filter(|d| d.code == "MDF103").count(), 2);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn negative_constant_subscript_gets_mdf110() {
        let diags =
            lint_source("program p { arrays a, b; do i { doall A: j { a[-1][j] = b[i][j]; } } }");
        let d = diags.iter().find(|d| d.code == "MDF110").unwrap();
        assert!(d.message.contains("-1"), "{}", d.message);
        assert!(d.span.is_some());
        // The non-uniform-subscript warning still fires alongside it.
        assert!(codes(&diags).contains(&"MDF103"), "{diags:?}");
        assert!(!has_errors(&diags), "{diags:?}");
        // A non-negative constant subscript stays MDF103-only.
        let diags =
            lint_source("program p { arrays a, b; do i { doall A: j { a[0][j] = b[i][j]; } } }");
        assert!(codes(&diags).contains(&"MDF103"), "{diags:?}");
        assert!(!codes(&diags).contains(&"MDF110"), "{diags:?}");
    }

    #[test]
    fn intra_loop_conflict_is_an_error() {
        let diags =
            lint_source("program p { arrays a; do i { doall A: j { a[i][j] = a[i][j-1]; } } }");
        assert!(codes(&diags).contains(&"MDF107"), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn parse_error_maps_to_mdf109_with_span() {
        let diags = lint_source("program p { arrays a; do i { doall A: j { a[i][j] == 1; } } }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "MDF109");
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn multiple_writers_map_to_mdf108() {
        let diags = lint_source(
            "program p { arrays a; do i {
                doall A: j { a[i][j] = 1; }
                doall B: j { a[i][j+1] = 2; }
            } }",
        );
        assert!(codes(&diags).contains(&"MDF108"), "{diags:?}");
    }

    #[test]
    fn fusion_preventing_edge_noted_at_read() {
        // B reads a[i][j+2]: flow vector (0, -2) is lex-negative.
        let diags = lint_source(
            "program p { arrays a, b; do i {
                doall A: j { a[i][j] = 1; }
                doall B: j { b[i][j] = a[i][j+2]; }
            } }",
        );
        let d = diags.iter().find(|d| d.code == "MDF105").unwrap();
        assert!(d.span.is_some(), "{d:?}");
    }

    #[test]
    fn hard_edge_noted() {
        // Two vectors with equal x, different y between A and B.
        let diags = lint_source(
            "program p { arrays a, b; do i {
                doall A: j { a[i][j] = 1; }
                doall B: j { b[i][j] = a[i-1][j-1] + a[i-1][j+1]; }
            } }",
        );
        assert!(codes(&diags).contains(&"MDF106"), "{diags:?}");
    }
}
