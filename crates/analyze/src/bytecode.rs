//! Static verification of lowered kernel bytecode (`MDF2xx` codes).
//!
//! `mdf-kernel` lowers a fused spec into register bytecode whose array
//! accesses are precomputed *linear deltas* added to an iteration cursor
//! over one flat buffer. The executor historically re-checked every
//! access at runtime (`assert!(idx < len)` on each load and store). This
//! pass discharges those checks *statically*, by abstract interpretation
//! over a [`VmImage`] — a kernel's complete shape, independent of the
//! instruction semantics that do not affect safety (constant values and
//! operator identities are deliberately absent):
//!
//! 1. **Register discipline** ([`MDF201`]): every slot is written before
//!    it is read, and every slot index stays inside the executor's
//!    register file, for the postfix stack discipline the lowering emits
//!    (`Bin` reads `dst` and `dst + 1`).
//! 2. **Cursor window** ([`MDF206`]): every iteration coordinate the
//!    drivers pass to `Layout::cursor` stays inside the halo-extended
//!    plane, over the *entire* retimed iteration space — prologue,
//!    guard-free kernel, and epilogue rows alike.
//! 3. **Segment bounds** ([`MDF202`]/[`MDF203`]): every load and store
//!    address — cursor plus delta — stays inside the flat buffer *and*
//!    inside a single array plane, evaluated exactly at the rectangular
//!    corners of each loop's active range (the address is affine in
//!    `(fi, fj)` with positive coefficients, so corner evaluation is an
//!    exact interval analysis, not an approximation).
//! 4. **Step disjointness** ([`MDF204`]/[`MDF205`]): for a parallel mode,
//!    no write of one iteration can alias any access of a *distinct*
//!    iteration in the same parallel step (same fused row, or same
//!    hyperplane `s · (fi, fj)`). The aliasing condition over the flat
//!    addresses reduces to an integer feasibility check per
//!    (write, access) pair — a machine-level cross-check of the
//!    source-level race certificate ([`crate::race`]), trusting only the
//!    deltas that will actually execute.
//! 5. **Elision order** ([`MDF208`]): for the tiled wavefront mode, every
//!    collision between *different* fronts must point forward along the
//!    fused rows (and the schedule must have `s.y >= 1`), so the barriers
//!    elided inside a tile wave cannot reorder a dependence — the
//!    machine-level cross-check of `certify_elision` in [`crate::race`].
//!
//! A passing image yields a [`BytecodeCert`] — the machine-checkable
//! license for the executor's *unchecked* path and the JIT tier to come.
//! The cert embeds an [`image_checksum`], so a cached cert can be
//! [`revalidate`]d against a freshly lowered kernel without re-proving.

use std::fmt::Write as _;

use crate::diag::{Diagnostic, Severity};

/// Register-file size the verifier assumes; must equal the executor's
/// `mdf_kernel::lower::MAX_REGS` (asserted by a kernel-side test).
pub const VM_MAX_REGS: usize = 64;

/// An inclusive 1-D range; empty when `lo > hi`. Mirror of
/// `mdf_ir::retgen::IRange`, kept local so the verifier's input model has
/// no dependency on the crates it certifies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmRange {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl VmRange {
    /// `true` when the range contains no integers.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Intersection with another range (may be empty).
    pub fn intersect(&self, other: &VmRange) -> VmRange {
        VmRange {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }
}

/// One bytecode instruction, as the verifier sees it. Constant values and
/// binary-operator identities are absent by design: the executor's
/// arithmetic is total (wrapping), so they cannot affect memory safety,
/// and omitting them lets one cert cover every program that lowers to the
/// same access shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmInstr {
    /// `regs[dst] = <constant>`.
    Const {
        /// Destination slot.
        dst: u16,
    },
    /// `regs[dst] = data[cursor + delta]`.
    Load {
        /// Destination slot.
        dst: u16,
        /// Linear offset from the iteration cursor.
        delta: isize,
    },
    /// `regs[dst] = -regs[dst]`.
    Neg {
        /// Slot negated in place.
        dst: u16,
    },
    /// `regs[dst] = regs[dst] op regs[dst + 1]`.
    Bin {
        /// Left operand and destination slot.
        dst: u16,
    },
}

/// One lowered assignment: run `instrs`, store slot 0 at
/// `cursor + store_delta`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmStmt {
    /// Linear offset of the written cell from the iteration cursor.
    pub store_delta: isize,
    /// Slots the lowering claims to use.
    pub regs: u16,
    /// The postfix instruction stream.
    pub instrs: Vec<VmInstr>,
}

/// One lowered innermost loop: retiming offset, active fused ranges, body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmLoop {
    /// The loop's retiming offset `r(u)` as `(x, y)`.
    pub offset: (i64, i64),
    /// Fused rows `fi` where the loop is active.
    pub rows: VmRange,
    /// Fused columns `fj` where the loop is active.
    pub cols: VmRange,
    /// The loop body in execution order.
    pub stmts: Vec<VmStmt>,
}

/// The parallel interpretation the certificate must license.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmMode {
    /// Sequential execution: disjointness is vacuous, only register
    /// discipline and bounds are proved.
    Serial,
    /// Row-DOALL: iterations of one fused row run concurrently.
    Rows,
    /// Hyperplane wavefront: iterations with equal `s · (fi, fj)` run
    /// concurrently.
    Wavefront {
        /// The schedule vector `s` as `(x, y)`.
        schedule: (i64, i64),
    },
    /// Tiled hyperplane wavefront with barrier elision: `(t, fi)` space
    /// (`t = s · (fi, fj)`) is cut into rectangular tiles and the
    /// anti-diagonal tile *waves* run with barriers only between waves.
    /// Tiles of one wave run concurrently; each tile sweeps its cells
    /// row-major (`fi` ascending, then `fj` ascending). Licensing this
    /// mode additionally proves the sweep order ([`MDF208`]) on top of
    /// the hyperplane disjointness ([`MDF205`]).
    WavefrontTiled {
        /// The schedule vector `s` as `(x, y)`.
        schedule: (i64, i64),
    },
}

impl VmMode {
    /// Short lower-case label used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            VmMode::Serial => "serial",
            VmMode::Rows => "rows",
            VmMode::Wavefront { .. } => "wavefront",
            VmMode::WavefrontTiled { .. } => "wavefront-tiled",
        }
    }
}

/// A compiled kernel's complete verification-relevant shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmImage {
    /// Number of array planes in the flat buffer.
    pub arrays: usize,
    /// Halo width of every plane.
    pub halo: i64,
    /// Rows per plane (`n + 2*halo + 1`).
    pub rows: i64,
    /// Columns per plane (`m + 2*halo + 1`).
    pub cols: i64,
    /// Outer iteration bound the kernel was compiled for.
    pub n: i64,
    /// Inner iteration bound the kernel was compiled for.
    pub m: i64,
    /// The fused outer range the drivers sweep.
    pub outer: VmRange,
    /// The fused inner range the drivers sweep.
    pub inner: VmRange,
    /// The parallel interpretation to license.
    pub mode: VmMode,
    /// The lowered loops in body order.
    pub loops: Vec<VmLoop>,
}

impl VmImage {
    fn plane(&self) -> i64 {
        self.rows * self.cols
    }

    fn cells(&self) -> i64 {
        self.arrays as i64 * self.plane()
    }
}

/// A machine-checkable bytecode certificate: the license for unchecked
/// execution of one compiled kernel in one mode at one set of bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BytecodeCert {
    /// The mode the certificate licenses.
    pub mode: VmMode,
    /// Outer bound of the certified kernel.
    pub n: i64,
    /// Inner bound of the certified kernel.
    pub m: i64,
    /// Lowered loops covered.
    pub loops: usize,
    /// Total bytecode instructions covered.
    pub instrs: u64,
    /// Load/store sites whose bounds were discharged.
    pub loads_checked: u64,
    /// (write, access) disjointness pairs discharged.
    pub pairs_checked: u64,
    /// [`image_checksum`] of the verified image; revalidation anchor.
    pub checksum: u64,
}

fn mix(h: &mut u64, v: u64) {
    let mut z = h.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *h = z ^ (z >> 31);
}

/// A structural checksum over everything the verifier inspected: layout,
/// bounds, mode, ranges, deltas, and the full instruction shape. Two
/// images with equal checksums are verification-equivalent.
pub fn image_checksum(img: &VmImage) -> u64 {
    let mut h: u64 = 0x6d64_665f_6263_7631; // "mdf_bcv1"
    for v in [
        img.arrays as i64,
        img.halo,
        img.rows,
        img.cols,
        img.n,
        img.m,
        img.outer.lo,
        img.outer.hi,
        img.inner.lo,
        img.inner.hi,
    ] {
        mix(&mut h, v as u64);
    }
    match img.mode {
        VmMode::Serial => mix(&mut h, 1),
        VmMode::Rows => mix(&mut h, 2),
        VmMode::Wavefront { schedule } => {
            mix(&mut h, 3);
            mix(&mut h, schedule.0 as u64);
            mix(&mut h, schedule.1 as u64);
        }
        VmMode::WavefrontTiled { schedule } => {
            mix(&mut h, 4);
            mix(&mut h, schedule.0 as u64);
            mix(&mut h, schedule.1 as u64);
        }
    }
    for l in &img.loops {
        for v in [
            l.offset.0, l.offset.1, l.rows.lo, l.rows.hi, l.cols.lo, l.cols.hi,
        ] {
            mix(&mut h, v as u64);
        }
        for s in &l.stmts {
            mix(&mut h, s.store_delta as u64);
            mix(&mut h, s.regs as u64);
            for ins in &s.instrs {
                match *ins {
                    VmInstr::Const { dst } => {
                        mix(&mut h, 11);
                        mix(&mut h, dst as u64);
                    }
                    VmInstr::Load { dst, delta } => {
                        mix(&mut h, 12);
                        mix(&mut h, dst as u64);
                        mix(&mut h, delta as u64);
                    }
                    VmInstr::Neg { dst } => {
                        mix(&mut h, 13);
                        mix(&mut h, dst as u64);
                    }
                    VmInstr::Bin { dst } => {
                        mix(&mut h, 14);
                        mix(&mut h, dst as u64);
                    }
                }
            }
        }
    }
    h
}

/// `true` when `cert` still licenses `img`: same structural checksum,
/// same mode, same bounds. The cache fast path — no re-proof needed.
pub fn revalidate(cert: &BytecodeCert, img: &VmImage) -> bool {
    cert.mode == img.mode
        && cert.n == img.n
        && cert.m == img.m
        && cert.loops == img.loops.len()
        && cert.checksum == image_checksum(img)
}

// ---------------------------------------------------------------------
// The verifier.

struct Verify<'a> {
    img: &'a VmImage,
    diags: Vec<Diagnostic>,
    loads_checked: u64,
    pairs_checked: u64,
}

/// One loop's effective footprint: the exact superset of fused iterations
/// any driver path executes it at. Rows are clamped to the swept outer
/// range (the drivers iterate `outer` and gate on `rows.contains`);
/// columns are *not* clamped to `inner`, because the loop-major row path
/// sweeps the loop's full column range directly.
fn footprint(img: &VmImage, l: &VmLoop) -> (VmRange, VmRange) {
    (l.rows.intersect(&img.outer), l.cols)
}

/// Verifies a kernel image; returns the certificate, or every violation
/// found (never an empty error list).
pub fn verify(img: &VmImage) -> Result<BytecodeCert, Vec<Diagnostic>> {
    let mut v = Verify {
        img,
        diags: Vec::new(),
        loads_checked: 0,
        pairs_checked: 0,
    };
    v.check_shape();
    if v.diags.is_empty() {
        v.check_registers();
        v.check_bounds();
        v.check_disjoint();
    }
    if v.diags.is_empty() {
        Ok(BytecodeCert {
            mode: img.mode,
            n: img.n,
            m: img.m,
            loops: img.loops.len(),
            instrs: img
                .loops
                .iter()
                .flat_map(|l| l.stmts.iter())
                .map(|s| s.instrs.len() as u64)
                .sum(),
            loads_checked: v.loads_checked,
            pairs_checked: v.pairs_checked,
            checksum: image_checksum(img),
        })
    } else {
        Err(v.diags)
    }
}

impl Verify<'_> {
    fn err(&mut self, code: &'static str, message: String) {
        self.diags
            .push(Diagnostic::new(code, Severity::Error, message));
    }

    /// MDF207: the layout arithmetic every later check relies on must be
    /// internally consistent. Honest lowerings satisfy this by
    /// construction; a corrupted image is rejected before any interval
    /// math divides by its plane size.
    fn check_shape(&mut self) {
        let img = self.img;
        if img.halo < 0 {
            self.err("MDF207", format!("negative halo {}", img.halo));
        }
        if img.rows != img.n + 2 * img.halo + 1 || img.cols != img.m + 2 * img.halo + 1 {
            self.err(
                "MDF207",
                format!(
                    "layout extents {}x{} do not match bounds ({}, {}) with halo {}",
                    img.rows, img.cols, img.n, img.m, img.halo
                ),
            );
        }
    }

    /// MDF201: register discipline, per statement. The executor's
    /// register file is a fixed `[i64; MAX_REGS]` reused across
    /// statements, so a slot read before this statement writes it would
    /// observe stale data from an unrelated body — rejected even though
    /// it cannot fault.
    fn check_registers(&mut self) {
        for (li, l) in self.img.loops.iter().enumerate() {
            for (si, s) in l.stmts.iter().enumerate() {
                self.check_stmt_registers(li, si, s);
            }
        }
    }

    fn check_stmt_registers(&mut self, li: usize, si: usize, s: &VmStmt) {
        let at = |what: &str, ii: usize| format!("loop {li} stmt {si} instr {ii}: {what}");
        if s.regs as usize > VM_MAX_REGS {
            self.err(
                "MDF201",
                format!(
                    "loop {li} stmt {si}: claims {} register slots, executor file holds {}",
                    s.regs, VM_MAX_REGS
                ),
            );
            return;
        }
        let mut defined = 0u64; // bitset over the <= 64 slots
        for (ii, ins) in s.instrs.iter().enumerate() {
            let (dst, needs_dst, needs_src) = match *ins {
                VmInstr::Const { dst } | VmInstr::Load { dst, .. } => (dst, false, false),
                VmInstr::Neg { dst } => (dst, true, false),
                VmInstr::Bin { dst } => (dst, true, true),
            };
            if dst >= s.regs {
                self.err(
                    "MDF201",
                    at(&format!("slot {dst} outside the {} claimed", s.regs), ii),
                );
                return;
            }
            if needs_dst && defined & (1 << dst) == 0 {
                self.err("MDF201", at(&format!("slot {dst} read before write"), ii));
                return;
            }
            if needs_src {
                let src = dst + 1;
                if src >= s.regs {
                    self.err(
                        "MDF201",
                        at(
                            &format!("operand slot {src} outside the {} claimed", s.regs),
                            ii,
                        ),
                    );
                    return;
                }
                if defined & (1 << src) == 0 {
                    self.err("MDF201", at(&format!("slot {src} read before write"), ii));
                    return;
                }
            }
            defined |= 1 << dst;
        }
        if defined & 1 == 0 {
            self.err(
                "MDF201",
                format!("loop {li} stmt {si}: stores slot 0, which no instruction writes"),
            );
        }
    }

    /// MDF206 + MDF202/MDF203: cursor-window and segment-bounds interval
    /// analysis. The flat address of an access with delta `d` at fused
    /// iteration `(fi, fj)` of a loop with offset `r` is
    ///
    /// ```text
    /// idx(fi, fj) = (fi + r.x + halo) * cols + (fj + r.y + halo) + d
    /// ```
    ///
    /// affine in `(fi, fj)` with positive coefficients (`cols >= 1`,
    /// `1`), so its extrema over the rectangular footprint are at the two
    /// opposite corners — corner evaluation is exact.
    fn check_bounds(&mut self) {
        let img = self.img;
        let (plane, cells) = (img.plane(), img.cells());
        for (li, l) in img.loops.iter().enumerate() {
            let (rows, cols) = footprint(img, l);
            if rows.is_empty() || cols.is_empty() {
                continue; // never executed: nothing to prove
            }
            // Cursor window: the drivers call `Layout::cursor` on
            // (fi + r.x, fj + r.y); its debug window must hold at the
            // corners, hence everywhere in between.
            let (ix_lo, ix_hi) = (rows.lo + l.offset.0, rows.hi + l.offset.0);
            let (jx_lo, jx_hi) = (cols.lo + l.offset.1, cols.hi + l.offset.1);
            if ix_lo < -img.halo || ix_hi >= img.rows - img.halo {
                self.err(
                    "MDF206",
                    format!(
                        "loop {li}: cursor rows [{ix_lo}, {ix_hi}] escape the layout \
                         window [{}, {}]",
                        -img.halo,
                        img.rows - img.halo - 1
                    ),
                );
                continue;
            }
            if jx_lo < -img.halo || jx_hi >= img.cols - img.halo {
                self.err(
                    "MDF206",
                    format!(
                        "loop {li}: cursor columns [{jx_lo}, {jx_hi}] escape the layout \
                         window [{}, {}]",
                        -img.halo,
                        img.cols - img.halo - 1
                    ),
                );
                continue;
            }
            let base_lo =
                (rows.lo + l.offset.0 + img.halo) * img.cols + (cols.lo + l.offset.1 + img.halo);
            let base_hi =
                (rows.hi + l.offset.0 + img.halo) * img.cols + (cols.hi + l.offset.1 + img.halo);
            for (si, s) in l.stmts.iter().enumerate() {
                let mut site = |code: &'static str, what: String, d: isize| {
                    let (lo, hi) = (base_lo + d as i64, base_hi + d as i64);
                    if lo < 0 || hi >= cells {
                        self.err(
                            code,
                            format!(
                                "loop {li} stmt {si}: {what} spans flat addresses \
                                 [{lo}, {hi}] outside the buffer [0, {})",
                                cells
                            ),
                        );
                    } else if lo / plane != hi / plane {
                        self.err(
                            code,
                            format!(
                                "loop {li} stmt {si}: {what} spans addresses [{lo}, {hi}] \
                                 crossing from array plane {} into {}",
                                lo / plane,
                                hi / plane
                            ),
                        );
                    } else {
                        self.loads_checked += 1;
                    }
                };
                site(
                    "MDF203",
                    format!("store (delta {})", s.store_delta),
                    s.store_delta,
                );
                for (ii, ins) in s.instrs.iter().enumerate() {
                    if let VmInstr::Load { delta, .. } = *ins {
                        site(
                            "MDF202",
                            format!("load at instr {ii} (delta {delta})"),
                            delta,
                        );
                    }
                }
            }
        }
    }

    /// MDF204/MDF205: step disjointness. Two fused iterations
    /// `(fi1, fj1)` of loop `u` and `(fi2, fj2)` of loop `v` collide on
    /// one flat cell through deltas `dw` (a write of `u`) and `da` (any
    /// access of `v`) iff, with displacement `(a, b) = (fi2-fi1, fj2-fj1)`,
    ///
    /// ```text
    /// a * cols + b == K,   K = (ru.x-rv.x)*cols + (ru.y-rv.y) + dw - da
    /// ```
    ///
    /// The mode constrains which displacements share a parallel step, so
    /// the race question becomes integer feasibility of `(a, b)` over the
    /// two loops' footprint difference ranges — solved exactly, per pair.
    fn check_disjoint(&mut self) {
        let img = self.img;
        let mode = img.mode;
        if matches!(mode, VmMode::Serial) {
            return;
        }
        if let VmMode::Wavefront { schedule: (0, 0) } = mode {
            self.err(
                "MDF205",
                "degenerate wavefront schedule (0, 0): every iteration shares one step".to_string(),
            );
            return;
        }
        if let VmMode::WavefrontTiled { schedule } = mode {
            if schedule.1 < 1 {
                self.err(
                    "MDF208",
                    format!(
                        "tiled wavefront schedule ({}, {}) has s.y < 1: the row-major \
                         in-tile sweep cannot order same-row fronts",
                        schedule.0, schedule.1
                    ),
                );
                return;
            }
        }
        // Gather writes and accesses of active loops once.
        struct Site {
            li: usize,
            rows: VmRange,
            cols: VmRange,
            offset: (i64, i64),
            delta: isize,
        }
        let mut writes = Vec::new();
        let mut accesses = Vec::new();
        for (li, l) in img.loops.iter().enumerate() {
            let (rows, cols) = footprint(img, l);
            if rows.is_empty() || cols.is_empty() {
                continue;
            }
            for s in &l.stmts {
                writes.push(Site {
                    li,
                    rows,
                    cols,
                    offset: l.offset,
                    delta: s.store_delta,
                });
                accesses.push(Site {
                    li,
                    rows,
                    cols,
                    offset: l.offset,
                    delta: s.store_delta,
                });
                for ins in &s.instrs {
                    if let VmInstr::Load { delta, .. } = *ins {
                        accesses.push(Site {
                            li,
                            rows,
                            cols,
                            offset: l.offset,
                            delta,
                        });
                    }
                }
            }
        }
        for w in &writes {
            for a in &accesses {
                self.pairs_checked += 1;
                let k = (w.offset.0 - a.offset.0) * img.cols
                    + (w.offset.1 - a.offset.1)
                    + (w.delta as i64 - a.delta as i64);
                // Displacement boxes: a = fi2 - fi1 with fi1 in w.rows,
                // fi2 in a.rows (and symmetrically for b).
                let arange = VmRange {
                    lo: a.rows.lo - w.rows.hi,
                    hi: a.rows.hi - w.rows.lo,
                };
                let brange = VmRange {
                    lo: a.cols.lo - w.cols.hi,
                    hi: a.cols.hi - w.cols.lo,
                };
                let witness = match mode {
                    VmMode::Serial => None,
                    VmMode::Rows => {
                        // Same step <=> a == 0; distinct <=> b != 0.
                        (arange.lo <= 0
                            && 0 <= arange.hi
                            && k != 0
                            && brange.lo <= k
                            && k <= brange.hi)
                            .then_some((0, k))
                            .map(|d| (d, "MDF204", "fused row".to_string()))
                    }
                    VmMode::Wavefront { schedule } => {
                        wavefront_witness(schedule, img.cols, k, &arange, &brange).map(|d| {
                            (
                                d,
                                "MDF205",
                                format!("hyperplane (s = ({}, {}))", schedule.0, schedule.1),
                            )
                        })
                    }
                    VmMode::WavefrontTiled { schedule } => {
                        // The untiled hyperplane obligation still holds...
                        wavefront_witness(schedule, img.cols, k, &arange, &brange)
                            .map(|d| {
                                (
                                    d,
                                    "MDF205",
                                    format!("hyperplane (s = ({}, {}))", schedule.0, schedule.1),
                                )
                            })
                            // ...plus the elision obligation: no collision
                            // may point backwards along the fused rows.
                            .or_else(|| {
                                order_violation_witness(schedule, img.cols, k, &arange, &brange)
                                    .map(|d| {
                                        (
                                            d,
                                            "MDF208",
                                            format!(
                                                "tile wave (s = ({}, {}))",
                                                schedule.0, schedule.1
                                            ),
                                        )
                                    })
                            })
                    }
                };
                if let Some(((da, db), code, step)) = witness {
                    self.err(
                        code,
                        format!(
                            "loop {} write (delta {}) aliases loop {} access (delta {}) \
                             across distinct iterations of one {step}: displacement \
                             ({da}, {db}) solves the collision equation (K = {k})",
                            w.li, w.delta, a.li, a.delta
                        ),
                    );
                    return; // one witness suffices; the image is rejected
                }
            }
        }
    }
}

/// Searches for a nonzero displacement `(a, b) = t * p` (the integer
/// solutions of `s · (a, b) = 0`) inside the feasibility boxes with
/// `a * cols + b == k`. Returns the witness displacement if one exists.
fn wavefront_witness(
    s: (i64, i64),
    cols: i64,
    k: i64,
    arange: &VmRange,
    brange: &VmRange,
) -> Option<(i64, i64)> {
    let g = gcd(s.0.unsigned_abs(), s.1.unsigned_abs()) as i64;
    debug_assert!(g > 0, "degenerate schedules are rejected earlier");
    let p = (-s.1 / g, s.0 / g); // primitive generator of the step lattice
    let d = p.0 * cols + p.1;
    if d != 0 {
        // a*cols + b = t*d == k: t is forced.
        if k % d != 0 {
            return None;
        }
        let t = k / d;
        (t != 0 && fits(t, p.0, arange) && fits(t, p.1, brange)).then_some((t * p.0, t * p.1))
    } else {
        // Every t solves a*cols + b == 0; collide only when k == 0, at
        // any nonzero t feasible in both boxes.
        if k != 0 {
            return None;
        }
        let ts = trange(p.0, arange)?.intersect(&trange(p.1, brange)?);
        let t = if ts.lo > 0 || ts.hi < 0 {
            // 0 not in [lo, hi]: any endpoint is a nonzero witness.
            if ts.is_empty() {
                return None;
            }
            ts.lo
        } else if ts.hi >= 1 {
            1
        } else if ts.lo <= -1 {
            -1
        } else {
            return None; // only t == 0 is feasible
        };
        Some((t * p.0, t * p.1))
    }
}

/// Searches for a collision displacement `(a, b)` (`a * cols + b == k`,
/// inside the feasibility boxes) that the tiled sweep would execute out
/// of order: writing `f = s · (a, b)` for the front separation, a
/// violation is `f > 0` with `a < 0` or `f < 0` with `a > 0` — the
/// later-front touch sits in an *earlier* fused row, so two tiles of one
/// wave (which the elided barriers no longer separate) could race on the
/// cell, or the in-tile row-major sweep would visit sink before source.
///
/// Substituting `b = k - a * cols` makes `f` affine in `a`:
/// `f(a) = a * (s.x - s.y * cols) + s.y * k`, so each sign class is an
/// endpoint check over the feasible `a` interval — exact and O(1).
fn order_violation_witness(
    s: (i64, i64),
    cols: i64,
    k: i64,
    arange: &VmRange,
    brange: &VmRange,
) -> Option<(i64, i64)> {
    debug_assert!(cols > 0, "layouts have at least one column");
    // Feasible a: a in arange and k - a*cols in brange.
    let lo = arange.lo.max(div_ceil(k - brange.hi, cols));
    let hi = arange.hi.min(div_floor(k - brange.lo, cols));
    if lo > hi {
        return None;
    }
    let q = s.0 - s.1 * cols;
    let r = s.1 * k;
    let f = |a: i64| a * q + r;
    // Class 1: a < 0 with f(a) > 0. f is affine, so its maximum over the
    // sub-interval sits at an endpoint picked by the sign of q.
    let (nlo, nhi) = (lo, hi.min(-1));
    if nlo <= nhi {
        let a = if q >= 0 { nhi } else { nlo };
        if f(a) > 0 {
            return Some((a, k - a * cols));
        }
    }
    // Class 2: a > 0 with f(a) < 0 (the same collision, oriented the
    // other way round).
    let (plo, phi) = (lo.max(1), hi);
    if plo <= phi {
        let a = if q >= 0 { plo } else { phi };
        if f(a) < 0 {
            return Some((a, k - a * cols));
        }
    }
    None
}

/// `true` when `t * q` lies in `r`.
fn fits(t: i64, q: i64, r: &VmRange) -> bool {
    let v = t * q;
    r.lo <= v && v <= r.hi
}

/// The integer `t` for which `t * q` lies in `r`; `None` when empty.
/// `q == 0` requires `0 ∈ r` and leaves `t` unconstrained.
fn trange(q: i64, r: &VmRange) -> Option<VmRange> {
    if q == 0 {
        return (r.lo <= 0 && 0 <= r.hi).then_some(VmRange {
            lo: i64::MIN / 4,
            hi: i64::MAX / 4,
        });
    }
    let (lo, hi) = if q > 0 {
        (div_ceil(r.lo, q), div_floor(r.hi, q))
    } else {
        (div_ceil(r.hi, q), div_floor(r.lo, q))
    };
    (lo <= hi).then_some(VmRange { lo, hi })
}

fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ---------------------------------------------------------------------
// Reporting.

/// Runs the verifier and renders the outcome as diagnostics: the MDF2xx
/// violations on rejection, or one `MDF200` info certificate on success.
pub fn certificate_diagnostics(img: &VmImage) -> (Option<BytecodeCert>, Vec<Diagnostic>) {
    match verify(img) {
        Ok(cert) => {
            let d = Diagnostic::new(
                "MDF200",
                Severity::Info,
                format!(
                    "bytecode verified for {} execution at bounds ({}, {}): {} loop(s), \
                     {} instruction(s), {} access site(s) bounded, {} disjointness \
                     pair(s) checked — unchecked fast path licensed",
                    cert.mode.as_str(),
                    cert.n,
                    cert.m,
                    cert.loops,
                    cert.instrs,
                    cert.loads_checked,
                    cert.pairs_checked
                ),
            );
            (Some(cert), vec![d])
        }
        Err(diags) => (None, diags),
    }
}

/// Renders a cert (or its absence) plus its diagnostics as the JSON value
/// of the `bytecode` report section.
pub fn section_json(cert: Option<&BytecodeCert>, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "    \"verified\": {},", cert.is_some());
    if let Some(c) = cert {
        let _ = writeln!(out, "    \"mode\": \"{}\",", c.mode.as_str());
        let _ = writeln!(out, "    \"n\": {},", c.n);
        let _ = writeln!(out, "    \"m\": {},", c.m);
        let _ = writeln!(out, "    \"loops\": {},", c.loops);
        let _ = writeln!(out, "    \"instrs\": {},", c.instrs);
        let _ = writeln!(out, "    \"loads_checked\": {},", c.loads_checked);
        let _ = writeln!(out, "    \"pairs_checked\": {},", c.pairs_checked);
        let _ = writeln!(out, "    \"checksum\": \"{:#x}\",", c.checksum);
    }
    out.push_str("    \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      ");
        out.push_str(&crate::diag::diag_object_json(d));
    }
    if !diags.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small honest image: one loop, identity offset, a body computing
    /// `x[i][j] = x[i-1][j] + 1` over a 5x5 space with halo 1.
    fn stencil_image(mode: VmMode) -> VmImage {
        let (n, m, halo) = (4, 4, 1);
        VmImage {
            arrays: 1,
            halo,
            rows: n + 2 * halo + 1,
            cols: m + 2 * halo + 1,
            n,
            m,
            outer: VmRange { lo: 0, hi: n },
            inner: VmRange { lo: 0, hi: m },
            mode,
            loops: vec![VmLoop {
                offset: (0, 0),
                rows: VmRange { lo: 0, hi: n },
                cols: VmRange { lo: 0, hi: m },
                stmts: vec![VmStmt {
                    store_delta: 0,
                    regs: 2,
                    instrs: vec![
                        VmInstr::Load {
                            dst: 0,
                            delta: -(m as isize + 2 * halo as isize + 1), // x[i-1][j]
                        },
                        VmInstr::Const { dst: 1 },
                        VmInstr::Bin { dst: 0 },
                    ],
                }],
            }],
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn honest_stencil_verifies_in_rows_and_serial_modes() {
        for mode in [VmMode::Serial, VmMode::Rows] {
            let cert = verify(&stencil_image(mode)).unwrap();
            assert_eq!(cert.mode, mode);
            assert_eq!(cert.loops, 1);
            assert_eq!(cert.instrs, 3);
            assert!(cert.loads_checked >= 2, "store + load");
            assert!(revalidate(&cert, &stencil_image(mode)));
            // A different mode fails revalidation.
            assert!(!revalidate(&cert, &stencil_image(VmMode::Serial)) || mode == VmMode::Serial);
        }
        // Rows mode checked one (write, access) pair per combination:
        // store-vs-store and store-vs-load.
        let cert = verify(&stencil_image(VmMode::Rows)).unwrap();
        assert_eq!(cert.pairs_checked, 2);
    }

    #[test]
    fn register_use_before_def_is_rejected() {
        let mut img = stencil_image(VmMode::Serial);
        // Bin reads slot 1 before anything writes it.
        img.loops[0].stmts[0].instrs = vec![VmInstr::Const { dst: 0 }, VmInstr::Bin { dst: 0 }];
        let err = verify(&img).unwrap_err();
        assert_eq!(codes(&err), ["MDF201"]);
        assert!(err[0].message.contains("read before write"), "{err:?}");

        // Slot index past the claimed register count.
        let mut img = stencil_image(VmMode::Serial);
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load { dst: 9, delta: 0 };
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF201"]);

        // Claimed register count past the executor's file.
        let mut img = stencil_image(VmMode::Serial);
        img.loops[0].stmts[0].regs = VM_MAX_REGS as u16 + 1;
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF201"]);

        // Empty body: slot 0 is stored but never written.
        let mut img = stencil_image(VmMode::Serial);
        img.loops[0].stmts[0].instrs.clear();
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF201"]);
    }

    #[test]
    fn out_of_segment_load_and_store_are_rejected() {
        // A delta past the whole buffer.
        let mut img = stencil_image(VmMode::Serial);
        let cells = img.cells() as isize;
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load {
            dst: 0,
            delta: cells,
        };
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF202"]);

        // A store delta underflowing the buffer.
        let mut img = stencil_image(VmMode::Serial);
        img.loops[0].stmts[0].store_delta = -cells;
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF203"]);
    }

    #[test]
    fn plane_crossing_access_is_rejected_even_inside_the_buffer() {
        // Two arrays; a load whose interval stays in [0, cells) but leaks
        // from plane 0 into plane 1 across the iteration space.
        let mut img = stencil_image(VmMode::Serial);
        img.arrays = 2;
        // The access interval's high corner sits at flat address
        // (n+halo)*cols + (m+halo) + delta; park it 5 cells past the
        // plane boundary while the low corner stays in plane 0.
        let high_corner = (img.n + img.halo) * img.cols + (img.m + img.halo);
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load {
            dst: 0,
            delta: (img.plane() + 5 - high_corner) as isize,
        };
        let err = verify(&img).unwrap_err();
        assert_eq!(codes(&err), ["MDF202"]);
        assert!(err[0].message.contains("crossing"), "{err:?}");
    }

    #[test]
    fn cursor_window_escape_is_rejected() {
        let mut img = stencil_image(VmMode::Serial);
        img.loops[0].rows.hi += 10; // clamped by outer...
        assert!(verify(&img).is_ok(), "rows are clamped to the swept outer");
        img.outer.hi += 10; // ...until the sweep itself extends
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF206"]);
    }

    #[test]
    fn malformed_layout_is_rejected_first() {
        let mut img = stencil_image(VmMode::Rows);
        img.rows -= 1;
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF207"]);
        let mut img = stencil_image(VmMode::Rows);
        img.halo = -1;
        assert!(codes(&verify(&img).unwrap_err()).contains(&"MDF207"));
    }

    #[test]
    fn row_step_overlap_is_rejected_in_rows_mode_only() {
        // x[i][j] = x[i][j-1]: distinct iterations of one row collide.
        let mut img = stencil_image(VmMode::Rows);
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load { dst: 0, delta: -1 };
        let err = verify(&img).unwrap_err();
        assert_eq!(codes(&err), ["MDF204"]);
        assert!(err[0].message.contains("displacement"), "{err:?}");

        // The same image is fine serially.
        let mut img = stencil_image(VmMode::Serial);
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load { dst: 0, delta: -1 };
        assert!(verify(&img).is_ok());
    }

    #[test]
    fn row_step_accepts_cross_row_dependences() {
        // The honest stencil reads x[i-1][j]: a cross-row flow is no race
        // within a row.
        assert!(verify(&stencil_image(VmMode::Rows)).is_ok());
    }

    #[test]
    fn wavefront_step_overlap_matches_the_schedule_geometry() {
        // Read x[i-1][j+1]: displacement (1, -1) is orthogonal to
        // s = (1, 1), so the hyperplane step races; s = (1, 2) does not.
        let delta_up_right = |img: &VmImage| -(img.cols as isize) + 1;
        let mut img = stencil_image(VmMode::Wavefront { schedule: (1, 1) });
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load {
            dst: 0,
            delta: delta_up_right(&img),
        };
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF205"]);

        let mut img = stencil_image(VmMode::Wavefront { schedule: (1, 2) });
        img.loops[0].stmts[0].instrs[0] = VmInstr::Load {
            dst: 0,
            delta: delta_up_right(&img),
        };
        assert!(verify(&img).is_ok());

        // Degenerate schedule: always rejected.
        let img = stencil_image(VmMode::Wavefront { schedule: (0, 0) });
        assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF205"]);
    }

    #[test]
    fn tiled_wavefront_accepts_forward_dependences() {
        // The honest stencil's one flow is x[i-1][j]: oriented forward
        // (s·c > 0) it is c = (1, 0), which never points up a row.
        for s in [(1, 1), (3, 1), (2, 3)] {
            let img = stencil_image(VmMode::WavefrontTiled { schedule: s });
            let cert = verify(&img).unwrap();
            assert_eq!(cert.mode, VmMode::WavefrontTiled { schedule: s });
            assert!(revalidate(&cert, &img));
        }
    }

    #[test]
    fn tiled_wavefront_rejects_backward_row_dependences() {
        // Read x[i+1][j-2] under s = (1, 3): the conflict oriented
        // forward is c = (-1, 2) with s·c = 5 > 0 but c.x < 0 — a plain
        // wavefront tolerates it, the tiled sweep must not.
        let image = |mode| {
            let mut img = stencil_image(mode);
            img.loops[0].stmts[0].instrs[0] = VmInstr::Load {
                dst: 0,
                delta: img.cols as isize - 2,
            };
            img
        };
        assert!(verify(&image(VmMode::Wavefront { schedule: (1, 3) })).is_ok());
        let err = verify(&image(VmMode::WavefrontTiled { schedule: (1, 3) })).unwrap_err();
        assert_eq!(codes(&err), ["MDF208"]);
        assert!(err[0].message.contains("(-1, 2)"), "{err:?}");
    }

    #[test]
    fn tiled_wavefront_requires_a_row_ordering_schedule() {
        // s.y < 1 leaves same-row fronts unordered by the fj-ascending
        // in-tile sweep; rejected up front, including the degenerate
        // schedule.
        for s in [(1, 0), (2, -1), (0, 0)] {
            let img = stencil_image(VmMode::WavefrontTiled { schedule: s });
            assert_eq!(codes(&verify(&img).unwrap_err()), ["MDF208"]);
        }
    }

    #[test]
    fn tiled_and_untiled_wavefront_certs_do_not_cross_validate() {
        // Barrier elision is part of the license: a cert minted for the
        // untiled mode must not arm the tiled executor, nor vice versa.
        let tiled = stencil_image(VmMode::WavefrontTiled { schedule: (1, 1) });
        let plain = stencil_image(VmMode::Wavefront { schedule: (1, 1) });
        let tiled_cert = verify(&tiled).unwrap();
        let plain_cert = verify(&plain).unwrap();
        assert!(revalidate(&tiled_cert, &tiled));
        assert!(revalidate(&plain_cert, &plain));
        assert!(!revalidate(&tiled_cert, &plain));
        assert!(!revalidate(&plain_cert, &tiled));
        assert_ne!(tiled_cert.checksum, plain_cert.checksum);
    }

    #[test]
    fn checksum_tracks_structure_and_revalidation_rejects_drift() {
        let img = stencil_image(VmMode::Rows);
        let cert = verify(&img).unwrap();
        let mut other = img.clone();
        other.loops[0].stmts[0].store_delta += 1;
        assert_ne!(image_checksum(&img), image_checksum(&other));
        assert!(!revalidate(&cert, &other));
        let mut other = img.clone();
        other.n += 1;
        assert!(!revalidate(&cert, &other));
    }

    #[test]
    fn division_helpers_agree_with_euclidean_reasoning() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(-7, -2), 4);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn certificate_diagnostics_reports_success_as_mdf200() {
        let (cert, diags) = certificate_diagnostics(&stencil_image(VmMode::Rows));
        assert!(cert.is_some());
        assert_eq!(codes(&diags), ["MDF200"]);
        assert_eq!(diags[0].severity, Severity::Info);
        let json = section_json(cert.as_ref(), &diags);
        assert!(json.contains("\"verified\": true"), "{json}");
        assert!(json.contains("\"mode\": \"rows\""), "{json}");
        assert!(json.contains("MDF200"), "{json}");
    }
}
