//! The example 2LDGs used throughout the paper, constructed exactly as
//! specified in the text. These are shared by tests, examples and the
//! benchmark harness (experiment suite entries E1–E3).

use crate::mldg::Mldg;
use crate::vec2::v2;

/// Figure 2(a): the running 4-node cyclic 2LDG.
///
/// ```text
/// D_L(A,B) = {(1,1),(2,1)}    D_L(B,C) = {(0,-2),(0,1)}   (hard edge)
/// D_L(C,D) = {(0,-1)}         D_L(A,C) = {(0,1)}
/// D_L(D,A) = {(2,1)}          D_L(C,C) = {(1,0)}
/// ```
pub fn figure2() -> Mldg {
    let mut g = Mldg::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    let c = g.add_node("C");
    let d = g.add_node("D");
    g.add_deps(a, b, [v2(1, 1), v2(2, 1)]);
    g.add_deps(b, c, [v2(0, -2), v2(0, 1)]);
    g.add_deps(c, d, [v2(0, -1)]);
    g.add_deps(a, c, [v2(0, 1)]);
    g.add_deps(d, a, [v2(2, 1)]);
    g.add_deps(c, c, [v2(1, 0)]);
    g
}

/// Figure 8: the 7-node acyclic 2LDG of Section 4.2.
///
/// ```text
/// D_L(A,B) = {(0,1)}            D_L(B,C) = {(0,-2),(0,3)}  (hard edge)
/// D_L(C,D) = {(1,3)}            D_L(D,E) = {(2,-2)}
/// D_L(B,F) = {(0,-2)}           D_L(F,G) = {(1,2)}
/// D_L(B,E) = {(1,2)}            D_L(A,D) = {(0,-3),(0,-1)} (hard edge)
/// ```
pub fn figure8() -> Mldg {
    let mut g = Mldg::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    let c = g.add_node("C");
    let d = g.add_node("D");
    let e = g.add_node("E");
    let f = g.add_node("F");
    let gg = g.add_node("G");
    g.add_deps(a, b, [v2(0, 1)]);
    g.add_deps(b, c, [v2(0, -2), v2(0, 3)]);
    g.add_deps(c, d, [v2(1, 3)]);
    g.add_deps(d, e, [v2(2, -2)]);
    g.add_deps(b, f, [v2(0, -2)]);
    g.add_deps(f, gg, [v2(1, 2)]);
    g.add_deps(b, e, [v2(1, 2)]);
    g.add_deps(a, d, [v2(0, -3), v2(0, -1)]);
    g
}

/// Figure 14: the cyclic 2LDG of Section 4.4 that only admits hyperplane
/// (wavefront) parallelism. It is Figure 8 altered by:
///
/// * adding edges `D -> C` and `E -> B`;
/// * `D_L(D,C) = {(0,-2)}` and `D_L(E,B) = {(0,1),(1,1)}`;
/// * redefining `D_L(C,D) = {(0,3),(0,5)}` (hard), `D_L(D,E) = {(0,-2)}`,
///   and `D_L(A,D) = {(0,-3),(1,0)}`.
pub fn figure14() -> Mldg {
    let mut g = Mldg::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    let c = g.add_node("C");
    let d = g.add_node("D");
    let e = g.add_node("E");
    let f = g.add_node("F");
    let gg = g.add_node("G");
    g.add_deps(a, b, [v2(0, 1)]);
    g.add_deps(b, c, [v2(0, -2), v2(0, 3)]);
    g.add_deps(c, d, [v2(0, 3), v2(0, 5)]);
    g.add_deps(d, e, [v2(0, -2)]);
    g.add_deps(b, f, [v2(0, -2)]);
    g.add_deps(f, gg, [v2(1, 2)]);
    g.add_deps(b, e, [v2(1, 2)]);
    g.add_deps(a, d, [v2(0, -3), v2(1, 0)]);
    g.add_deps(d, c, [v2(0, -2)]);
    g.add_deps(e, b, [v2(0, 1), v2(1, 1)]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::is_acyclic;
    use crate::legality::check_executable;

    #[test]
    fn figure2_properties() {
        let g = figure2();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 6);
        assert!(!is_acyclic(&g));
        assert_eq!(check_executable(&g), Ok(()));
    }

    #[test]
    fn figure8_properties() {
        let g = figure8();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 8);
        assert!(is_acyclic(&g));
        assert_eq!(check_executable(&g), Ok(()));
        // Hard edges: B->C and A->D.
        let hard: Vec<_> = g.edge_ids().filter(|&e| g.is_hard(e)).collect();
        assert_eq!(hard.len(), 2);
    }

    #[test]
    fn figure14_properties() {
        let g = figure14();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 10);
        assert!(!is_acyclic(&g));
        // Figure 14 contains the same-iteration cycle C -> D -> C
        // (weights (0,3) and (0,-2)), so it is not realizable as a straight
        // textual loop sequence; the paper nevertheless processes it with
        // Algorithm 5, whose feasibility hypothesis (all cycle weights
        // lexicographically >= (0,0); the cycle B->C->D->E->B sums to
        // exactly (0,0)) does hold.
        assert!(matches!(
            check_executable(&g),
            Err(crate::legality::ExecutabilityError::SameIterationCycle { .. })
        ));
        let report = crate::legality::cycle_weight_report(&g, 1000);
        assert!(!report.truncated);
        assert!(report.all_lex_nonnegative);
        assert!(!report.all_lex_positive);
        assert!(!report.all_at_least_one_neg_one);
        // Hard edges: B->C and C->D (per the figure's '*' marks).
        let b = g.node_by_label("B").unwrap();
        let c = g.node_by_label("C").unwrap();
        let d = g.node_by_label("D").unwrap();
        assert!(g.is_hard(g.edge_between(b, c).unwrap()));
        assert!(g.is_hard(g.edge_between(c, d).unwrap()));
    }
}
