#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-graph` — the MLDG substrate
//!
//! Data model for *multi-dimensional loop dependence graphs* (MLDGs) from
//! "Efficient Polynomial-Time Nested Loop Fusion with Full Parallelism"
//! (Sha, O'Neil, Passos; ICPP 1996):
//!
//! * [`vec2::IVec2`] / [`nvec::IVecN`] — integer vectors under the
//!   lexicographic order used for all dependence-vector comparisons;
//! * [`mldg::Mldg`] — the two-dimensional MLDG ("2LDG") with full
//!   dependence-vector sets `D_L`, minimal weights `δ_L` and hard-edge
//!   detection;
//! * [`mldg_n::MldgN`] — the `N`-dimensional generalization used by the
//!   extended legal-fusion algorithm;
//! * [`legality`] — executability and fusion-legality predicates
//!   (Theorem 3.1, Lemma 2.1);
//! * [`cycles`] — topological order, SCCs, bounded elementary-cycle
//!   enumeration (for diagnostics and algorithm selection);
//! * [`paper`] — the exact example graphs from the paper's figures;
//! * [`dot`] / [`textfmt`] — interchange formats.
//!
//! The crate is deliberately small (its only dependency is the equally
//! small `mdf-chaos` fault-injection registry consulted by [`budget`]):
//! everything that *computes* retimings lives above it
//! (`mdf-constraint`, `mdf-retime`, `mdf-core`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod canon;
pub mod cycles;
pub mod dot;
pub mod error;
pub mod legality;
pub mod mldg;
pub mod mldg_n;
pub mod nvec;
pub mod paper;
pub mod textfmt;
pub mod vec2;

pub use budget::{Budget, BudgetMeter};
pub use canon::{canonical_fingerprint, canonical_form};
pub use error::{BudgetResource, InfeasiblePhase, MdfError, WitnessWeight};
pub use mldg::{DepSet, EdgeData, EdgeId, Mldg, NodeData, NodeId};
pub use nvec::IVecN;
pub use vec2::{v2, IVec2};
