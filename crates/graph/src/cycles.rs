//! Structural graph analyses over an [`Mldg`]: topological order, strongly
//! connected components (Tarjan), and bounded elementary-cycle enumeration
//! (Johnson's algorithm).
//!
//! Algorithm selection in `mdf-core` branches on acyclicity (Theorem 4.1
//! applies only to acyclic 2LDGs), and legality diagnostics report concrete
//! offending cycles, so these analyses are part of the substrate.

use crate::mldg::{EdgeId, Mldg, NodeId};

/// Returns the lexicographically smallest topological order of the nodes
/// (stable Kahn: among ready nodes, lowest id first), or `None` when the
/// graph has a cycle. The stability matters downstream: the textual order
/// of a program's loops is its node-id order, and baselines that scan
/// loops "in textual order" rely on this function preserving it whenever
/// the dependences allow. `O((|V| + |E|) log |V|)`.
pub fn topological_order(g: &Mldg) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for e in g.edge_ids() {
        indeg[g.edge(e).dst.index()] += 1;
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = g
        .node_ids()
        .filter(|v| indeg[v.index()] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        order.push(v);
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                ready.push(std::cmp::Reverse(w));
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// `true` when the MLDG contains no directed cycle (self-loops count as
/// cycles).
pub fn is_acyclic(g: &Mldg) -> bool {
    topological_order(g).is_some()
}

/// Strongly connected components in reverse topological order of the
/// component DAG (Tarjan's algorithm, iterative).
pub fn strongly_connected_components(g: &Mldg) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS stack: (node, next out-edge position).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for root in g.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei < g.out_edges(v).len() {
                let e = g.out_edges(v)[*ei];
                *ei += 1;
                let w = g.edge(e).dst;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        // Tarjan invariant: the SCC root is still on the stack.
                        #[allow(clippy::expect_used)]
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// An elementary cycle reported as the list of edge ids traversed, starting
/// from its smallest node id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    /// Edges of the cycle in traversal order.
    pub edges: Vec<EdgeId>,
}

impl Cycle {
    /// Node sequence visited (length = `edges.len()`, first node repeated
    /// implicitly at the end).
    pub fn nodes(&self, g: &Mldg) -> Vec<NodeId> {
        self.edges.iter().map(|&e| g.edge(e).src).collect()
    }
}

/// Enumerates elementary cycles (Johnson's algorithm) up to `cap` cycles.
/// Returns the cycles found and `true` if the enumeration was truncated.
///
/// Cycle counts are worst-case exponential; the cap keeps diagnostics
/// tractable on generated stress graphs.
pub fn elementary_cycles(g: &Mldg, cap: usize) -> (Vec<Cycle>, bool) {
    let n = g.node_count();
    let mut cycles = Vec::new();
    let mut truncated = false;

    // Johnson's algorithm, restricted to nodes >= s in each round.
    for s in 0..n {
        if cycles.len() >= cap {
            truncated = true;
            break;
        }
        let s_node = NodeId(s as u32);
        let mut blocked = vec![false; n];
        let mut b_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut path_edges: Vec<EdgeId> = Vec::new();

        // Recursive circuit() made iterative via an explicit frame stack.
        struct Frame {
            v: usize,
            edge_pos: usize,
            found: bool,
        }
        let mut frames = vec![Frame {
            v: s,
            edge_pos: 0,
            found: false,
        }];
        blocked[s] = true;

        fn unblock(u: usize, blocked: &mut [bool], b_sets: &mut [Vec<usize>]) {
            let mut work = vec![u];
            while let Some(x) = work.pop() {
                if blocked[x] {
                    blocked[x] = false;
                    work.extend(std::mem::take(&mut b_sets[x]));
                }
            }
        }

        'outer: while let Some(top) = frames.last_mut() {
            let v = top.v;
            let out = g.out_edges(NodeId(v as u32));
            while top.edge_pos < out.len() {
                let e = out[top.edge_pos];
                top.edge_pos += 1;
                let w = g.edge(e).dst.index();
                if w < s {
                    continue; // restrict to subgraph induced by nodes >= s
                }
                if w == s {
                    // Found an elementary cycle closing at s.
                    let mut edges = path_edges.clone();
                    edges.push(e);
                    cycles.push(Cycle { edges });
                    top.found = true;
                    if cycles.len() >= cap {
                        truncated = true;
                        break 'outer;
                    }
                } else if !blocked[w] {
                    path_edges.push(e);
                    blocked[w] = true;
                    frames.push(Frame {
                        v: w,
                        edge_pos: 0,
                        found: false,
                    });
                    continue 'outer;
                }
            }
            // Post-visit bookkeeping.
            let found = top.found;
            if found {
                unblock(v, &mut blocked, &mut b_sets);
            } else {
                for &e in g.out_edges(NodeId(v as u32)) {
                    let w = g.edge(e).dst.index();
                    if w >= s && !b_sets[w].contains(&v) {
                        b_sets[w].push(v);
                    }
                }
            }
            frames.pop();
            if let Some(parent) = frames.last_mut() {
                parent.found |= found;
                path_edges.pop();
            }
        }
        let _ = s_node;
    }
    (cycles, truncated)
}

/// Nodes reachable from `start` (inclusive), by DFS.
pub fn reachable_from(g: &Mldg, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        out.push(v);
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::v2;

    fn figure2() -> Mldg {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        let d = g.add_node("D");
        g.add_deps(a, b, [v2(1, 1), v2(2, 1)]);
        g.add_deps(b, c, [v2(0, -2), v2(0, 1)]);
        g.add_deps(c, d, [v2(0, -1)]);
        g.add_deps(a, c, [v2(0, 1)]);
        g.add_deps(d, a, [v2(2, 1)]);
        g.add_deps(c, c, [v2(1, 0)]);
        g
    }

    fn chain(n: usize) -> Mldg {
        let mut g = Mldg::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(format!("N{i}"))).collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1], (0, 1));
        }
        g
    }

    #[test]
    fn chain_is_acyclic_with_valid_topo_order() {
        let g = chain(6);
        assert!(is_acyclic(&g));
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 6);
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for e in g.edge_ids() {
            let ed = g.edge(e);
            assert!(pos[ed.src.index()] < pos[ed.dst.index()]);
        }
    }

    #[test]
    fn figure2_is_cyclic() {
        let g = figure2();
        assert!(!is_acyclic(&g));
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        g.add_dep(a, a, (1, 0));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn sccs_of_figure2() {
        let g = figure2();
        let sccs = strongly_connected_components(&g);
        // B is part of the big cycle A->B->C->D->A, so {A,B,C,D} is one SCC.
        let sizes: Vec<usize> = sccs.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.contains(&4), "expected one 4-node SCC, got {sizes:?}");
    }

    #[test]
    fn sccs_of_dag_are_singletons() {
        let g = chain(5);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 5);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn elementary_cycles_of_figure2() {
        let g = figure2();
        let (cycles, truncated) = elementary_cycles(&g, 100);
        assert!(!truncated);
        // Paper names c1 = A->B->C->D->A and c2 = A->C->D->A; plus the C->C
        // self-loop: 3 elementary cycles total.
        assert_eq!(cycles.len(), 3, "{cycles:?}");
        let mut sums: Vec<_> = cycles.iter().map(|c| g.delta_sum(&c.edges)).collect();
        sums.sort();
        assert_eq!(sums, vec![v2(1, 0), v2(2, 1), v2(3, -1)]);
    }

    #[test]
    fn cycle_enumeration_cap_respected() {
        // Complete digraph on 6 nodes has many cycles; cap must hold.
        let mut g = Mldg::new();
        let ids: Vec<_> = (0..6).map(|i| g.add_node(format!("K{i}"))).collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    g.add_dep(u, v, (1, 0));
                }
            }
        }
        let (cycles, truncated) = elementary_cycles(&g, 10);
        assert_eq!(cycles.len(), 10);
        assert!(truncated);
    }

    #[test]
    fn reachability() {
        let g = chain(4);
        let from0 = reachable_from(&g, NodeId(0));
        assert_eq!(from0.len(), 4);
        let from3 = reachable_from(&g, NodeId(3));
        assert_eq!(from3.len(), 1);
    }
}
