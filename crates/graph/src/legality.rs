//! Legality (executability) checks for MLDGs.
//!
//! The paper calls an MLDG *legal* "if there is no outmost loop-carried
//! dependence vector reverse to the computational flow, i.e., the nested
//! loop is executable" (Section 2.2). For a graph extracted from a real
//! program this holds by construction; for hand-built or generated graphs we
//! verify it structurally:
//!
//! 1. every loop dependence vector has a non-negative first coordinate
//!    (a value cannot be consumed in an *earlier* outer iteration than the
//!    one producing it), and
//! 2. the subgraph of edges whose minimal vector has first coordinate zero
//!    (dependencies within a single outer iteration) is acyclic — its
//!    topological order is the textual order in which the candidate loops
//!    can appear.
//!
//! These two conditions imply the paper's Lemma 2.1 consequence that every
//! cycle weight is lexicographically positive (each cycle then contains at
//! least one edge with `δ_L[1] >= 1` and no edge with `δ_L[1] < 0`), which
//! in turn is what Theorem 3.2 needs for LLOFRA to be feasible.

use crate::cycles::{elementary_cycles, topological_order};
use crate::mldg::{EdgeId, Mldg, NodeId};
use crate::vec2::IVec2;

/// Why an MLDG is not executable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutabilityError {
    /// A dependence vector has a negative outer-loop distance: data would be
    /// consumed before it is produced no matter how the loops are ordered.
    NegativeOuterDistance {
        /// Offending edge.
        edge: EdgeId,
        /// Offending vector.
        vector: IVec2,
    },
    /// The zero-outer-distance subgraph contains a cycle: within one outer
    /// iteration, each loop in the cycle must precede the others.
    SameIterationCycle {
        /// Nodes of one strongly connected component of the subgraph.
        nodes: Vec<NodeId>,
    },
}

impl std::fmt::Display for ExecutabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutabilityError::NegativeOuterDistance { edge, vector } => write!(
                f,
                "edge {edge:?} carries dependence vector {vector} with negative outer distance"
            ),
            ExecutabilityError::SameIterationCycle { nodes } => write!(
                f,
                "loops {nodes:?} form a dependence cycle within a single outer iteration"
            ),
        }
    }
}

impl std::error::Error for ExecutabilityError {}

/// Checks the two executability conditions; `Ok(())` means the MLDG
/// corresponds to a runnable program and is "legal" in the paper's sense.
pub fn check_executable(g: &Mldg) -> Result<(), ExecutabilityError> {
    for e in g.edge_ids() {
        for v in g.deps(e).iter() {
            if v.x < 0 {
                return Err(ExecutabilityError::NegativeOuterDistance { edge: e, vector: v });
            }
        }
    }
    match textual_order(g) {
        Some(_) => Ok(()),
        None => {
            // Identify one offending same-iteration cycle for the report.
            let sub = zero_distance_subgraph(g);
            let comp = crate::cycles::strongly_connected_components(&sub)
                .into_iter()
                .find(|c| c.len() > 1 || has_self_loop(&sub, c[0]))
                .unwrap_or_default();
            Err(ExecutabilityError::SameIterationCycle { nodes: comp })
        }
    }
}

fn has_self_loop(g: &Mldg, n: NodeId) -> bool {
    g.edge_between(n, n).is_some()
}

/// The subgraph containing only edges whose *minimal* dependence vector has
/// first coordinate zero (same-outer-iteration dependencies). Node ids are
/// preserved.
pub fn zero_distance_subgraph(g: &Mldg) -> Mldg {
    let mut sub = Mldg::new();
    for n in g.node_ids() {
        sub.add_node(g.label(n).to_string());
    }
    for e in g.edge_ids() {
        if g.delta(e).x == 0 {
            let d = g.edge(e);
            sub.add_dep(d.src, d.dst, g.delta(e));
        }
    }
    sub
}

/// A textual order for the candidate loops: a topological order of the
/// zero-distance subgraph, i.e. an order in which the loops can be written
/// so that every same-iteration dependence flows forward. `None` when no
/// such order exists (the graph is not executable).
pub fn textual_order(g: &Mldg) -> Option<Vec<NodeId>> {
    topological_order(&zero_distance_subgraph(g))
}

/// Summary of cycle weights, produced by bounded enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleWeightReport {
    /// Number of elementary cycles inspected.
    pub cycles_inspected: usize,
    /// Whether the enumeration hit the cap (results then cover a subset).
    pub truncated: bool,
    /// Lexicographically minimal cycle weight seen (`None` for acyclic).
    pub min_weight: Option<IVec2>,
    /// `δ_L(c) >= (1,-1)` for every inspected cycle (the paper's Lemma 2.1).
    pub all_at_least_one_neg_one: bool,
    /// `δ_L(c) >= (0,0)` for every inspected cycle — the Theorem 2.3 / 4.4
    /// hypothesis under which LLOFRA (and hence hyperplane fusion) is
    /// feasible. Note Figure 14 contains a cycle of weight exactly `(0,0)`,
    /// so the hypothesis cannot be strict positivity.
    pub all_lex_nonnegative: bool,
    /// `δ_L(c) > (0,0)` for every inspected cycle.
    pub all_lex_positive: bool,
}

/// Inspects up to `cap` elementary cycles and summarizes their weights.
pub fn cycle_weight_report(g: &Mldg, cap: usize) -> CycleWeightReport {
    let (cycles, truncated) = elementary_cycles(g, cap);
    let mut min_weight: Option<IVec2> = None;
    for c in &cycles {
        let w = g.delta_sum(&c.edges);
        min_weight = Some(match min_weight {
            Some(m) => m.min(w),
            None => w,
        });
    }
    CycleWeightReport {
        cycles_inspected: cycles.len(),
        truncated,
        min_weight,
        all_at_least_one_neg_one: min_weight.is_none_or(|m| m >= IVec2::ONE_NEG_ONE),
        all_lex_nonnegative: min_weight.is_none_or(|m| m >= IVec2::ZERO),
        all_lex_positive: min_weight.is_none_or(|m| m > IVec2::ZERO),
    }
}

/// Theorem 3.1: straightforward fusion (no retiming) is legal iff every edge
/// weight is lexicographically non-negative. Returns the offending edges
/// (the *fusion-preventing* dependencies); fusion is directly legal when the
/// result is empty.
pub fn fusion_preventing_edges(g: &Mldg) -> Vec<EdgeId> {
    g.edge_ids().filter(|&e| g.delta(e) < IVec2::ZERO).collect()
}

/// `true` when direct fusion (without retiming) is legal per Theorem 3.1.
pub fn direct_fusion_legal(g: &Mldg) -> bool {
    fusion_preventing_edges(g).is_empty()
}

/// Property 4.2 as a predicate on a (possibly retimed) graph: the fused
/// innermost loop is DOALL iff every dependence vector `d` of every edge
/// satisfies `d >= (1,-1)` or `d == (0,0)`.
pub fn fused_inner_loop_is_doall(g: &Mldg) -> bool {
    g.edge_ids().all(|e| {
        g.deps(e)
            .iter()
            .all(|d| d.is_doall_safe() || d == IVec2::ZERO)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::v2;

    fn figure2() -> Mldg {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        let d = g.add_node("D");
        g.add_deps(a, b, [v2(1, 1), v2(2, 1)]);
        g.add_deps(b, c, [v2(0, -2), v2(0, 1)]);
        g.add_deps(c, d, [v2(0, -1)]);
        g.add_deps(a, c, [v2(0, 1)]);
        g.add_deps(d, a, [v2(2, 1)]);
        g.add_deps(c, c, [v2(1, 0)]);
        g
    }

    #[test]
    fn figure2_is_executable() {
        assert_eq!(check_executable(&figure2()), Ok(()));
    }

    #[test]
    fn figure2_textual_order_is_a_b_c_d_compatible() {
        let g = figure2();
        let order = textual_order(&g).unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let (a, b, c, d) = (
            g.node_by_label("A").unwrap(),
            g.node_by_label("B").unwrap(),
            g.node_by_label("C").unwrap(),
            g.node_by_label("D").unwrap(),
        );
        // Same-iteration dependencies B->C, C->D, A->C must flow forward.
        assert!(pos[&b] < pos[&c]);
        assert!(pos[&c] < pos[&d]);
        assert!(pos[&a] < pos[&c]);
    }

    #[test]
    fn negative_outer_distance_detected() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let e = g.add_dep(a, b, (-1, 0));
        assert_eq!(
            check_executable(&g),
            Err(ExecutabilityError::NegativeOuterDistance {
                edge: e,
                vector: v2(-1, 0)
            })
        );
    }

    #[test]
    fn same_iteration_cycle_detected() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, 1));
        g.add_dep(b, a, (0, 1));
        match check_executable(&g) {
            Err(ExecutabilityError::SameIterationCycle { nodes }) => {
                assert_eq!(nodes.len(), 2)
            }
            other => panic!("expected SameIterationCycle, got {other:?}"),
        }
    }

    #[test]
    fn same_iteration_self_loop_detected() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        g.add_dep(a, a, (0, 1));
        assert!(matches!(
            check_executable(&g),
            Err(ExecutabilityError::SameIterationCycle { .. })
        ));
    }

    #[test]
    fn outer_carried_self_loop_is_fine() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        g.add_dep(a, a, (1, 0)); // like C->C in Figure 2
        assert_eq!(check_executable(&g), Ok(()));
    }

    #[test]
    fn figure2_cycle_report_matches_lemma_2_1() {
        let report = cycle_weight_report(&figure2(), 1000);
        assert!(!report.truncated);
        assert_eq!(report.cycles_inspected, 3);
        assert_eq!(report.min_weight, Some(v2(1, 0)));
        assert!(report.all_at_least_one_neg_one);
        assert!(report.all_lex_positive);
    }

    #[test]
    fn fusion_preventing_edges_of_figure2() {
        let g = figure2();
        let fp = fusion_preventing_edges(&g);
        // (0,-2) on B->C and (0,-1) on C->D are fusion-preventing.
        assert_eq!(fp.len(), 2);
        assert!(!direct_fusion_legal(&g));
    }

    #[test]
    fn doall_predicate() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_deps(a, b, [v2(1, -1), v2(2, 5)]);
        g.add_dep(b, b, (1, 0));
        assert!(fused_inner_loop_is_doall(&g));
        g.add_dep(a, b, (0, 2)); // serializing inner dependence
        assert!(!fused_inner_loop_is_doall(&g));
    }

    #[test]
    fn hard_edge_classification() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        // Two vectors with the same outer distance but different inner
        // distances make the edge hard (Definition 4.1); retiming moves
        // both by the same amount, so their y-gap is un-closable.
        let hard = g.add_deps(a, b, [v2(1, 0), v2(1, 3)]);
        assert!(g.is_hard(hard));
        // Distinct outer distances: not hard, even with differing y.
        let soft = g.add_deps(b, a, [v2(1, 2), v2(2, -1)]);
        assert!(!g.is_hard(soft));
        // A single vector can never be hard.
        let single = g.add_dep(a, a, (1, 5));
        assert!(!g.is_hard(single));
        // Duplicate-free sets with equal (x, y) pairs collapse, so equal
        // vectors do not spuriously classify as hard.
        let dup = g.add_deps(b, b, [v2(2, 2), v2(2, 2)]);
        assert!(!g.is_hard(dup));
    }

    #[test]
    fn empty_graph_is_trivially_legal() {
        let g = Mldg::new();
        assert_eq!(check_executable(&g), Ok(()));
        assert!(direct_fusion_legal(&g));
        assert!(fused_inner_loop_is_doall(&g));
        assert_eq!(textual_order(&g), Some(vec![]));
        let r = cycle_weight_report(&g, 10);
        assert_eq!(r.cycles_inspected, 0);
        assert_eq!(r.min_weight, None);
    }

    #[test]
    fn self_loop_edges_in_legality_predicates() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        g.add_dep(a, a, (1, 0));
        // An outer-carried self-loop is executable, fusable, and DOALL.
        assert_eq!(check_executable(&g), Ok(()));
        assert!(direct_fusion_legal(&g));
        assert!(fused_inner_loop_is_doall(&g));

        // A lex-negative self-loop is fusion-preventing and shows up in
        // the cycle report as an infeasible cycle weight.
        let mut h = Mldg::new();
        let b = h.add_node("B");
        let e = h.add_dep(b, b, (0, -1));
        assert_eq!(fusion_preventing_edges(&h), vec![e]);
        let r = cycle_weight_report(&h, 10);
        assert_eq!(r.min_weight, Some(v2(0, -1)));
        assert!(!r.all_lex_nonnegative);
    }

    #[test]
    fn doall_predicate_boundary_vectors() {
        // Property 4.2 boundary: (0,0) is safe (same fused iteration,
        // serialized by body order), (1,-1) and (1,0) are safe (outer-
        // carried), while (0,±1) serialize the inner loop.
        for (d, safe) in [
            (v2(0, 0), true),
            (v2(1, -1), true),
            (v2(1, 0), true),
            (v2(0, 1), false),
            (v2(0, -1), false),
        ] {
            let mut g = Mldg::new();
            let a = g.add_node("A");
            let b = g.add_node("B");
            g.add_dep(a, b, (d.x, d.y));
            assert_eq!(fused_inner_loop_is_doall(&g), safe, "vector {d}");
        }
    }

    #[test]
    fn acyclic_cycle_report() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, (0, -3));
        let r = cycle_weight_report(&g, 10);
        assert_eq!(r.cycles_inspected, 0);
        assert_eq!(r.min_weight, None);
        assert!(r.all_lex_positive);
    }
}
