//! The unified error taxonomy for the fusion pipeline.
//!
//! Every fallible stage — text/DSL parsing, constraint solving, planning,
//! simulation — reports failures as an [`MdfError`], so callers (most
//! importantly the CLI, which maps variants onto process exit codes) can
//! classify outcomes without string matching. Infeasibility carries a
//! machine-checkable *witness*: the negative-weight cycle (as MLDG edge
//! ids plus node labels) whose weight proves no legal retiming exists.

use std::fmt;

use crate::mldg::EdgeId;
use crate::vec2::IVec2;

/// Which solving phase produced an infeasibility witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InfeasiblePhase {
    /// The lexicographic 2-D system of LLOFRA / Algorithm 3 (Theorem 3.2).
    Lex,
    /// Phase one of Algorithm 4: the scalar outer (`x`) system with the
    /// hard-edge discount.
    OuterX,
    /// Phase two of Algorithm 4: the scalar inner (`y`) alignment system.
    InnerY,
}

impl fmt::Display for InfeasiblePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfeasiblePhase::Lex => write!(f, "lexicographic 2-D phase"),
            InfeasiblePhase::OuterX => write!(f, "outer x phase"),
            InfeasiblePhase::InnerY => write!(f, "inner y phase"),
        }
    }
}

/// The weight of an infeasibility witness cycle: lexicographic for the 2-D
/// systems, scalar for the per-axis phases of Algorithm 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WitnessWeight {
    /// A 2-D lexicographic cycle weight.
    Lex(IVec2),
    /// A scalar (single-axis) cycle weight.
    Scalar(i64),
}

impl fmt::Display for WitnessWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessWeight::Lex(w) => write!(f, "{w}"),
            WitnessWeight::Scalar(w) => write!(f, "{w}"),
        }
    }
}

/// The resource classes a [`crate::budget::Budget`] can bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetResource {
    /// MLDG node count.
    Nodes,
    /// MLDG edge count.
    Edges,
    /// Bellman–Ford relaxation rounds across all constraint solves.
    SolverRounds,
    /// Simulated statement instances.
    Iterations,
    /// Simulated memory cells.
    MemoryCells,
    /// Wall-clock time (limits and usage reported in milliseconds).
    WallClockMs,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Nodes => write!(f, "nodes"),
            BudgetResource::Edges => write!(f, "edges"),
            BudgetResource::SolverRounds => write!(f, "solver rounds"),
            BudgetResource::Iterations => write!(f, "simulated iterations"),
            BudgetResource::MemoryCells => write!(f, "memory cells"),
            BudgetResource::WallClockMs => write!(f, "wall-clock ms"),
        }
    }
}

/// The pipeline-wide error type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MdfError {
    /// Malformed textual input (MLDG text format or the loop DSL), with
    /// the 1-based source location of the offending token.
    Parse {
        /// 1-based source line.
        line: usize,
        /// 1-based column of the offending token (0 when unknown).
        col: usize,
        /// Human-readable description.
        message: String,
    },
    /// Structurally well-formed input that violates a semantic rule
    /// (duplicate labels, undeclared arrays, empty dependence sets, ...).
    Invalid {
        /// Human-readable description.
        message: String,
    },
    /// No legal retiming exists; carries the negative-cycle witness.
    Infeasible {
        /// Which solving phase detected the witness.
        phase: InfeasiblePhase,
        /// The MLDG edges of the witness cycle, in traversal order.
        /// Empty when the phase's constraints do not map 1:1 onto MLDG
        /// edges (the `InnerY` equality system).
        cycle: Vec<EdgeId>,
        /// Labels of the nodes on the witness cycle, in traversal order.
        nodes: Vec<String>,
        /// The (negative) cycle weight proving infeasibility.
        weight: WitnessWeight,
    },
    /// An algorithm requiring an acyclic 2LDG was given a cyclic one.
    NotAcyclic,
    /// A resource budget was exhausted before the stage finished.
    BudgetExceeded {
        /// Which resource ran out.
        resource: BudgetResource,
        /// The configured limit.
        limit: u64,
        /// Usage at the moment the limit tripped.
        used: u64,
    },
    /// A simulation step failed (worker panic, serialized inner loop, or
    /// a differential mismatch), with the iteration coordinates.
    Exec {
        /// Outer (fused) iteration index of the failing step.
        fi: i64,
        /// Inner iteration index of the failing step.
        fj: i64,
        /// Human-readable description.
        message: String,
    },
}

impl MdfError {
    /// Builds a parse error at `line:col`.
    pub fn parse(line: usize, col: usize, message: impl Into<String>) -> Self {
        MdfError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    /// Builds a semantic-validity error.
    pub fn invalid(message: impl Into<String>) -> Self {
        MdfError::Invalid {
            message: message.into(),
        }
    }

    /// Builds an execution error at fused iteration `(fi, fj)`.
    pub fn exec(fi: i64, fj: i64, message: impl Into<String>) -> Self {
        MdfError::Exec {
            fi,
            fj,
            message: message.into(),
        }
    }
}

impl fmt::Display for MdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdfError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            MdfError::Invalid { message } => write!(f, "invalid input: {message}"),
            MdfError::Infeasible {
                phase,
                nodes,
                weight,
                ..
            } => {
                write!(f, "fusion infeasible ({phase}): ")?;
                if nodes.is_empty() {
                    write!(f, "a cycle has negative weight {weight}")
                } else {
                    write!(
                        f,
                        "cycle {} -> {} has negative weight {weight}",
                        nodes.join(" -> "),
                        nodes[0]
                    )
                }
            }
            MdfError::NotAcyclic => write!(f, "algorithm requires an acyclic 2LDG"),
            MdfError::BudgetExceeded {
                resource,
                limit,
                used,
            } => write!(
                f,
                "budget exceeded: {resource} limit is {limit}, needed {used}"
            ),
            MdfError::Exec { fi, fj, message } => {
                write!(f, "execution error at iteration ({fi},{fj}): {message}")
            }
        }
    }
}

impl std::error::Error for MdfError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::v2;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            MdfError::parse(3, 7, "bad token").to_string(),
            "parse error at 3:7: bad token"
        );
        assert_eq!(
            MdfError::invalid("duplicate node").to_string(),
            "invalid input: duplicate node"
        );
        let inf = MdfError::Infeasible {
            phase: InfeasiblePhase::Lex,
            cycle: vec![EdgeId(0), EdgeId(1)],
            nodes: vec!["A".into(), "B".into()],
            weight: WitnessWeight::Lex(v2(0, -1)),
        };
        assert_eq!(
            inf.to_string(),
            "fusion infeasible (lexicographic 2-D phase): cycle A -> B -> A has negative weight (0,-1)"
        );
        assert_eq!(
            MdfError::BudgetExceeded {
                resource: BudgetResource::SolverRounds,
                limit: 10,
                used: 11,
            }
            .to_string(),
            "budget exceeded: solver rounds limit is 10, needed 11"
        );
        assert_eq!(
            MdfError::exec(2, -1, "worker panicked").to_string(),
            "execution error at iteration (2,-1): worker panicked"
        );
        assert_eq!(
            MdfError::NotAcyclic.to_string(),
            "algorithm requires an acyclic 2LDG"
        );
    }

    #[test]
    fn witness_with_no_nodes_still_displays() {
        let inf = MdfError::Infeasible {
            phase: InfeasiblePhase::InnerY,
            cycle: vec![],
            nodes: vec![],
            weight: WitnessWeight::Scalar(-2),
        };
        assert_eq!(
            inf.to_string(),
            "fusion infeasible (inner y phase): a cycle has negative weight -2"
        );
    }
}
