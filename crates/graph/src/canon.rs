//! Canonical MLDG form and fingerprint.
//!
//! The service layer's plan cache keys entries by a digest of the client's
//! graph. Two textually different submissions of the *same* graph — nodes
//! or edges declared in a different order — must map to the same key, or
//! repeat traffic misses the cache; worse, an order-*sensitive* key would
//! resurrect the PR 2 class of bugs where graph-indexed artifacts were
//! applied to textually-permuted realizations. So the digest is computed
//! over a *canonical form*: node labels sorted, edges sorted by endpoint
//! labels, dependence vectors in each set already sorted by construction
//! ([`crate::mldg::DepSet`] keeps ascending lexicographic order).
//!
//! The fingerprint identifies graphs up to **label-preserving
//! isomorphism**: declaration order never matters, label renamings always
//! do. A 64-bit hash can collide; consumers that cache derived artifacts
//! (e.g. retimings) must therefore *revalidate* the artifact against the
//! requesting graph on every hit — `mdf-core`'s `verify_plan` makes any
//! legal plan a correct plan, so a collision can cost a replan, never a
//! wrong answer.

use std::fmt::Write as _;

use crate::mldg::Mldg;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Renders `g` in a canonical text form: declaration-order independent,
/// newline-separated, stable across processes.
///
/// Nodes are listed by sorted label; edges by sorted
/// `(src label, dst label)` with their full dependence set (which
/// [`crate::mldg::DepSet`] already keeps in ascending lexicographic
/// order). Duplicate node labels (impossible via the text formats, which
/// reject them, but representable programmatically) are kept and sorted
/// together, so the rendering stays deterministic for every `Mldg`.
pub fn canonical_form(g: &Mldg) -> String {
    let mut labels: Vec<&str> = g.node_ids().map(|n| g.label(n)).collect();
    labels.sort_unstable();
    let mut out = String::new();
    for l in &labels {
        let _ = writeln!(out, "node {l}");
    }
    let mut edges: Vec<String> = g
        .edge_ids()
        .map(|e| {
            let d = g.edge(e);
            let mut line = format!("edge {} -> {} :", g.label(d.src), g.label(d.dst));
            for v in g.deps(e).iter() {
                let _ = write!(line, " {v}");
            }
            line
        })
        .collect();
    edges.sort_unstable();
    for e in &edges {
        out.push_str(e);
        out.push('\n');
    }
    out
}

/// A 64-bit FNV-1a digest of [`canonical_form`]: the plan-cache key.
///
/// Stable under node/edge declaration order by construction; see the
/// module docs for the collision contract.
pub fn canonical_fingerprint(g: &Mldg) -> u64 {
    fnv1a(FNV_OFFSET, canonical_form(g).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{figure14, figure2, figure8};
    use crate::textfmt;
    use crate::vec2::v2;

    /// Rebuilds `g` with nodes declared in the order given by `perm`
    /// (indices into the original node order) and edges declared in
    /// reverse, with each edge's dependence vectors fed in reverse too.
    fn permuted(g: &Mldg, perm: &[usize]) -> Mldg {
        let ids: Vec<_> = g.node_ids().collect();
        let mut h = Mldg::new();
        let mut map = std::collections::HashMap::new();
        for &i in perm {
            map.insert(ids[i], h.add_node(g.label(ids[i])));
        }
        let mut edges: Vec<_> = g.edge_ids().collect();
        edges.reverse();
        for e in edges {
            let d = g.edge(e);
            let mut vs: Vec<_> = g.deps(e).iter().collect();
            vs.reverse();
            h.add_deps(map[&d.src], map[&d.dst], vs);
        }
        h
    }

    #[test]
    fn fingerprint_is_permutation_invariant() {
        for g in [figure2(), figure8(), figure14()] {
            let n = g.node_count();
            let fp = canonical_fingerprint(&g);
            // Reversed order, rotated order, and identity.
            let mut perms: Vec<Vec<usize>> = vec![
                (0..n).collect(),
                (0..n).rev().collect(),
                (0..n).map(|i| (i + 1) % n).collect(),
            ];
            // A pairwise swap for good measure.
            if n >= 2 {
                let mut p: Vec<usize> = (0..n).collect();
                p.swap(0, n - 1);
                perms.push(p);
            }
            for perm in perms {
                let h = permuted(&g, &perm);
                assert_eq!(
                    canonical_fingerprint(&h),
                    fp,
                    "declaration order changed the fingerprint (perm {perm:?})"
                );
                assert_eq!(canonical_form(&h), canonical_form(&g));
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_under_textfmt_round_trip() {
        let g = figure2();
        let (g2, _) = textfmt::parse(&textfmt::to_text(&g, "fig2")).unwrap();
        assert_eq!(canonical_fingerprint(&g2), canonical_fingerprint(&g));
    }

    #[test]
    fn different_graphs_get_different_fingerprints() {
        assert_ne!(
            canonical_fingerprint(&figure2()),
            canonical_fingerprint(&figure8())
        );
        // A changed dependence vector changes the key.
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, v2(1, 0));
        let mut h = Mldg::new();
        let a2 = h.add_node("A");
        let b2 = h.add_node("B");
        h.add_dep(a2, b2, v2(1, 1));
        assert_ne!(canonical_fingerprint(&g), canonical_fingerprint(&h));
        // Label renamings matter: the fingerprint is not graph-shape-only.
        let mut r = Mldg::new();
        let x = r.add_node("X");
        let y = r.add_node("B");
        r.add_dep(x, y, v2(1, 0));
        assert_ne!(canonical_fingerprint(&g), canonical_fingerprint(&r));
    }

    #[test]
    fn merged_edge_declarations_do_not_change_the_key() {
        // One edge line with two vectors vs two edge lines merging into
        // the same dependence set.
        let (g, _) = textfmt::parse("mldg m\nnode A\nnode B\nedge A -> B : (1,0) (0,1)").unwrap();
        let (h, _) =
            textfmt::parse("mldg m\nnode B\nnode A\nedge A -> B : (0,1)\nedge A -> B : (1,0)")
                .unwrap();
        assert_eq!(canonical_fingerprint(&g), canonical_fingerprint(&h));
    }
}
