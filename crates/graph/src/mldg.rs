//! The multi-dimensional loop dependence graph (MLDG) of Definition 2.2.
//!
//! An MLDG `G = (V, E, δ_L, D_L)` models a nested loop whose body is a
//! sequence of innermost DOALL loops:
//!
//! * each node represents one innermost loop nest,
//! * there is at most one edge `a -> b` whenever loop `b` consumes one or
//!   more values produced by loop `a`,
//! * `D_L(a, b)` is the *set* of loop dependence vectors between `a` and `b`
//!   (Definition 2.1), and
//! * `δ_L(e)` is the lexicographically minimal vector of that set.
//!
//! An edge is a *parallelism hard edge* ("hard edge", Section 2.2) when two
//! of its dependence vectors agree on the first coordinate but differ on the
//! second; hard edges constrain the fully-parallel fusion of cyclic graphs
//! (Algorithm 4).

use std::collections::HashMap;
use std::fmt;

use crate::vec2::IVec2;

/// Identifier of a node (an innermost loop) within one [`Mldg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifier of an edge within one [`Mldg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node's position in [`Mldg::nodes`] iteration order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge's position in [`Mldg::edges`] iteration order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of loop dependence vectors `D_L(a, b)`, kept sorted in ascending
/// lexicographic order with duplicates removed.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct DepSet {
    vecs: Vec<IVec2>,
}

impl DepSet {
    /// An empty set.
    pub fn new() -> Self {
        DepSet { vecs: Vec::new() }
    }

    /// Builds a set from arbitrary vectors (sorted + deduplicated).
    pub fn from_vecs<I: IntoIterator<Item = IVec2>>(iter: I) -> Self {
        let mut s = DepSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Inserts a vector, keeping the set sorted; returns `true` if it was
    /// not already present.
    pub fn insert(&mut self, v: IVec2) -> bool {
        match self.vecs.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.vecs.insert(pos, v);
                true
            }
        }
    }

    /// The lexicographically minimal vector `δ_L` of the set; panics when
    /// the set is empty (an MLDG edge always carries at least one vector).
    #[inline]
    pub fn min_vector(&self) -> IVec2 {
        self.vecs[0]
    }

    /// The lexicographically maximal vector of the set.
    // A `DepSet` is non-empty by construction, so `last()` always succeeds.
    #[allow(clippy::expect_used)]
    #[inline]
    pub fn max_vector(&self) -> IVec2 {
        *self.vecs.last().expect("DepSet must be non-empty")
    }

    /// `true` when two vectors agree on the first coordinate but differ on
    /// the second — the hard-edge criterion of Section 2.2.
    pub fn is_hard(&self) -> bool {
        self.vecs
            .windows(2)
            .any(|w| w[0].x == w[1].x && w[0].y != w[1].y)
    }

    /// Number of vectors in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    /// `true` when the set holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vecs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: IVec2) -> bool {
        self.vecs.binary_search(&v).is_ok()
    }

    /// Iterates the vectors in ascending lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = IVec2> + '_ {
        self.vecs.iter().copied()
    }

    /// Returns a new set with every vector shifted by `offset` — the effect
    /// of retiming on `D_L`: `D_Lr(u,v) = { d + r(u) - r(v) : d ∈ D_L }`.
    pub fn shifted(&self, offset: IVec2) -> DepSet {
        // Adding a constant preserves lexicographic order, so the vector
        // stays sorted and deduplicated.
        DepSet {
            vecs: self.vecs.iter().map(|&v| v + offset).collect(),
        }
    }

    /// Borrow the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[IVec2] {
        &self.vecs
    }
}

impl fmt::Debug for DepSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.vecs.iter()).finish()
    }
}

impl FromIterator<IVec2> for DepSet {
    fn from_iter<I: IntoIterator<Item = IVec2>>(iter: I) -> Self {
        DepSet::from_vecs(iter)
    }
}

/// Per-node payload.
#[derive(Clone, Debug)]
pub struct NodeData {
    /// Human-readable loop label (`"A"`, `"B"`, ... in the paper's figures).
    pub label: String,
}

/// Per-edge payload: endpoints plus the dependence-vector set.
#[derive(Clone, Debug)]
pub struct EdgeData {
    /// Producer loop.
    pub src: NodeId,
    /// Consumer loop.
    pub dst: NodeId,
    /// All loop dependence vectors between the two loops.
    pub deps: DepSet,
}

/// A two-dimensional MLDG (the paper's "2LDG").
///
/// The graph is stored as index-based adjacency lists; node and edge ids are
/// dense and stable, which keeps the Bellman–Ford-based algorithms free of
/// hashing in their hot loops.
///
/// ```
/// use mdf_graph::{Mldg, v2};
///
/// let mut g = Mldg::new();
/// let a = g.add_node("A");
/// let b = g.add_node("B");
/// // Two dependence vectors between the same loops merge into one edge.
/// let e = g.add_deps(a, b, [v2(0, -2), v2(0, 1)]);
/// assert_eq!(g.delta(e), v2(0, -2)); // the lexicographic minimum
/// assert!(g.is_hard(e));             // same x, different y
/// ```
#[derive(Clone, Default)]
pub struct Mldg {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    by_endpoints: HashMap<(NodeId, NodeId), EdgeId>,
    by_label: HashMap<String, NodeId>,
}

impl Mldg {
    /// An empty graph.
    pub fn new() -> Self {
        Mldg::default()
    }

    /// Adds a node with the given label and returns its id.
    ///
    /// # Panics
    /// Panics if the label is already in use: the textual formats and the
    /// paper's figures identify loops by label, so duplicates would be
    /// ambiguous.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let label = label.into();
        let id = NodeId(self.nodes.len() as u32);
        assert!(
            self.by_label.insert(label.clone(), id).is_none(),
            "duplicate node label {label:?}"
        );
        self.nodes.push(NodeData { label });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Records one loop dependence vector from `src` to `dst`, creating the
    /// edge if needed and merging into its `D_L` set otherwise. Returns the
    /// edge id.
    pub fn add_dep(&mut self, src: NodeId, dst: NodeId, d: impl Into<IVec2>) -> EdgeId {
        let d = d.into();
        match self.by_endpoints.get(&(src, dst)) {
            Some(&e) => {
                self.edges[e.index()].deps.insert(d);
                e
            }
            None => {
                let e = EdgeId(self.edges.len() as u32);
                self.edges.push(EdgeData {
                    src,
                    dst,
                    deps: DepSet::from_vecs([d]),
                });
                self.out_edges[src.index()].push(e);
                self.in_edges[dst.index()].push(e);
                self.by_endpoints.insert((src, dst), e);
                e
            }
        }
    }

    /// Records several dependence vectors at once.
    // Documented precondition: at least one vector must be supplied.
    #[allow(clippy::expect_used)]
    pub fn add_deps<I>(&mut self, src: NodeId, dst: NodeId, ds: I) -> EdgeId
    where
        I: IntoIterator,
        I::Item: Into<IVec2>,
    {
        let mut last = None;
        for d in ds {
            last = Some(self.add_dep(src, dst, d));
        }
        last.expect("add_deps requires at least one vector")
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + 'static {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// Edge payload.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.index()]
    }

    /// The node's label.
    #[inline]
    pub fn label(&self, n: NodeId) -> &str {
        &self.nodes[n.index()].label
    }

    /// Looks a node up by label.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.by_label.get(label).copied()
    }

    /// The edge between two nodes, if present.
    pub fn edge_between(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.by_endpoints.get(&(src, dst)).copied()
    }

    /// `δ_L(e)`: the minimal loop dependence vector of the edge.
    #[inline]
    pub fn delta(&self, e: EdgeId) -> IVec2 {
        self.edges[e.index()].deps.min_vector()
    }

    /// The full dependence set `D_L` of the edge.
    #[inline]
    pub fn deps(&self, e: EdgeId) -> &DepSet {
        &self.edges[e.index()].deps
    }

    /// `true` iff the edge is a parallelism hard edge.
    #[inline]
    pub fn is_hard(&self, e: EdgeId) -> bool {
        self.edges[e.index()].deps.is_hard()
    }

    /// Outgoing edge ids of a node.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_edges[n.index()]
    }

    /// Incoming edge ids of a node.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_edges[n.index()]
    }

    /// `true` when the graph has a `u -> u` self-dependence edge anywhere.
    pub fn has_self_loops(&self) -> bool {
        self.edges.iter().any(|e| e.src == e.dst)
    }

    /// Total number of dependence vectors across all edges.
    pub fn total_dep_vectors(&self) -> usize {
        self.edges.iter().map(|e| e.deps.len()).sum()
    }

    /// Returns a copy of the graph whose dependence sets have been rewritten
    /// by `f(edge_id, old_set) -> new_set`. Structure (nodes, edge
    /// endpoints) is preserved. This is the primitive on which
    /// `mdf-retime::apply` builds.
    pub fn map_deps(&self, mut f: impl FnMut(EdgeId, &DepSet) -> DepSet) -> Mldg {
        let mut g = self.clone();
        for (i, e) in g.edges.iter_mut().enumerate() {
            e.deps = f(EdgeId(i as u32), &self.edges[i].deps);
            assert!(!e.deps.is_empty(), "map_deps produced an empty DepSet");
        }
        g
    }

    /// Sum of `δ_L` over an edge-id path or cycle (the paper's `δ_L(c)`).
    pub fn delta_sum(&self, path: &[EdgeId]) -> IVec2 {
        path.iter().fold(IVec2::ZERO, |acc, &e| acc + self.delta(e))
    }
}

impl fmt::Debug for Mldg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mldg {{")?;
        for n in self.node_ids() {
            writeln!(f, "  node {} = {:?}", n.0, self.label(n))?;
        }
        for e in self.edge_ids() {
            let d = self.edge(e);
            writeln!(
                f,
                "  edge {} -> {} : {:?}{}",
                self.label(d.src),
                self.label(d.dst),
                d.deps,
                if d.deps.is_hard() { " (hard)" } else { "" }
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::v2;

    /// Builds the 2LDG of the paper's Figure 2.
    pub(crate) fn figure2() -> Mldg {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        let d = g.add_node("D");
        g.add_deps(a, b, [v2(1, 1), v2(2, 1)]);
        g.add_deps(b, c, [v2(0, -2), v2(0, 1)]);
        g.add_deps(c, d, [v2(0, -1)]);
        g.add_deps(a, c, [v2(0, 1)]);
        g.add_deps(d, a, [v2(2, 1)]);
        g.add_deps(c, c, [v2(1, 0)]);
        g
    }

    #[test]
    fn figure2_structure_matches_paper() {
        let g = figure2();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 6);
        let (a, b, c, d) = (
            g.node_by_label("A").unwrap(),
            g.node_by_label("B").unwrap(),
            g.node_by_label("C").unwrap(),
            g.node_by_label("D").unwrap(),
        );
        // δ_L values quoted in Section 2.2.
        assert_eq!(g.delta(g.edge_between(a, b).unwrap()), v2(1, 1));
        assert_eq!(g.delta(g.edge_between(b, c).unwrap()), v2(0, -2));
        assert_eq!(g.delta(g.edge_between(c, d).unwrap()), v2(0, -1));
        assert_eq!(g.delta(g.edge_between(a, c).unwrap()), v2(0, 1));
        assert_eq!(g.delta(g.edge_between(d, a).unwrap()), v2(2, 1));
        assert_eq!(g.delta(g.edge_between(c, c).unwrap()), v2(1, 0));
    }

    #[test]
    fn hard_edge_detection_matches_paper() {
        let g = figure2();
        let (a, b, c) = (
            g.node_by_label("A").unwrap(),
            g.node_by_label("B").unwrap(),
            g.node_by_label("C").unwrap(),
        );
        // B -> C is hard: (0,-2) and (0,1) agree in x, differ in y.
        assert!(g.is_hard(g.edge_between(b, c).unwrap()));
        // A -> B is not: (1,1) and (2,1) have different first coordinates.
        assert!(!g.is_hard(g.edge_between(a, b).unwrap()));
    }

    #[test]
    fn dep_set_sorted_and_deduped() {
        let mut s = DepSet::new();
        assert!(s.insert(v2(0, 1)));
        assert!(s.insert(v2(0, -2)));
        assert!(!s.insert(v2(0, 1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.min_vector(), v2(0, -2));
        assert_eq!(s.max_vector(), v2(0, 1));
        assert!(s.contains(v2(0, -2)));
        assert!(!s.contains(v2(1, 0)));
    }

    #[test]
    fn dep_set_shift_preserves_order() {
        let s = DepSet::from_vecs([v2(0, -2), v2(0, 1), v2(3, 5)]);
        let t = s.shifted(v2(1, -1));
        assert_eq!(
            t.as_slice(),
            &[v2(1, -3), v2(1, 0), v2(4, 4)],
            "shift must keep ascending order"
        );
    }

    #[test]
    fn add_dep_merges_parallel_edges() {
        let mut g = Mldg::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let e1 = g.add_dep(a, b, (1, 1));
        let e2 = g.add_dep(a, b, (2, 1));
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.deps(e1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate node label")]
    fn duplicate_labels_rejected() {
        let mut g = Mldg::new();
        g.add_node("A");
        g.add_node("A");
    }

    #[test]
    fn cycle_delta_sum() {
        let g = figure2();
        let (a, b, c, d) = (
            g.node_by_label("A").unwrap(),
            g.node_by_label("B").unwrap(),
            g.node_by_label("C").unwrap(),
            g.node_by_label("D").unwrap(),
        );
        // c1 = A -> B -> C -> D -> A has δ_L(c1) = (3, -1)  (Section 2.2).
        let c1 = [
            g.edge_between(a, b).unwrap(),
            g.edge_between(b, c).unwrap(),
            g.edge_between(c, d).unwrap(),
            g.edge_between(d, a).unwrap(),
        ];
        assert_eq!(g.delta_sum(&c1), v2(3, -1));
        // c2 = A -> C -> D -> A has δ_L(c2) = (2, 1).
        let c2 = [
            g.edge_between(a, c).unwrap(),
            g.edge_between(c, d).unwrap(),
            g.edge_between(d, a).unwrap(),
        ];
        assert_eq!(g.delta_sum(&c2), v2(2, 1));
    }
}
