//! A small line-oriented text format for MLDGs, used by the `mdfuse` CLI
//! and by the experiment suite files.
//!
//! ```text
//! # comment
//! mldg fig2
//! node A
//! node B
//! edge A -> B : (1,1) (2,1)
//! edge B -> B : (1,0)
//! ```
//!
//! Whitespace is insignificant inside vector lists; every edge line carries
//! the *full* dependence set `D_L` (the minimal vector `δ_L` is derived).
//!
//! Parsing never panics: every malformed input is reported as
//! [`MdfError::Parse`] with the 1-based line and column of the offending
//! token (columns count bytes, which coincides with characters for the
//! ASCII inputs the format is made of).

use std::fmt::Write as _;

use crate::error::MdfError;
use crate::mldg::Mldg;
use crate::vec2::IVec2;

/// 1-based byte column of `sub` inside `raw`. `sub` must be a subslice of
/// `raw` (which every token here is — they are all produced by slicing the
/// current line); columns are meaningless otherwise, so we saturate.
fn col_of(raw: &str, sub: &str) -> usize {
    (sub.as_ptr() as usize).saturating_sub(raw.as_ptr() as usize) + 1
}

fn err(line: usize, raw: &str, sub: &str, message: impl Into<String>) -> MdfError {
    MdfError::parse(line, col_of(raw, sub), message)
}

/// Parses the text format; returns the graph and its declared name.
pub fn parse(input: &str) -> Result<(Mldg, String), MdfError> {
    let mut g = Mldg::new();
    let mut name = None;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "mldg" => {
                if name.is_some() {
                    return Err(err(lineno, raw, keyword, "duplicate 'mldg' header"));
                }
                if rest.is_empty() {
                    return Err(err(lineno, raw, keyword, "'mldg' requires a name"));
                }
                name = Some(rest.to_string());
            }
            "node" => {
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(err(lineno, raw, keyword, "'node' requires a single label"));
                }
                if g.node_by_label(rest).is_some() {
                    return Err(err(lineno, raw, rest, format!("duplicate node {rest:?}")));
                }
                g.add_node(rest);
            }
            "edge" => {
                let (endpoints, vecs) = rest
                    .split_once(':')
                    .ok_or_else(|| err(lineno, raw, rest, "'edge' requires ': <vectors>'"))?;
                let (src, dst) = endpoints
                    .split_once("->")
                    .ok_or_else(|| err(lineno, raw, endpoints, "'edge' requires 'SRC -> DST'"))?;
                let src_label = src.trim();
                let dst_label = dst.trim();
                let src = g.node_by_label(src_label).ok_or_else(|| {
                    err(
                        lineno,
                        raw,
                        src_label,
                        format!("unknown node {src_label:?}"),
                    )
                })?;
                let dst = g.node_by_label(dst_label).ok_or_else(|| {
                    err(
                        lineno,
                        raw,
                        dst_label,
                        format!("unknown node {dst_label:?}"),
                    )
                })?;
                let vectors = parse_vectors(vecs, lineno, raw)?;
                if vectors.is_empty() {
                    return Err(err(lineno, raw, vecs, "edge carries no dependence vectors"));
                }
                for v in vectors {
                    g.add_dep(src, dst, v);
                }
            }
            other => {
                return Err(err(
                    lineno,
                    raw,
                    other,
                    format!("unknown keyword {other:?}"),
                ))
            }
        }
    }
    let name = name.ok_or_else(|| MdfError::parse(1, 1, "missing 'mldg <name>' header"))?;
    Ok((g, name))
}

/// Parses a whitespace-separated list of `(x,y)` vectors. `raw` is the
/// full source line `s` was sliced from, for column reporting.
fn parse_vectors(s: &str, lineno: usize, raw: &str) -> Result<Vec<IVec2>, MdfError> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        if !rest.starts_with('(') {
            return Err(err(
                lineno,
                raw,
                rest,
                format!("expected '(' in vector list near {rest:?}"),
            ));
        }
        let close = rest
            .find(')')
            .ok_or_else(|| err(lineno, raw, rest, "unterminated vector"))?;
        let body = &rest[1..close];
        let (xs, ys) = body.split_once(',').ok_or_else(|| {
            err(
                lineno,
                raw,
                body,
                format!("vector {body:?} needs two components"),
            )
        })?;
        let x = xs.trim().parse::<i64>().map_err(|_| {
            err(
                lineno,
                raw,
                xs.trim(),
                format!("bad integer {:?}", xs.trim()),
            )
        })?;
        let y = ys.trim().parse::<i64>().map_err(|_| {
            err(
                lineno,
                raw,
                ys.trim(),
                format!("bad integer {:?}", ys.trim()),
            )
        })?;
        out.push(IVec2::new(x, y));
        rest = rest[close + 1..].trim_start();
    }
    Ok(out)
}

/// Serializes a graph in the text format (inverse of [`parse`]).
pub fn to_text(g: &Mldg, name: &str) -> String {
    let mut out = String::new();
    // Writes into a String are infallible; discard the Result rather than
    // unwrap so no panic path exists here at all.
    let _ = writeln!(out, "mldg {name}");
    for n in g.node_ids() {
        let _ = writeln!(out, "node {}", g.label(n));
    }
    for e in g.edge_ids() {
        let d = g.edge(e);
        let _ = write!(out, "edge {} -> {} :", g.label(d.src), g.label(d.dst));
        for v in g.deps(e).iter() {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{figure14, figure2, figure8};
    use crate::vec2::v2;

    fn parse_err(input: &str) -> (usize, usize, String) {
        match parse(input).unwrap_err() {
            MdfError::Parse { line, col, message } => (line, col, message),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn roundtrip_paper_figures() {
        for (g, name) in [
            (figure2(), "fig2"),
            (figure8(), "fig8"),
            (figure14(), "fig14"),
        ] {
            let text = to_text(&g, name);
            let (g2, name2) = parse(&text).unwrap();
            assert_eq!(name2, name);
            assert_eq!(g2.node_count(), g.node_count());
            assert_eq!(g2.edge_count(), g.edge_count());
            for e in g.edge_ids() {
                let d = g.edge(e);
                let e2 = g2.edge_between(d.src, d.dst).unwrap();
                assert_eq!(g2.deps(e2).as_slice(), g.deps(e).as_slice());
            }
        }
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let input =
            "\n# a graph\nmldg tiny  \nnode A\nnode B # consumer\n\nedge A -> B : (0, 1) (2,-3)\n";
        let (g, name) = parse(input).unwrap();
        assert_eq!(name, "tiny");
        assert_eq!(g.node_count(), 2);
        let e = g
            .edge_between(g.node_by_label("A").unwrap(), g.node_by_label("B").unwrap())
            .unwrap();
        assert_eq!(g.deps(e).as_slice(), &[v2(0, 1), v2(2, -3)]);
    }

    #[test]
    fn errors_carry_line_and_column() {
        // `Z` starts at column 11 of "edge A -> Z : (0,0)".
        let (line, col, msg) = parse_err("mldg x\nnode A\nedge A -> Z : (0,0)");
        assert_eq!((line, col), (3, 11));
        assert!(msg.contains("unknown node"), "{msg}");

        let (line, col, msg) = parse_err("mldg x\nbogus A");
        assert_eq!((line, col), (2, 1));
        assert!(msg.contains("unknown keyword"), "{msg}");

        let (line, _, msg) = parse_err("node A");
        assert_eq!(line, 1);
        assert_eq!(msg, "missing 'mldg <name>' header");

        // The unterminated vector "(0" starts at column 15.
        let (line, col, msg) = parse_err("mldg x\nnode A\nedge A -> A : (0");
        assert_eq!((line, col), (3, 15));
        assert!(msg.contains("unterminated"), "{msg}");

        let (line, _, msg) = parse_err("mldg x\nnode A\nedge A -> A :");
        assert_eq!(line, 3);
        assert!(msg.contains("no dependence"), "{msg}");
    }

    #[test]
    fn errors_display_through_mdferror() {
        let e = parse("mldg x\nbogus A").unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error at 2:1: unknown keyword \"bogus\""
        );
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse("mldg a\nmldg b").is_err());
        assert!(parse("mldg a\nnode A\nnode A").is_err());
    }

    #[test]
    fn repeated_edge_lines_merge_dependence_sets() {
        let (g, _) =
            parse("mldg m\nnode A\nnode B\nedge A -> B : (1,0)\nedge A -> B : (0,1)").unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
