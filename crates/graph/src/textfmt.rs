//! A small line-oriented text format for MLDGs, used by the `mdfuse` CLI
//! and by the experiment suite files.
//!
//! ```text
//! # comment
//! mldg fig2
//! node A
//! node B
//! edge A -> B : (1,1) (2,1)
//! edge B -> B : (1,0)
//! ```
//!
//! Whitespace is insignificant inside vector lists; every edge line carries
//! the *full* dependence set `D_L` (the minimal vector `δ_L` is derived).

use std::fmt::Write as _;

use crate::mldg::Mldg;
use crate::vec2::IVec2;

/// A parse failure with 1-based line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the text format; returns the graph and its declared name.
pub fn parse(input: &str) -> Result<(Mldg, String), ParseError> {
    let mut g = Mldg::new();
    let mut name = None;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "mldg" => {
                if name.is_some() {
                    return Err(err(lineno, "duplicate 'mldg' header"));
                }
                if rest.is_empty() {
                    return Err(err(lineno, "'mldg' requires a name"));
                }
                name = Some(rest.to_string());
            }
            "node" => {
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(err(lineno, "'node' requires a single label"));
                }
                if g.node_by_label(rest).is_some() {
                    return Err(err(lineno, format!("duplicate node {rest:?}")));
                }
                g.add_node(rest);
            }
            "edge" => {
                let (endpoints, vecs) = rest
                    .split_once(':')
                    .ok_or_else(|| err(lineno, "'edge' requires ': <vectors>'"))?;
                let (src, dst) = endpoints
                    .split_once("->")
                    .ok_or_else(|| err(lineno, "'edge' requires 'SRC -> DST'"))?;
                let src = g
                    .node_by_label(src.trim())
                    .ok_or_else(|| err(lineno, format!("unknown node {:?}", src.trim())))?;
                let dst = g
                    .node_by_label(dst.trim())
                    .ok_or_else(|| err(lineno, format!("unknown node {:?}", dst.trim())))?;
                let vectors = parse_vectors(vecs, lineno)?;
                if vectors.is_empty() {
                    return Err(err(lineno, "edge carries no dependence vectors"));
                }
                for v in vectors {
                    g.add_dep(src, dst, v);
                }
            }
            other => return Err(err(lineno, format!("unknown keyword {other:?}"))),
        }
    }
    let name = name.ok_or_else(|| err(1, "missing 'mldg <name>' header"))?;
    Ok((g, name))
}

/// Parses a whitespace-separated list of `(x,y)` vectors.
fn parse_vectors(s: &str, lineno: usize) -> Result<Vec<IVec2>, ParseError> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        if !rest.starts_with('(') {
            return Err(err(lineno, format!("expected '(' in vector list near {rest:?}")));
        }
        let close = rest
            .find(')')
            .ok_or_else(|| err(lineno, "unterminated vector"))?;
        let body = &rest[1..close];
        let (xs, ys) = body
            .split_once(',')
            .ok_or_else(|| err(lineno, format!("vector {body:?} needs two components")))?;
        let x = xs
            .trim()
            .parse::<i64>()
            .map_err(|_| err(lineno, format!("bad integer {:?}", xs.trim())))?;
        let y = ys
            .trim()
            .parse::<i64>()
            .map_err(|_| err(lineno, format!("bad integer {:?}", ys.trim())))?;
        out.push(IVec2::new(x, y));
        rest = rest[close + 1..].trim_start();
    }
    Ok(out)
}

/// Serializes a graph in the text format (inverse of [`parse`]).
pub fn to_text(g: &Mldg, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "mldg {name}").unwrap();
    for n in g.node_ids() {
        writeln!(out, "node {}", g.label(n)).unwrap();
    }
    for e in g.edge_ids() {
        let d = g.edge(e);
        write!(out, "edge {} -> {} :", g.label(d.src), g.label(d.dst)).unwrap();
        for v in g.deps(e).iter() {
            write!(out, " {v}").unwrap();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{figure14, figure2, figure8};
    use crate::vec2::v2;

    #[test]
    fn roundtrip_paper_figures() {
        for (g, name) in [
            (figure2(), "fig2"),
            (figure8(), "fig8"),
            (figure14(), "fig14"),
        ] {
            let text = to_text(&g, name);
            let (g2, name2) = parse(&text).unwrap();
            assert_eq!(name2, name);
            assert_eq!(g2.node_count(), g.node_count());
            assert_eq!(g2.edge_count(), g.edge_count());
            for e in g.edge_ids() {
                let d = g.edge(e);
                let e2 = g2.edge_between(d.src, d.dst).unwrap();
                assert_eq!(g2.deps(e2).as_slice(), g.deps(e).as_slice());
            }
        }
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let input = "\n# a graph\nmldg tiny  \nnode A\nnode B # consumer\n\nedge A -> B : (0, 1) (2,-3)\n";
        let (g, name) = parse(input).unwrap();
        assert_eq!(name, "tiny");
        assert_eq!(g.node_count(), 2);
        let e = g
            .edge_between(
                g.node_by_label("A").unwrap(),
                g.node_by_label("B").unwrap(),
            )
            .unwrap();
        assert_eq!(g.deps(e).as_slice(), &[v2(0, 1), v2(2, -3)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("mldg x\nnode A\nedge A -> Z : (0,0)").unwrap_err().line, 3);
        assert_eq!(parse("mldg x\nbogus A").unwrap_err().line, 2);
        assert_eq!(parse("node A").unwrap_err().message, "missing 'mldg <name>' header");
        assert!(parse("mldg x\nnode A\nedge A -> A : (0").unwrap_err().message.contains("unterminated"));
        assert!(parse("mldg x\nnode A\nedge A -> A :").unwrap_err().message.contains("no dependence"));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse("mldg a\nmldg b").is_err());
        assert!(parse("mldg a\nnode A\nnode A").is_err());
    }
}
