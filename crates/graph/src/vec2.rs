//! Two-dimensional integer vectors with *lexicographic* order.
//!
//! The paper's dependence vectors, retiming vectors, schedule vectors and
//! hyperplanes all live in `Z^2`. Comparisons between dependence vectors are
//! always lexicographic (Section 2.1 of the paper): `(a, b) < (x, y)` iff
//! `a < x`, or `a == x` and `b < y`. Rust's derived `Ord` on a struct compares
//! fields in declaration order, which is exactly lexicographic order for
//! `(x, y)`, so `IVec2` derives it.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A point/vector in `Z^2` ordered lexicographically.
///
/// `x` is the outermost-loop component and `y` the innermost-loop component,
/// matching the paper's `(d_L[1], d_L[2])` convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IVec2 {
    /// Outer-loop (first) component.
    pub x: i64,
    /// Inner-loop (second) component.
    pub y: i64,
}

impl IVec2 {
    /// The additive identity `(0, 0)`.
    pub const ZERO: IVec2 = IVec2 { x: 0, y: 0 };
    /// The vector `(1, -1)`, the paper's DOALL edge-weight threshold
    /// (Property 4.2).
    pub const ONE_NEG_ONE: IVec2 = IVec2 { x: 1, y: -1 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        IVec2 { x, y }
    }

    /// The dot product `self · other`, used when testing schedule vectors
    /// (`s · d > 0` for every non-zero dependence vector `d`).
    #[inline]
    pub const fn dot(self, other: IVec2) -> i64 {
        self.x * other.x + self.y * other.y
    }

    /// Component-wise minimum (NOT the lexicographic minimum).
    #[inline]
    pub fn min_components(self, other: IVec2) -> IVec2 {
        IVec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum (NOT the lexicographic maximum).
    #[inline]
    pub fn max_components(self, other: IVec2) -> IVec2 {
        IVec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// `true` iff `self` is lexicographically non-negative, i.e. `>= (0,0)`.
    ///
    /// This is the fusion-legality condition of Theorem 3.1: if every edge
    /// weight satisfies this predicate, straightforward fusion is legal.
    #[inline]
    pub fn is_lex_nonnegative(self) -> bool {
        self >= IVec2::ZERO
    }

    /// `true` iff `self` is lexicographically positive, i.e. `> (0,0)`.
    #[inline]
    pub fn is_lex_positive(self) -> bool {
        self > IVec2::ZERO
    }

    /// `true` iff this dependence vector cannot serialize the fused
    /// innermost loop, i.e. it is carried by the *outer* loop: `x >= 1`.
    ///
    /// The paper states this condition as `d >= (1,-1)` (Property 4.2), but
    /// that phrasing is loose under the lexicographic order: `(1,-999)` is
    /// lexicographically *smaller* than `(1,-1)` yet still crosses outer
    /// iterations and therefore never creates a same-row dependence. The
    /// precise content of the property is `x >= 1`, which is what we test.
    #[inline]
    pub fn is_doall_safe(self) -> bool {
        self.x >= 1
    }

    /// The vector rotated 90 degrees clockwise: `(x, y) -> (y, -x)`.
    ///
    /// Lemma 4.3 picks the DOALL hyperplane `h = (s[2], -s[1])` perpendicular
    /// to the schedule vector `s`; this helper performs that construction.
    #[inline]
    pub const fn perpendicular(self) -> IVec2 {
        IVec2::new(self.y, -self.x)
    }

    /// Multiplies each component by a scalar.
    #[inline]
    pub const fn scale(self, k: i64) -> IVec2 {
        IVec2::new(self.x * k, self.y * k)
    }

    /// Checked addition; `None` on overflow of either component.
    #[inline]
    pub fn checked_add(self, other: IVec2) -> Option<IVec2> {
        Some(IVec2::new(
            self.x.checked_add(other.x)?,
            self.y.checked_add(other.y)?,
        ))
    }

    /// The L1 norm `|x| + |y|` (useful for bounding prologue sizes).
    #[inline]
    pub fn l1_norm(self) -> i64 {
        self.x.abs() + self.y.abs()
    }

    /// Returns the lexicographic minimum of a non-empty iterator, or `None`
    /// when the iterator is empty. This is the paper's
    /// `δ_L(e) = min { v : v ∈ D_L(a,b) }`.
    pub fn lex_min<I: IntoIterator<Item = IVec2>>(iter: I) -> Option<IVec2> {
        iter.into_iter().min()
    }

    /// Returns the lexicographic maximum of a non-empty iterator, or `None`
    /// when the iterator is empty (used by Algorithm 5 to find the largest
    /// retimed dependence vector).
    pub fn lex_max<I: IntoIterator<Item = IVec2>>(iter: I) -> Option<IVec2> {
        iter.into_iter().max()
    }
}

impl fmt::Debug for IVec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for IVec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl Add for IVec2 {
    type Output = IVec2;
    #[inline]
    fn add(self, rhs: IVec2) -> IVec2 {
        IVec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for IVec2 {
    #[inline]
    fn add_assign(&mut self, rhs: IVec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for IVec2 {
    type Output = IVec2;
    #[inline]
    fn sub(self, rhs: IVec2) -> IVec2 {
        IVec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for IVec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: IVec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for IVec2 {
    type Output = IVec2;
    #[inline]
    fn neg(self) -> IVec2 {
        IVec2::new(-self.x, -self.y)
    }
}

impl Mul<i64> for IVec2 {
    type Output = IVec2;
    #[inline]
    fn mul(self, k: i64) -> IVec2 {
        self.scale(k)
    }
}

impl From<(i64, i64)> for IVec2 {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        IVec2::new(x, y)
    }
}

impl From<IVec2> for (i64, i64) {
    #[inline]
    fn from(v: IVec2) -> Self {
        (v.x, v.y)
    }
}

/// Convenience constructor mirroring the paper's `(a, b)` notation.
#[inline]
pub const fn v2(x: i64, y: i64) -> IVec2 {
    IVec2::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order_matches_paper_definition() {
        // (a,b) < (x,y) iff a < x, or a == x and b < y.
        assert!(v2(0, 5) < v2(1, -100));
        assert!(v2(1, -1) < v2(1, 0));
        assert!(v2(2, 1) > v2(1, 9999));
        assert!(v2(0, -2) < v2(0, 1));
        assert_eq!(v2(3, 4), v2(3, 4));
    }

    #[test]
    fn lex_min_of_dependence_set() {
        // D_L(A,B) = {(1,1),(2,1)} in Figure 2; the minimal vector is (1,1).
        assert_eq!(IVec2::lex_min([v2(2, 1), v2(1, 1)]), Some(v2(1, 1)));
        // D_L(B,C) = {(0,-2),(0,1)}; the minimal vector is (0,-2).
        assert_eq!(IVec2::lex_min([v2(0, 1), v2(0, -2)]), Some(v2(0, -2)));
        assert_eq!(IVec2::lex_min(std::iter::empty()), None);
    }

    #[test]
    fn arithmetic_laws() {
        let a = v2(3, -7);
        let b = v2(-2, 5);
        assert_eq!(a + b, v2(1, -2));
        assert_eq!(a - b, v2(5, -12));
        assert_eq!(-a, v2(-3, 7));
        assert_eq!(a + IVec2::ZERO, a);
        assert_eq!(a - a, IVec2::ZERO);
        assert_eq!(a * 3, v2(9, -21));
    }

    #[test]
    fn order_is_translation_invariant() {
        // Lexicographic order on Z^2 is a linear (group-compatible) order:
        // a <= b implies a + c <= b + c. Bellman-Ford over IVec2 weights
        // relies on this.
        let cases = [
            (v2(0, 5), v2(1, -100)),
            (v2(1, -1), v2(1, 0)),
            (v2(-3, 2), v2(-3, 2)),
        ];
        let shifts = [v2(0, 0), v2(5, -9), v2(-2, 100), v2(7, 7)];
        for (a, b) in cases {
            assert!(a <= b);
            for c in shifts {
                assert!(a + c <= b + c, "{a:?} + {c:?} vs {b:?} + {c:?}");
            }
        }
    }

    #[test]
    fn dot_and_perpendicular() {
        let s = v2(5, 1);
        let h = s.perpendicular();
        assert_eq!(h, v2(1, -5)); // matches the paper's Section 4.4 example
        assert_eq!(s.dot(h), 0);
        assert_eq!(s.dot(v2(1, 3)), 8);
    }

    #[test]
    fn doall_safe_predicate() {
        assert!(v2(1, -1).is_doall_safe());
        assert!(v2(1, -999).is_doall_safe()); // x >= 1 suffices (see doc)
        assert!(v2(2, 0).is_doall_safe());
        assert!(!v2(0, 0).is_doall_safe());
        assert!(!v2(0, 7).is_doall_safe());
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(v2(1, 2).checked_add(v2(3, 4)), Some(v2(4, 6)));
        assert_eq!(v2(i64::MAX, 0).checked_add(v2(1, 0)), None);
        assert_eq!(v2(0, i64::MIN).checked_add(v2(0, -1)), None);
    }
}
