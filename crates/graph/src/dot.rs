//! Graphviz DOT export for MLDGs, matching the visual conventions of the
//! paper's figures: edges are labelled with their full dependence set and
//! hard edges are starred and drawn bold.

use std::fmt::Write as _;

use crate::mldg::Mldg;

/// Renders the graph in Graphviz DOT syntax.
pub fn to_dot(g: &Mldg, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=12];");
    for n in g.node_ids() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, escape(g.label(n)));
    }
    for e in g.edge_ids() {
        let d = g.edge(e);
        let mut label = String::new();
        for (i, v) in g.deps(e).iter().enumerate() {
            if i > 0 {
                label.push(' ');
            }
            label.push_str(&v.to_string());
        }
        let style = if g.is_hard(e) {
            label.push_str(" *");
            ", style=bold"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"{}];",
            d.src.0,
            d.dst.0,
            escape(&label),
            style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::figure2;

    #[test]
    fn dot_output_contains_all_nodes_and_edges() {
        let g = figure2();
        let dot = to_dot(&g, "fig2");
        assert!(dot.starts_with("digraph \"fig2\" {"));
        for label in ["A", "B", "C", "D"] {
            assert!(dot.contains(&format!("label=\"{label}\"")));
        }
        // 6 edges rendered.
        assert_eq!(dot.matches(" -> ").count(), 6);
        // Hard edge B->C is starred and bold.
        assert!(dot.contains("(0,-2) (0,1) *"));
        assert!(dot.contains("style=bold"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g = Mldg::new();
        g.add_node("we\"ird");
        let dot = to_dot(&g, "x\"y");
        assert!(dot.contains("we\\\"ird"));
        assert!(dot.contains("x\\\"y"));
    }
}
