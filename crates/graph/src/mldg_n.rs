//! `N`-dimensional MLDGs for the generalized legal-fusion algorithm
//! (`mdf-core::ndim`).
//!
//! Definition 2.2 allows arbitrary dimension; only the *legal fusion*
//! result (Theorem 3.2) generalizes directly — the full-parallelism
//! algorithms in the paper are developed for `n = 2` — so this model keeps
//! just what LLOFRA needs: nodes, edges, dependence sets with lexicographic
//! minima.

use std::collections::HashMap;

use crate::mldg::{EdgeId, NodeId};
use crate::nvec::IVecN;

/// An edge of an [`MldgN`].
#[derive(Clone, Debug)]
pub struct EdgeDataN<const N: usize> {
    /// Producer loop.
    pub src: NodeId,
    /// Consumer loop.
    pub dst: NodeId,
    /// All loop dependence vectors, sorted ascending lexicographically.
    pub deps: Vec<IVecN<N>>,
}

/// An `N`-dimensional loop dependence graph.
#[derive(Clone, Debug, Default)]
pub struct MldgN<const N: usize> {
    labels: Vec<String>,
    edges: Vec<EdgeDataN<N>>,
    out_edges: Vec<Vec<EdgeId>>,
    by_endpoints: HashMap<(NodeId, NodeId), EdgeId>,
}

impl<const N: usize> MldgN<N> {
    /// An empty graph.
    pub fn new() -> Self {
        MldgN {
            labels: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            by_endpoints: HashMap::new(),
        }
    }

    /// Adds a node.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.into());
        self.out_edges.push(Vec::new());
        id
    }

    /// Records a dependence vector, merging parallel edges.
    pub fn add_dep(&mut self, src: NodeId, dst: NodeId, d: IVecN<N>) -> EdgeId {
        match self.by_endpoints.get(&(src, dst)) {
            Some(&e) => {
                let deps = &mut self.edges[e.index()].deps;
                if let Err(pos) = deps.binary_search(&d) {
                    deps.insert(pos, d);
                }
                e
            }
            None => {
                let e = EdgeId(self.edges.len() as u32);
                self.edges.push(EdgeDataN {
                    src,
                    dst,
                    deps: vec![d],
                });
                self.out_edges[src.index()].push(e);
                self.by_endpoints.insert((src, dst), e);
                e
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node label.
    pub fn label(&self, n: NodeId) -> &str {
        &self.labels[n.index()]
    }

    /// Iterates edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + 'static {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Edge payload.
    pub fn edge(&self, e: EdgeId) -> &EdgeDataN<N> {
        &self.edges[e.index()]
    }

    /// `δ_L(e)`: lexicographically minimal dependence vector of the edge.
    pub fn delta(&self, e: EdgeId) -> IVecN<N> {
        self.edges[e.index()].deps[0]
    }

    /// Applies a retiming `r` and returns the retimed graph
    /// (`d_r = d + r(u) - r(v)` on every vector).
    pub fn retimed(&self, r: &[IVecN<N>]) -> MldgN<N> {
        assert_eq!(r.len(), self.node_count());
        let mut g = self.clone();
        for e in g.edges.iter_mut() {
            let shift = r[e.src.index()] - r[e.dst.index()];
            for d in e.deps.iter_mut() {
                *d += shift;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvec::vn;

    #[test]
    fn build_and_query_3d() {
        let mut g: MldgN<3> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, vn([0, 0, -2]));
        g.add_dep(a, b, vn([0, 1, 5]));
        g.add_dep(a, b, vn([0, 0, -2])); // duplicate ignored
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let e = g.edge_ids().next().unwrap();
        assert_eq!(g.edge(e).deps.len(), 2);
        assert_eq!(g.delta(e), vn([0, 0, -2]));
    }

    #[test]
    fn retiming_shifts_all_vectors() {
        let mut g: MldgN<3> = MldgN::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_dep(a, b, vn([0, 0, -2]));
        g.add_dep(b, a, vn([1, 0, 0]));
        let r = vec![vn([0, 0, 0]), vn([0, 0, -2])];
        let gr = g.retimed(&r);
        let e_ab = gr.edge_ids().find(|&e| gr.edge(e).src == a).unwrap();
        let e_ba = gr.edge_ids().find(|&e| gr.edge(e).src == b).unwrap();
        assert_eq!(gr.delta(e_ab), vn([0, 0, 0]));
        assert_eq!(gr.delta(e_ba), vn([1, 0, -2]));
    }
}
