//! Resource budgets for planning and simulation.
//!
//! A [`Budget`] declares per-run ceilings — graph size, Bellman–Ford
//! relaxation rounds, simulated statement instances, allocated memory
//! cells, and a wall-clock deadline. Long-running stages thread a
//! [`BudgetMeter`] (the running tally for one pipeline invocation) through
//! their inner loops and bail out with
//! [`MdfError::BudgetExceeded`] instead of hanging or exhausting memory
//! on adversarial inputs.
//!
//! The meter is also the carrier for deterministic fault injection: a
//! budget built with [`Budget::with_chaos`] makes the meter consult the
//! process-wide armed [`mdf_chaos::FaultPlan`] at named sites
//! ([`BudgetMeter::chaos_site`]). Ordinary budgets never consult it, so
//! chaos-armed runs cannot perturb unrelated metered work in the same
//! process.

use std::time::{Duration, Instant};

use crate::error::{BudgetResource, MdfError};

/// Declarative resource ceilings. `None` means unlimited.
///
/// The default budget is fully unlimited, so budgeted entry points behave
/// exactly like their plain counterparts unless a caller opts in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum MLDG node count accepted by planning.
    pub max_nodes: Option<u64>,
    /// Maximum MLDG edge count accepted by planning.
    pub max_edges: Option<u64>,
    /// Maximum Bellman–Ford relaxation rounds, cumulative across all
    /// constraint solves of one pipeline run.
    pub max_solver_rounds: Option<u64>,
    /// Maximum simulated statement instances, cumulative.
    pub max_iterations: Option<u64>,
    /// Maximum simulated memory cells allocated, cumulative.
    pub max_memory_cells: Option<u64>,
    /// Wall-clock deadline for the whole metered run.
    pub deadline: Option<Duration>,
    /// Whether meters of this budget consult the armed chaos fault plan.
    pub chaos: bool,
}

impl Budget {
    /// A budget with every limit disabled.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the MLDG size (nodes and edges).
    pub fn with_max_graph(mut self, nodes: u64, edges: u64) -> Self {
        self.max_nodes = Some(nodes);
        self.max_edges = Some(edges);
        self
    }

    /// Caps cumulative Bellman–Ford relaxation rounds.
    pub fn with_max_solver_rounds(mut self, rounds: u64) -> Self {
        self.max_solver_rounds = Some(rounds);
        self
    }

    /// Caps cumulative simulated statement instances.
    pub fn with_max_iterations(mut self, iterations: u64) -> Self {
        self.max_iterations = Some(iterations);
        self
    }

    /// Caps cumulative simulated memory cells.
    pub fn with_max_memory_cells(mut self, cells: u64) -> Self {
        self.max_memory_cells = Some(cells);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Opts meters of this budget into the armed chaos fault plan.
    pub fn with_chaos(mut self) -> Self {
        self.chaos = true;
        self
    }

    /// Starts metering against this budget; the deadline clock begins now.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            budget: *self,
            start: Instant::now(),
            rounds: 0,
            iterations: 0,
            cells: 0,
        }
    }
}

/// The running tally for one metered pipeline run.
///
/// All `charge_*` methods are cumulative and saturating; each returns
/// `Err(MdfError::BudgetExceeded)` the moment a limit is crossed, naming
/// the exhausted resource.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: Budget,
    start: Instant,
    rounds: u64,
    iterations: u64,
    cells: u64,
}

fn charge(
    counter: &mut u64,
    n: u64,
    limit: Option<u64>,
    resource: BudgetResource,
) -> Result<(), MdfError> {
    *counter = counter.saturating_add(n);
    match limit {
        Some(limit) if *counter > limit => Err(MdfError::BudgetExceeded {
            resource,
            limit,
            used: *counter,
        }),
        _ => Ok(()),
    }
}

impl BudgetMeter {
    /// The budget this meter enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Time elapsed since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Rejects graphs larger than the configured node/edge ceilings.
    pub fn check_size(&self, nodes: usize, edges: usize) -> Result<(), MdfError> {
        if let Some(limit) = self.budget.max_nodes {
            if nodes as u64 > limit {
                return Err(MdfError::BudgetExceeded {
                    resource: BudgetResource::Nodes,
                    limit,
                    used: nodes as u64,
                });
            }
        }
        if let Some(limit) = self.budget.max_edges {
            if edges as u64 > limit {
                return Err(MdfError::BudgetExceeded {
                    resource: BudgetResource::Edges,
                    limit,
                    used: edges as u64,
                });
            }
        }
        Ok(())
    }

    /// Fails once the wall-clock deadline has passed.
    pub fn check_deadline(&self) -> Result<(), MdfError> {
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(MdfError::BudgetExceeded {
                    resource: BudgetResource::WallClockMs,
                    limit: deadline.as_millis() as u64,
                    used: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Charges `n` Bellman–Ford relaxation rounds and re-checks the
    /// deadline (solver rounds are the natural heartbeat for it).
    pub fn charge_rounds(&mut self, n: u64) -> Result<(), MdfError> {
        charge(
            &mut self.rounds,
            n,
            self.budget.max_solver_rounds,
            BudgetResource::SolverRounds,
        )?;
        self.check_deadline()
    }

    /// Charges `n` simulated statement instances.
    pub fn charge_iterations(&mut self, n: u64) -> Result<(), MdfError> {
        charge(
            &mut self.iterations,
            n,
            self.budget.max_iterations,
            BudgetResource::Iterations,
        )
    }

    /// Charges `n` simulated memory cells.
    pub fn charge_cells(&mut self, n: u64) -> Result<(), MdfError> {
        charge(
            &mut self.cells,
            n,
            self.budget.max_memory_cells,
            BudgetResource::MemoryCells,
        )
    }

    /// Consults the armed chaos plan at a named fault site.
    ///
    /// No-op (one bool test) unless the budget was built with
    /// [`Budget::with_chaos`]. When a fault fires it is simulated with the
    /// exact failure shape a genuine trip would have: budget-style kinds
    /// become [`MdfError::BudgetExceeded`] naming the matching resource,
    /// and [`mdf_chaos::FaultKind::WorkerPanic`] panics (supervisors and
    /// the CLI's panic isolation are expected to contain it).
    /// [`mdf_chaos::FaultKind::CorruptRetiming`] is not an error shape and
    /// is ignored here — planner code asks for it via
    /// [`BudgetMeter::chaos_corrupts`].
    pub fn chaos_site(&mut self, site: &'static str) -> Result<(), MdfError> {
        if !self.budget.chaos {
            return Ok(());
        }
        let synthetic = |resource: BudgetResource, limit: Option<u64>, used: u64| {
            Err(MdfError::BudgetExceeded {
                resource,
                limit: limit.unwrap_or(0),
                used,
            })
        };
        match mdf_chaos::hit(site) {
            None | Some(mdf_chaos::FaultKind::CorruptRetiming) => Ok(()),
            Some(mdf_chaos::FaultKind::WorkerPanic) => {
                panic!("chaos: injected worker panic at {site}")
            }
            Some(mdf_chaos::FaultKind::SolverExhaustion) => synthetic(
                BudgetResource::SolverRounds,
                self.budget.max_solver_rounds,
                self.rounds,
            ),
            Some(mdf_chaos::FaultKind::DeadlineExpiry) => synthetic(
                BudgetResource::WallClockMs,
                self.budget.deadline.map(|d| d.as_millis() as u64),
                self.start.elapsed().as_millis() as u64,
            ),
            Some(mdf_chaos::FaultKind::AllocRefusal) => synthetic(
                BudgetResource::MemoryCells,
                self.budget.max_memory_cells,
                self.cells,
            ),
        }
    }

    /// Consults the armed chaos plan at a retiming-producing site; `true`
    /// means the caller must corrupt the vector it just computed (the
    /// downstream verifier is then required to reject the plan).
    pub fn chaos_corrupts(&mut self, site: &'static str) -> bool {
        self.budget.chaos
            && matches!(
                mdf_chaos::hit(site),
                Some(mdf_chaos::FaultKind::CorruptRetiming)
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut m = Budget::unlimited().meter();
        m.check_size(1_000_000, 1_000_000).unwrap();
        m.charge_rounds(u64::MAX).unwrap();
        m.charge_iterations(u64::MAX).unwrap();
        m.charge_cells(u64::MAX).unwrap();
        m.check_deadline().unwrap();
    }

    #[test]
    fn size_limits_trip_with_resource_names() {
        let m = Budget::unlimited().with_max_graph(10, 20).meter();
        m.check_size(10, 20).unwrap();
        match m.check_size(11, 0) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::Nodes,
                limit: 10,
                used: 11,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        match m.check_size(0, 21) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::Edges,
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn charges_accumulate_across_calls() {
        let mut m = Budget::unlimited().with_max_solver_rounds(5).meter();
        m.charge_rounds(3).unwrap();
        m.charge_rounds(2).unwrap();
        match m.charge_rounds(1) {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::SolverRounds,
                limit: 5,
                used: 6,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn deadline_trips_after_it_passes() {
        let mut m = Budget::unlimited()
            .with_deadline(Duration::from_millis(0))
            .meter();
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            m.check_deadline(),
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::WallClockMs,
                ..
            })
        ));
        // charge_rounds doubles as a deadline heartbeat.
        assert!(m.charge_rounds(1).is_err());
    }

    #[test]
    fn chaos_sites_are_inert_without_opt_in() {
        // Even with a plan armed, a non-chaos budget never consults it.
        let guard =
            mdf_chaos::FaultPlan::single("sim.barrier", mdf_chaos::FaultKind::WorkerPanic, 1).arm();
        let mut m = Budget::unlimited().meter();
        m.chaos_site("sim.barrier").unwrap();
        m.chaos_site("sim.barrier").unwrap();
        assert_eq!(guard.hits("sim.barrier"), 0);
        assert!(!m.chaos_corrupts("planner.retiming"));
    }

    #[test]
    fn chaos_faults_map_to_matching_budget_errors() {
        let _guard =
            mdf_chaos::FaultPlan::single("sim.barrier", mdf_chaos::FaultKind::DeadlineExpiry, 2)
                .arm();
        let mut m = Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .with_chaos()
            .meter();
        m.chaos_site("sim.barrier").unwrap();
        match m.chaos_site("sim.barrier") {
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::WallClockMs,
                limit: 3_600_000,
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        m.chaos_site("sim.barrier").unwrap();
    }

    #[test]
    fn chaos_alloc_refusal_maps_to_memory_cells() {
        let _guard =
            mdf_chaos::FaultPlan::single("kernel.alloc", mdf_chaos::FaultKind::AllocRefusal, 1)
                .arm();
        let mut m = Budget::unlimited().with_chaos().meter();
        assert!(matches!(
            m.chaos_site("kernel.alloc"),
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::MemoryCells,
                ..
            })
        ));
    }

    #[test]
    fn chaos_panic_kind_panics_with_site_name() {
        let _guard =
            mdf_chaos::FaultPlan::single("kernel.barrier", mdf_chaos::FaultKind::WorkerPanic, 1)
                .arm();
        let mut m = Budget::unlimited().with_chaos().meter();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.chaos_site("kernel.barrier")
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("kernel.barrier"), "panic payload: {msg}");
    }

    #[test]
    fn chaos_corruption_requests_reach_the_planner_site() {
        let _guard = mdf_chaos::FaultPlan::single(
            "planner.retiming",
            mdf_chaos::FaultKind::CorruptRetiming,
            1,
        )
        .arm();
        let mut m = Budget::unlimited().with_chaos().meter();
        assert!(m.chaos_corrupts("planner.retiming"));
        assert!(!m.chaos_corrupts("planner.retiming"), "spent after firing");
    }

    #[test]
    fn iteration_and_cell_budgets_trip() {
        let mut m = Budget::unlimited()
            .with_max_iterations(4)
            .with_max_memory_cells(8)
            .meter();
        m.charge_iterations(4).unwrap();
        assert!(m.charge_iterations(1).is_err());
        m.charge_cells(8).unwrap();
        assert!(matches!(
            m.charge_cells(1),
            Err(MdfError::BudgetExceeded {
                resource: BudgetResource::MemoryCells,
                ..
            })
        ));
    }
}
