//! `N`-dimensional integer vectors with lexicographic order.
//!
//! The paper develops its algorithms for the two-dimensional case but the
//! MLDG model (Definition 2.2) is stated for arbitrary dimension `n`. This
//! module provides the `Z^n` analogue of [`crate::vec2::IVec2`] so that the
//! generalized (n-dimensional) legal-fusion algorithm in `mdf-core::ndim`
//! can operate on loop nests of any depth.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Neg, Sub, SubAssign};

use crate::vec2::IVec2;

/// A vector in `Z^N` ordered lexicographically (derived `Ord` on an array
/// compares element-wise from index 0, which is lexicographic order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IVecN<const N: usize>(pub [i64; N]);

impl<const N: usize> IVecN<N> {
    /// The additive identity.
    pub const ZERO: IVecN<N> = IVecN([0; N]);

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(components: [i64; N]) -> Self {
        IVecN(components)
    }

    /// The dimension `N`.
    #[inline]
    pub const fn dim(&self) -> usize {
        N
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &IVecN<N>) -> i64 {
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// `true` iff the vector is lexicographically `>= 0`.
    #[inline]
    pub fn is_lex_nonnegative(&self) -> bool {
        *self >= IVecN::ZERO
    }

    /// The first non-zero component's index, or `None` for the zero vector.
    /// A dependence vector with leading index `k` is said to be *carried* by
    /// loop level `k`.
    pub fn carrying_level(&self) -> Option<usize> {
        self.0.iter().position(|&c| c != 0)
    }

    /// Lexicographic minimum of an iterator.
    pub fn lex_min<I: IntoIterator<Item = IVecN<N>>>(iter: I) -> Option<IVecN<N>> {
        iter.into_iter().min()
    }
}

impl IVecN<2> {
    /// Converts the 2-D specialization into an [`IVec2`].
    #[inline]
    pub fn to_ivec2(self) -> IVec2 {
        IVec2::new(self.0[0], self.0[1])
    }
}

impl From<IVec2> for IVecN<2> {
    #[inline]
    fn from(v: IVec2) -> Self {
        IVecN([v.x, v.y])
    }
}

impl<const N: usize> Default for IVecN<N> {
    fn default() -> Self {
        IVecN::ZERO
    }
}

impl<const N: usize> fmt::Debug for IVecN<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> fmt::Display for IVecN<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> Add for IVecN<N> {
    type Output = IVecN<N>;
    #[inline]
    fn add(self, rhs: IVecN<N>) -> IVecN<N> {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o += r;
        }
        IVecN(out)
    }
}

impl<const N: usize> AddAssign for IVecN<N> {
    #[inline]
    fn add_assign(&mut self, rhs: IVecN<N>) {
        for (o, r) in self.0.iter_mut().zip(rhs.0.iter()) {
            *o += r;
        }
    }
}

impl<const N: usize> Sub for IVecN<N> {
    type Output = IVecN<N>;
    #[inline]
    fn sub(self, rhs: IVecN<N>) -> IVecN<N> {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o -= r;
        }
        IVecN(out)
    }
}

impl<const N: usize> SubAssign for IVecN<N> {
    #[inline]
    fn sub_assign(&mut self, rhs: IVecN<N>) {
        for (o, r) in self.0.iter_mut().zip(rhs.0.iter()) {
            *o -= r;
        }
    }
}

impl<const N: usize> Neg for IVecN<N> {
    type Output = IVecN<N>;
    #[inline]
    fn neg(self) -> IVecN<N> {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = -*o;
        }
        IVecN(out)
    }
}

impl<const N: usize> Index<usize> for IVecN<N> {
    type Output = i64;
    #[inline]
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl<const N: usize> IndexMut<usize> for IVecN<N> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

/// Convenience constructor.
#[inline]
pub const fn vn<const N: usize>(components: [i64; N]) -> IVecN<N> {
    IVecN(components)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        assert!(vn([0, 0, 5]) < vn([0, 1, -99]));
        assert!(vn([1, -1, -1]) > vn([0, 100, 100]));
        assert!(vn([2, 3, 4]) == vn([2, 3, 4]));
    }

    #[test]
    fn arithmetic() {
        let a = vn([1, 2, 3]);
        let b = vn([4, -5, 6]);
        assert_eq!(a + b, vn([5, -3, 9]));
        assert_eq!(a - b, vn([-3, 7, -3]));
        assert_eq!(-a, vn([-1, -2, -3]));
        assert_eq!(a.dot(&b), 4 + 2 * -5 + 3 * 6);
    }

    #[test]
    fn carrying_level() {
        assert_eq!(vn([0, 0, 3]).carrying_level(), Some(2));
        assert_eq!(vn([2, 0, 0]).carrying_level(), Some(0));
        assert_eq!(IVecN::<3>::ZERO.carrying_level(), None);
    }

    #[test]
    fn ivec2_roundtrip() {
        let v = IVec2::new(3, -4);
        let n: IVecN<2> = v.into();
        assert_eq!(n.to_ivec2(), v);
    }

    #[test]
    fn order_translation_invariance() {
        let a = vn([0, 3, -2]);
        let b = vn([1, -9, 4]);
        assert!(a < b);
        let c = vn([5, 5, 5]);
        assert!(a + c < b + c);
    }
}
