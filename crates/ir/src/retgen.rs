//! Retimed, fused code generation.
//!
//! After the planner produces a retiming `r`, the fused program executes,
//! at fused iteration `(I, J)`, node `u`'s original iteration
//! `(I + r(u).x, J + r(u).y)` — guarded to `u`'s original bounds
//! `0 <= i <= n`, `0 <= j <= m`. The guarded form is exact for any bounds;
//! the renderer additionally identifies the *guard-free kernel region*
//! (where every node is active, so no guards are needed) and emits the
//! boundary iterations as explicit prologue/epilogue sections, like the
//! paper's Figure 12.

use std::fmt::Write as _;

use mdf_graph::vec2::IVec2;

use crate::ast::Program;
use crate::pretty::stmt_to_string;

/// A program plus the retiming offsets of its loops: everything needed to
/// execute or print the fused loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedSpec {
    /// The original program.
    pub program: Program,
    /// `r(u)` per loop, indexed like `program.loops`.
    pub offsets: Vec<IVec2>,
}

/// An inclusive 1-D range; empty when `lo > hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IRange {
    /// Lower bound.
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl IRange {
    /// `true` when the range contains no integers.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Number of integers in the range.
    pub fn len(&self) -> i64 {
        (self.hi - self.lo + 1).max(0)
    }

    /// Membership.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

impl FusedSpec {
    /// Builds a spec, checking that `offsets` covers every loop.
    pub fn new(program: Program, offsets: Vec<IVec2>) -> Self {
        assert_eq!(
            offsets.len(),
            program.loops.len(),
            "one offset per innermost loop required"
        );
        FusedSpec { program, offsets }
    }

    /// The identity spec (plain fusion, no retiming).
    pub fn unretimed(program: Program) -> Self {
        let n = program.loops.len();
        FusedSpec::new(program, vec![IVec2::ZERO; n])
    }

    fn rx_bounds(&self) -> (i64, i64) {
        let xs = self.offsets.iter().map(|v| v.x);
        (xs.clone().min().unwrap_or(0), xs.max().unwrap_or(0))
    }

    fn ry_bounds(&self) -> (i64, i64) {
        let ys = self.offsets.iter().map(|v| v.y);
        (ys.clone().min().unwrap_or(0), ys.max().unwrap_or(0))
    }

    /// The fused outer range: all `I` for which *some* node is active
    /// (`0 <= I + r(u).x <= n`).
    pub fn outer_range(&self, n: i64) -> IRange {
        let (min_rx, max_rx) = self.rx_bounds();
        IRange {
            lo: -max_rx,
            hi: n - min_rx,
        }
    }

    /// The fused inner range: all `J` for which some node can be active.
    pub fn inner_range(&self, m: i64) -> IRange {
        let (min_ry, max_ry) = self.ry_bounds();
        IRange {
            lo: -max_ry,
            hi: m - min_ry,
        }
    }

    /// The guard-free outer kernel range: all `I` for which *every* node is
    /// active. May be empty for tiny `n`.
    pub fn kernel_outer(&self, n: i64) -> IRange {
        let (min_rx, max_rx) = self.rx_bounds();
        IRange {
            lo: -min_rx,
            hi: n - max_rx,
        }
    }

    /// The guard-free inner kernel range.
    pub fn kernel_inner(&self, m: i64) -> IRange {
        let (min_ry, max_ry) = self.ry_bounds();
        IRange {
            lo: -min_ry,
            hi: m - max_ry,
        }
    }

    /// `true` when loop `l`'s statements execute at fused iteration
    /// `(fused_i, fused_j)` given original bounds `(n, m)`.
    pub fn node_active(&self, l: usize, fused_i: i64, fused_j: i64, n: i64, m: i64) -> bool {
        let r = self.offsets[l];
        let i = fused_i + r.x;
        let j = fused_j + r.y;
        0 <= i && i <= n && 0 <= j && j <= m
    }

    /// Total statement *instances* the fused program executes for bounds
    /// `(n, m)` — must equal the original's `(n+1)(m+1) * stmts` (each node
    /// still executes its whole iteration space); checked in tests.
    pub fn instance_count(&self, n: i64, m: i64) -> i64 {
        (n + 1).max(0)
            * (m + 1).max(0)
            * self
                .program
                .loops
                .iter()
                .map(|l| l.stmts.len() as i64)
                .sum::<i64>()
    }

    /// Computes a valid statement order for the fused body.
    ///
    /// A dependence whose *retimed* vector is exactly `(0,0)` flows within
    /// a single fused iteration, so the producer loop's statements must
    /// appear before the consumer's in the body. Retiming can turn a
    /// textually *backward* edge (e.g. `D -> A` with weight `(2,1)`) into a
    /// `(0,0)` edge, so the original textual order is not always valid; the
    /// correct order is a topological order of the `(0,0)`-retimed
    /// dependence subgraph. For every executable program that subgraph is a
    /// DAG (each original cycle carries outer-loop weight `>= 1`, which
    /// retiming preserves, so no cycle can collapse to all-`(0,0)`); this
    /// returns `None` only for specs built from non-executable inputs.
    ///
    /// Ties are broken by textual position (stable Kahn), so programs whose
    /// textual order is already valid — like all the paper's examples —
    /// keep it.
    pub fn body_order(&self) -> Option<Vec<usize>> {
        let nloops = self.program.loops.len();
        let deps = crate::deps::analyze_dependences(&self.program).ok()?;
        let mut adj = vec![Vec::new(); nloops];
        let mut indeg = vec![0usize; nloops];
        for d in &deps {
            let retimed = d.vector + self.offsets[d.src] - self.offsets[d.dst];
            if retimed == IVec2::ZERO && d.src != d.dst {
                adj[d.src].push(d.dst);
                indeg[d.dst] += 1;
            }
        }
        // Stable Kahn: always take the smallest available loop index.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..nloops)
            .filter(|&l| indeg[l] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(nloops);
        while let Some(std::cmp::Reverse(l)) = ready.pop() {
            order.push(l);
            for &next in &adj[l] {
                indeg[next] -= 1;
                if indeg[next] == 0 {
                    ready.push(std::cmp::Reverse(next));
                }
            }
        }
        (order.len() == nloops).then_some(order)
    }

    /// Renders the fused program with explicit prologue / guard-free kernel
    /// / epilogue sections (Figure 12 style). Bounds are kept symbolic as
    /// `n` and `m`; the section boundaries are the numeric offsets computed
    /// from the retiming.
    pub fn render(&self) -> String {
        let p = &self.program;
        let mut out = String::new();
        let (min_rx, max_rx) = self.rx_bounds();
        let (min_ry, max_ry) = self.ry_bounds();
        let _ = writeln!(out, "// fused '{}' under retiming:", p.name);
        for (l, r) in p.loops.iter().zip(&self.offsets) {
            let _ = writeln!(out, "//   r({}) = {}", l.label, r);
        }
        let bound = |base: &str, off: i64| -> String {
            match off.cmp(&0) {
                std::cmp::Ordering::Equal => base.to_string(),
                std::cmp::Ordering::Greater => format!("{base}+{off}"),
                std::cmp::Ordering::Less => format!("{base}{off}"),
            }
        };
        if -max_rx < -min_rx {
            let _ = writeln!(
                out,
                "// prologue rows: I = {} .. {} (guarded)",
                -max_rx,
                -min_rx - 1
            );
        }
        let _ = writeln!(
            out,
            "DO I = {}, {} {{   // guard-free kernel rows",
            -min_rx,
            bound("n", -max_rx)
        );
        if -max_ry < -min_ry {
            let _ = writeln!(
                out,
                "    // row prologue cells: J = {} .. {} (guarded)",
                -max_ry,
                -min_ry - 1
            );
        }
        let _ = writeln!(out, "    DOALL J = {}, {} {{", -min_ry, bound("m", -max_ry));
        let order = self
            .body_order()
            .unwrap_or_else(|| (0..p.loops.len()).collect());
        for &li in &order {
            let (l, r) = (&p.loops[li], self.offsets[li]);
            for s in &l.stmts {
                let _ = writeln!(
                    out,
                    "        {}",
                    stmt_to_string(p, s, "I", "J", (r.x, r.y))
                );
            }
        }
        let _ = writeln!(out, "    }}");
        if max_ry > min_ry {
            let _ = writeln!(
                out,
                "    // row epilogue cells: J = {} .. {} (guarded)",
                bound("m", -max_ry) + "+1",
                bound("m", -min_ry)
            );
        }
        let _ = writeln!(out, "}}");
        if max_rx > min_rx {
            let _ = writeln!(
                out,
                "// epilogue rows: I = {}+1 .. {} (guarded)",
                bound("n", -max_rx),
                bound("n", -min_rx)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::figure2_program;
    use mdf_graph::v2;

    fn fig2_spec() -> FusedSpec {
        // The Algorithm 4 retiming of Figure 2.
        FusedSpec::new(
            figure2_program(),
            vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)],
        )
    }

    #[test]
    fn ranges_cover_all_node_iterations() {
        let spec = fig2_spec();
        let (n, m) = (10, 7);
        let or = spec.outer_range(n);
        let ir = spec.inner_range(m);
        // r.x in {-1, 0}: I runs 0 ..= n+1. r.y in {-1, 0}: J runs 0 ..= m+1.
        assert_eq!((or.lo, or.hi), (0, n + 1));
        assert_eq!((ir.lo, ir.hi), (0, m + 1));
        // Every original iteration of every node is covered exactly once.
        let mut count = 0i64;
        for l in 0..spec.program.loops.len() {
            for fi in or.lo..=or.hi {
                for fj in ir.lo..=ir.hi {
                    if spec.node_active(l, fi, fj, n, m) {
                        count += spec.program.loops[l].stmts.len() as i64;
                    }
                }
            }
        }
        assert_eq!(count, spec.instance_count(n, m));
    }

    #[test]
    fn kernel_region_is_guard_free() {
        let spec = fig2_spec();
        let (n, m) = (10, 7);
        let ko = spec.kernel_outer(n);
        let ki = spec.kernel_inner(m);
        assert_eq!((ko.lo, ko.hi), (1, n));
        assert_eq!((ki.lo, ki.hi), (1, m));
        for l in 0..spec.program.loops.len() {
            for fi in ko.lo..=ko.hi {
                for fj in ki.lo..=ki.hi {
                    assert!(spec.node_active(l, fi, fj, n, m));
                }
            }
        }
    }

    #[test]
    fn kernel_can_be_empty_on_tiny_bounds() {
        let spec = FusedSpec::new(
            figure2_program(),
            vec![v2(0, 0), v2(0, 0), v2(-3, 0), v2(-3, 0)],
        );
        assert!(spec.kernel_outer(2).is_empty());
        assert!(!spec.outer_range(2).is_empty());
    }

    #[test]
    fn render_matches_figure3_statements() {
        // Figure 3(b): body statements after retiming and fusion.
        let spec = fig2_spec();
        let code = spec.render();
        assert!(code.contains("a[I][J] = e[I-2][J-1];"), "{code}");
        assert!(
            code.contains("c[I-1][J] = b[I-1][J+2] - a[I-1][J-1] + b[I-1][J-1];"),
            "{code}"
        );
        assert!(code.contains("e[I-1][J-1] = c[I-1][J];"), "{code}");
        assert!(code.contains("prologue"), "{code}");
        assert!(code.contains("epilogue"), "{code}");
    }

    #[test]
    fn unretimed_spec_is_plain_fusion() {
        let spec = FusedSpec::unretimed(figure2_program());
        let (n, m) = (4, 4);
        assert_eq!(spec.outer_range(n), spec.kernel_outer(n));
        assert_eq!(spec.inner_range(m), spec.kernel_inner(m));
    }

    #[test]
    fn irange_helpers() {
        let r = IRange { lo: 2, hi: 5 };
        assert_eq!(r.len(), 4);
        assert!(r.contains(2) && r.contains(5) && !r.contains(6));
        let e = IRange { lo: 3, hi: 1 };
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}

#[cfg(test)]
mod body_order_tests {
    use super::*;
    use crate::ast::{ArrayRef, Expr, Stmt};
    use crate::samples::figure2_program;
    use mdf_graph::v2;

    #[test]
    fn figure2_keeps_textual_order() {
        let spec = FusedSpec::new(
            figure2_program(),
            vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)],
        );
        assert_eq!(spec.body_order(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn backward_edge_collapsed_to_zero_reorders_body() {
        // B (later) produces b; A (earlier) reads b[i-1][j]: edge B -> A
        // with vector (1, 0). Retiming r(A) = (1, 0) collapses it to
        // (0,0) — retimed = (1,0) + r(B) - r(A) — so B's statements must
        // now precede A's in the fused body.
        let mut p = Program::new("backward");
        let a = p.add_array("a");
        let b = p.add_array("b");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Ref(ArrayRef::new(b, -1, 0)),
            }],
        );
        p.add_loop(
            "B",
            vec![Stmt {
                lhs: ArrayRef::new(b, 0, 0),
                rhs: Expr::Const(1),
            }],
        );
        let spec = FusedSpec::new(p, vec![v2(1, 0), v2(0, 0)]);
        assert_eq!(spec.body_order(), Some(vec![1, 0]));
    }

    #[test]
    fn unretimed_spec_order_is_textual() {
        let spec = FusedSpec::unretimed(figure2_program());
        assert_eq!(spec.body_order(), Some(vec![0, 1, 2, 3]));
    }
}

impl FusedSpec {
    /// Statement instances executed *outside* the guard-free kernel region
    /// — the prologue/epilogue work the paper calls "negligible when
    /// compared to that of the total execution" (Section 1). Returns
    /// `(boundary_instances, total_instances)`.
    pub fn prologue_instances(&self, n: i64, m: i64) -> (i64, i64) {
        let ko = self.kernel_outer(n);
        let ki = self.kernel_inner(m);
        let orange = self.outer_range(n);
        let irange = self.inner_range(m);
        let mut boundary = 0i64;
        let mut total = 0i64;
        for (li, l) in self.program.loops.iter().enumerate() {
            let stmts = l.stmts.len() as i64;
            for fi in orange.lo..=orange.hi {
                for fj in irange.lo..=irange.hi {
                    if self.node_active(li, fi, fj, n, m) {
                        total += stmts;
                        if !(ko.contains(fi) && ki.contains(fj)) {
                            boundary += stmts;
                        }
                    }
                }
            }
        }
        (boundary, total)
    }

    /// `prologue_instances` as a ratio in `[0, 1]`.
    pub fn prologue_overhead(&self, n: i64, m: i64) -> f64 {
        let (b, t) = self.prologue_instances(n, m);
        if t == 0 {
            0.0
        } else {
            b as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod prologue_tests {
    use super::*;
    use crate::samples::figure2_program;
    use mdf_graph::v2;

    #[test]
    fn prologue_overhead_vanishes_with_problem_size() {
        // The paper's negligibility claim: boundary work is O(n + m) while
        // total work is O(n * m).
        let spec = FusedSpec::new(
            figure2_program(),
            vec![v2(0, 0), v2(0, 0), v2(-1, 0), v2(-1, -1)],
        );
        let small = spec.prologue_overhead(8, 8);
        let large = spec.prologue_overhead(256, 256);
        assert!(small > large);
        assert!(large < 0.02, "boundary share at 257x257: {large}");
        let (b, t) = spec.prologue_instances(8, 8);
        assert!(b > 0 && b < t);
    }

    #[test]
    fn unretimed_spec_has_no_prologue() {
        let spec = FusedSpec::unretimed(figure2_program());
        assert_eq!(spec.prologue_instances(10, 10).0, 0);
        assert_eq!(spec.prologue_overhead(10, 10), 0.0);
    }
}
