//! Sample programs: the paper's Figure 2(b) code, plus the two realistic
//! kernels (experiment-suite entries E4 and E5) standing in for the
//! truncated part of the paper's Section 5 benchmark set (see DESIGN.md,
//! "Substitutions").

use crate::ast::{ArrayRef, BinOp, Expr, Program, Stmt};

fn read(a: usize, di: i64, dj: i64) -> Expr {
    Expr::Ref(ArrayRef::new(a, di, dj))
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Add, a, b)
}

fn sub(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Sub, a, b)
}

/// The exact code of Figure 2(b):
///
/// ```text
/// DO 50 i = 0, n
///   A: DOALL 10 j = 0, m   a[i][j] = e[i-2][j-1]
///   B: DOALL 20 j = 0, m   b[i][j] = a[i-1][j-1] + a[i-2][j-1]
///   C: DOALL 30 j = 0, m   c[i][j] = b[i][j+2] - a[i][j-1] + b[i][j-1]
///                          d[i][j] = c[i-1][j]
///   D: DOALL 40 j = 0, m   e[i][j] = c[i][j+1]
/// ```
pub fn figure2_program() -> Program {
    let mut p = Program::new("figure2");
    let a = p.add_array("a");
    let b = p.add_array("b");
    let c = p.add_array("c");
    let d = p.add_array("d");
    let e = p.add_array("e");
    p.add_loop(
        "A",
        vec![Stmt {
            lhs: ArrayRef::new(a, 0, 0),
            rhs: read(e, -2, -1),
        }],
    );
    p.add_loop(
        "B",
        vec![Stmt {
            lhs: ArrayRef::new(b, 0, 0),
            rhs: add(read(a, -1, -1), read(a, -2, -1)),
        }],
    );
    p.add_loop(
        "C",
        vec![
            Stmt {
                lhs: ArrayRef::new(c, 0, 0),
                rhs: add(sub(read(b, 0, 2), read(a, 0, -1)), read(b, 0, -1)),
            },
            Stmt {
                lhs: ArrayRef::new(d, 0, 0),
                rhs: read(c, -1, 0),
            },
        ],
    );
    p.add_loop(
        "D",
        vec![Stmt {
            lhs: ArrayRef::new(e, 0, 0),
            rhs: read(c, 0, 1),
        }],
    );
    p
}

/// Experiment-suite entry **E4**, "image pipeline": a separable blur, an
/// edge detector, an unsharp mask and a running accumulation — the kind of
/// multi-loop image-processing chain the paper's introduction motivates.
///
/// ```text
/// A: blur[i][j]  = img[i][j-1] + img[i][j] + img[i][j+1]
/// B: edge[i][j]  = blur[i][j+1] - blur[i][j-1]           (A->B hard)
/// C: sharp[i][j] = img[i][j] + edge[i][j+2]              (B->C fusion-preventing)
/// D: out[i][j]   = sharp[i][j] + out[i-1][j]             (self-dependence (1,0))
/// ```
///
/// `img` is an input (never written), so it generates no edges. The graph
/// is cyclic (self-loop on D) with one hard edge; Algorithm 4 applies.
pub fn image_pipeline_program() -> Program {
    let mut p = Program::new("image_pipeline");
    let img = p.add_array("img");
    let blur = p.add_array("blur");
    let edge = p.add_array("edge");
    let sharp = p.add_array("sharp");
    let out = p.add_array("out");
    p.add_loop(
        "A",
        vec![Stmt {
            lhs: ArrayRef::new(blur, 0, 0),
            rhs: add(add(read(img, 0, -1), read(img, 0, 0)), read(img, 0, 1)),
        }],
    );
    p.add_loop(
        "B",
        vec![Stmt {
            lhs: ArrayRef::new(edge, 0, 0),
            rhs: sub(read(blur, 0, 1), read(blur, 0, -1)),
        }],
    );
    p.add_loop(
        "C",
        vec![Stmt {
            lhs: ArrayRef::new(sharp, 0, 0),
            rhs: add(read(img, 0, 0), read(edge, 0, 2)),
        }],
    );
    p.add_loop(
        "D",
        vec![Stmt {
            lhs: ArrayRef::new(out, 0, 0),
            rhs: add(read(sharp, 0, 0), read(out, -1, 0)),
        }],
    );
    p
}

/// Experiment-suite entry **E5**, "relaxation": a two-stage red/black-style
/// smoother where each stage reads the other's neighbouring cells. Both
/// edges of the `A <-> B` cycle are hard, so Theorem 4.2 fails and only the
/// hyperplane method (Algorithm 5) achieves full parallelism.
///
/// ```text
/// A: u[i][j] = v[i-1][j-1] + v[i-1][j+1]    (B->A: {(1,-1),(1,1)}, hard)
/// B: v[i][j] = u[i][j-1] + u[i][j+1]        (A->B: {(0,-1),(0,1)}, hard)
/// ```
pub fn relaxation_program() -> Program {
    let mut p = Program::new("relaxation");
    let u = p.add_array("u");
    let v = p.add_array("v");
    p.add_loop(
        "A",
        vec![Stmt {
            lhs: ArrayRef::new(u, 0, 0),
            rhs: add(read(v, -1, -1), read(v, -1, 1)),
        }],
    );
    p.add_loop(
        "B",
        vec![Stmt {
            lhs: ArrayRef::new(v, 0, 0),
            rhs: add(read(u, 0, -1), read(u, 0, 1)),
        }],
    );
    p
}

/// All sample programs with their suite names.
pub fn all_samples() -> Vec<(&'static str, Program)> {
    vec![
        ("figure2", figure2_program()),
        ("image_pipeline", image_pipeline_program()),
        ("relaxation", relaxation_program()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_validate() {
        for (name, p) in all_samples() {
            assert_eq!(p.validate(), Ok(()), "{name}");
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn figure2_has_expected_shape() {
        let p = figure2_program();
        assert_eq!(p.loops.len(), 4);
        assert_eq!(p.stmt_count(), 5);
        assert_eq!(p.arrays.len(), 5);
        assert_eq!(p.max_offset(), 2);
    }
}

/// A six-stage 1-D convolution chain (smoothing, band-pass, differencing,
/// cross-row coupling, accumulation, output mix) — a wider pipeline used
/// by the extended tests and benches. Two hard edges, one self-dependence,
/// one fusion-preventing edge.
pub fn conv_chain_program() -> Program {
    let mut p = Program::new("conv_chain");
    let sig = p.add_array("sig");
    let c1 = p.add_array("c1");
    let c2 = p.add_array("c2");
    let dn = p.add_array("dn");
    let up = p.add_array("up");
    let acc = p.add_array("acc");
    let out = p.add_array("out");
    p.add_loop(
        "A",
        vec![Stmt {
            lhs: ArrayRef::new(c1, 0, 0),
            rhs: add(add(read(sig, 0, -1), read(sig, 0, 0)), read(sig, 0, 1)),
        }],
    );
    p.add_loop(
        "B",
        vec![Stmt {
            lhs: ArrayRef::new(c2, 0, 0),
            rhs: add(read(c1, 0, -2), read(c1, 0, 2)),
        }],
    );
    p.add_loop(
        "C",
        vec![Stmt {
            lhs: ArrayRef::new(dn, 0, 0),
            rhs: sub(read(c2, 0, -1), read(c2, 0, 1)),
        }],
    );
    p.add_loop(
        "D",
        vec![Stmt {
            lhs: ArrayRef::new(up, 0, 0),
            rhs: read(dn, -1, 3),
        }],
    );
    p.add_loop(
        "E",
        vec![Stmt {
            lhs: ArrayRef::new(acc, 0, 0),
            rhs: add(read(up, 0, 0), read(acc, -1, 0)),
        }],
    );
    p.add_loop(
        "F",
        vec![Stmt {
            lhs: ArrayRef::new(out, 0, 0),
            rhs: add(read(acc, 0, -1), read(dn, 0, 1)),
        }],
    );
    p
}

/// An ADI-style pass: a horizontal gather, a centered difference (hard
/// edge), and an update feeding the next outer iteration through a hard
/// back edge — Algorithm 4 fails on the resulting cycle and the planner
/// needs the hyperplane method, like the relaxation kernel but with three
/// stages.
pub fn adi_pass_program() -> Program {
    let mut p = Program::new("adi_pass");
    let u = p.add_array("u");
    let h = p.add_array("h");
    let v = p.add_array("v");
    p.add_loop(
        "A",
        vec![Stmt {
            lhs: ArrayRef::new(h, 0, 0),
            rhs: add(read(u, -1, -1), read(u, -1, 1)),
        }],
    );
    p.add_loop(
        "B",
        vec![Stmt {
            lhs: ArrayRef::new(v, 0, 0),
            rhs: sub(read(h, 0, 1), read(h, 0, -1)),
        }],
    );
    p.add_loop(
        "C",
        vec![Stmt {
            lhs: ArrayRef::new(u, 0, 0),
            rhs: add(read(v, 0, 0), read(u, -1, 0)),
        }],
    );
    p
}

/// The extended sample set (beyond the 5-entry paper suite).
pub fn extended_samples() -> Vec<(&'static str, Program)> {
    vec![
        ("conv_chain", conv_chain_program()),
        ("adi_pass", adi_pass_program()),
    ]
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn extended_samples_validate() {
        for (name, p) in extended_samples() {
            assert_eq!(p.validate(), Ok(()), "{name}");
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn conv_chain_shape() {
        let p = conv_chain_program();
        assert_eq!(p.loops.len(), 6);
        assert_eq!(p.arrays.len(), 7);
    }
}
