//! Pretty-printers: DSL round-trip output and Fortran-style listings like
//! the paper's figures.

use std::fmt::Write as _;

use crate::ast::{ArrayRef, BinOp, Expr, Program, Stmt};

/// Renders a subscript `name+off` / `name-off` / `name`.
fn subscript(name: &str, off: i64) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => name.to_string(),
        std::cmp::Ordering::Greater => format!("{name}+{off}"),
        std::cmp::Ordering::Less => format!("{name}{off}"),
    }
}

/// Renders an access, optionally shifting both subscripts (used by the
/// retimed code generator, where node `u`'s statements appear with
/// subscripts shifted by `r(u)`).
pub fn access_to_string(
    p: &Program,
    r: &ArrayRef,
    outer: &str,
    inner: &str,
    shift: (i64, i64),
) -> String {
    format!(
        "{}[{}][{}]",
        p.arrays[r.array],
        subscript(outer, r.di + shift.0),
        subscript(inner, r.dj + shift.1)
    )
}

fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Const(_) | Expr::Ref(_) => 3,
        Expr::Neg(_) => 2,
        Expr::Bin(BinOp::Mul, _, _) => 1,
        Expr::Bin(_, _, _) => 0,
    }
}

/// Renders an expression with minimal parentheses, applying `shift` to
/// every array subscript.
pub fn expr_to_string(
    p: &Program,
    e: &Expr,
    outer: &str,
    inner: &str,
    shift: (i64, i64),
) -> String {
    fn go(
        p: &Program,
        e: &Expr,
        outer: &str,
        inner: &str,
        shift: (i64, i64),
        parent_prec: u8,
    ) -> String {
        let prec = expr_prec(e);
        let body = match e {
            Expr::Const(v) => v.to_string(),
            Expr::Ref(r) => access_to_string(p, r, outer, inner, shift),
            Expr::Neg(inner_e) => {
                format!("-{}", go(p, inner_e, outer, inner, shift, 2))
            }
            Expr::Bin(op, a, b) => format!(
                "{} {} {}",
                go(p, a, outer, inner, shift, prec),
                op.token(),
                // Right operand of - and binary ops: require strictly higher
                // precedence to preserve left associativity.
                go(p, b, outer, inner, shift, prec + 1)
            ),
        };
        if prec < parent_prec {
            format!("({body})")
        } else {
            body
        }
    }
    go(p, e, outer, inner, shift, 0)
}

/// Renders one statement `lhs = rhs;` with shifted subscripts.
pub fn stmt_to_string(
    p: &Program,
    s: &Stmt,
    outer: &str,
    inner: &str,
    shift: (i64, i64),
) -> String {
    format!(
        "{} = {};",
        access_to_string(p, &s.lhs, outer, inner, shift),
        expr_to_string(p, &s.rhs, outer, inner, shift)
    )
}

/// Renders the program in DSL syntax (parsable by
/// [`crate::parser::parse_program`]).
pub fn program_to_dsl(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", p.name);
    let _ = writeln!(out, "    arrays {};", p.arrays.join(", "));
    let _ = writeln!(out, "    do i {{");
    for l in &p.loops {
        let _ = writeln!(out, "        doall {}: j {{", l.label);
        for s in &l.stmts {
            let _ = writeln!(
                out,
                "            {}",
                stmt_to_string(p, s, "i", "j", (0, 0))
            );
        }
        let _ = writeln!(out, "        }}");
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

/// Renders the program as a Fortran-like listing in the style of the
/// paper's Figure 2(b).
pub fn program_to_fortran(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "      DO 50 i = 0, n");
    for (k, l) in p.loops.iter().enumerate() {
        let label = 10 * (k + 1);
        let _ = writeln!(out, "{}: DOALL {} j = 0, m", l.label, label);
        for s in &l.stmts {
            let _ = writeln!(out, "        {}", stmt_to_string(p, s, "i", "j", (0, 0)));
        }
        let _ = writeln!(out, "{label:>2}    CONTINUE");
    }
    let _ = writeln!(out, "50    CONTINUE");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::samples::{all_samples, figure2_program};

    #[test]
    fn dsl_roundtrip_all_samples() {
        for (name, p) in all_samples() {
            let dsl = program_to_dsl(&p);
            let reparsed = parse_program(&dsl).unwrap_or_else(|e| panic!("{name}: {e}\n{dsl}"));
            assert_eq!(reparsed, p, "{name}");
        }
    }

    #[test]
    fn statement_rendering_matches_paper_style() {
        let p = figure2_program();
        let c_loop = &p.loops[2];
        assert_eq!(
            stmt_to_string(&p, &c_loop.stmts[0], "i", "j", (0, 0)),
            "c[i][j] = b[i][j+2] - a[i][j-1] + b[i][j-1];"
        );
        // Figure 3(b): with shift (-1, 0), C's statement becomes
        // c[i-1][j] = b[i-1][j+2] - a[i-1][j-1] + b[i-1][j-1].
        assert_eq!(
            stmt_to_string(&p, &c_loop.stmts[0], "i", "j", (-1, 0)),
            "c[i-1][j] = b[i-1][j+2] - a[i-1][j-1] + b[i-1][j-1];"
        );
    }

    #[test]
    fn minimal_parentheses() {
        use crate::ast::{ArrayRef, Expr};
        let mut p = Program::new("t");
        let a = p.add_array("a");
        // (a - 1) * 2 needs parens; a - 1 * 2 must not add them.
        let needs = Expr::bin(
            BinOp::Mul,
            Expr::bin(
                BinOp::Sub,
                Expr::Ref(ArrayRef::new(a, 0, 0)),
                Expr::Const(1),
            ),
            Expr::Const(2),
        );
        assert_eq!(
            expr_to_string(&p, &needs, "i", "j", (0, 0)),
            "(a[i][j] - 1) * 2"
        );
        let flat = Expr::bin(
            BinOp::Sub,
            Expr::Ref(ArrayRef::new(a, 0, 0)),
            Expr::bin(BinOp::Mul, Expr::Const(1), Expr::Const(2)),
        );
        assert_eq!(
            expr_to_string(&p, &flat, "i", "j", (0, 0)),
            "a[i][j] - 1 * 2"
        );
        // Right-nested subtraction keeps parens: a - (1 - 2).
        let right_sub = Expr::bin(
            BinOp::Sub,
            Expr::Ref(ArrayRef::new(a, 0, 0)),
            Expr::bin(BinOp::Sub, Expr::Const(1), Expr::Const(2)),
        );
        assert_eq!(
            expr_to_string(&p, &right_sub, "i", "j", (0, 0)),
            "a[i][j] - (1 - 2)"
        );
    }

    #[test]
    fn fortran_listing_mentions_all_loops() {
        let p = figure2_program();
        let f = program_to_fortran(&p);
        for lbl in ["A:", "B:", "C:", "D:"] {
            assert!(f.contains(lbl), "{f}");
        }
        assert!(f.contains("DO 50 i = 0, n"));
    }
}
