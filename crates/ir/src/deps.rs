//! Dependence analysis: from a [`Program`] to loop dependence vectors
//! (Definition 2.1).
//!
//! With the single-writer program model, every array cell is written at
//! most once, so the binding dependences are:
//!
//! * **flow** — a read observes a write that executes earlier in the
//!   original order (earlier outer iteration, or same iteration with the
//!   producer loop textually first). The vector is
//!   `d = write_offset - read_offset`: a value produced at iteration
//!   `(i2, j2)` is consumed at `(i1, j1) = (i2, j2) + d`, matching the
//!   paper's `D_L` sets (verified against Figure 2 below);
//! * **anti** — a read observes the cell *before* its (textually later or
//!   future-iteration) write; the transformed program must keep the read
//!   first. The edge runs reader → writer with vector `-d`.
//!
//! A same-loop pair with `d = (0, k)`, `k != 0`, would make the innermost
//! loop non-DOALL, violating the paper's program model; analysis rejects
//! such programs.

use mdf_graph::vec2::IVec2;

use crate::ast::{ArrayId, Program, ProgramError};

/// The kind of a dependence record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// True (read-after-write) dependence.
    Flow,
    /// Anti (write-after-read) dependence.
    Anti,
}

/// One dependence between two innermost loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Flow or anti.
    pub kind: DepKind,
    /// Source loop index (producer for flow, reader for anti).
    pub src: usize,
    /// Destination loop index.
    pub dst: usize,
    /// The array involved.
    pub array: ArrayId,
    /// The loop dependence vector.
    pub vector: IVec2,
}

/// Why dependence analysis rejected the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// Structural validation failed first.
    Program(ProgramError),
    /// A single innermost loop carries a same-outer-iteration dependence
    /// across distinct `j` values: the loop is not DOALL, contradicting the
    /// program model.
    IntraLoopConflict {
        /// The non-DOALL loop.
        loop_index: usize,
        /// The array through which the conflict flows.
        array: ArrayId,
        /// The inner-dimension distance (non-zero).
        distance: i64,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Program(e) => write!(f, "invalid program: {e}"),
            AnalysisError::IntraLoopConflict {
                loop_index,
                array,
                distance,
            } => write!(
                f,
                "loop {loop_index} is not DOALL: same-iteration dependence of distance {distance} through array {array}"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ProgramError> for AnalysisError {
    fn from(e: ProgramError) -> Self {
        AnalysisError::Program(e)
    }
}

impl From<AnalysisError> for mdf_graph::MdfError {
    fn from(e: AnalysisError) -> Self {
        mdf_graph::MdfError::invalid(e.to_string())
    }
}

/// Runs dependence analysis. The program is validated first.
pub fn analyze_dependences(p: &Program) -> Result<Vec<Dependence>, AnalysisError> {
    p.validate()?;
    let mut out = Vec::new();
    let writes = p.all_writes();
    for (read_loop, read) in p.all_reads() {
        for &(write_loop, write) in &writes {
            if write.array != read.array {
                continue;
            }
            let d = IVec2::new(write.di - read.di, write.dj - read.dj);
            if write_loop == read_loop {
                if d == IVec2::ZERO {
                    // Same instance touches the same cell: ordered by the
                    // statement sequence within the body; no edge needed.
                    continue;
                }
                if d.x == 0 {
                    return Err(AnalysisError::IntraLoopConflict {
                        loop_index: read_loop,
                        array: read.array,
                        distance: d.y,
                    });
                }
            }
            if d.x > 0 || (d.x == 0 && write_loop < read_loop) {
                // The write executes before the read: a value flows.
                out.push(Dependence {
                    kind: DepKind::Flow,
                    src: write_loop,
                    dst: read_loop,
                    array: read.array,
                    vector: d,
                });
            } else {
                // The read executes before the write and must stay first.
                out.push(Dependence {
                    kind: DepKind::Anti,
                    src: read_loop,
                    dst: write_loop,
                    array: read.array,
                    vector: -d,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayRef, BinOp, Expr, Stmt};
    use mdf_graph::v2;

    #[test]
    fn figure2_dependence_sets_match_paper() {
        let p = crate::samples::figure2_program();
        let deps = analyze_dependences(&p).unwrap();
        // All Figure 2 dependences are flow dependences.
        assert!(deps.iter().all(|d| d.kind == DepKind::Flow));
        let between = |src: &str, dst: &str| -> Vec<IVec2> {
            let (s, d) = (p.loop_by_label(src).unwrap(), p.loop_by_label(dst).unwrap());
            let mut v: Vec<IVec2> = deps
                .iter()
                .filter(|dep| dep.src == s && dep.dst == d)
                .map(|dep| dep.vector)
                .collect();
            v.sort();
            v
        };
        assert_eq!(between("A", "B"), vec![v2(1, 1), v2(2, 1)]);
        assert_eq!(between("B", "C"), vec![v2(0, -2), v2(0, 1)]);
        assert_eq!(between("C", "D"), vec![v2(0, -1)]);
        assert_eq!(between("A", "C"), vec![v2(0, 1)]);
        assert_eq!(between("D", "A"), vec![v2(2, 1)]);
        assert_eq!(between("C", "C"), vec![v2(1, 0)]);
        assert_eq!(deps.len(), 8);
    }

    #[test]
    fn anti_dependence_from_future_write() {
        // Loop A reads b[i+1][j] (written by the later loop B at a future
        // outer iteration): reader -> writer anti edge with vector (1, 0).
        let mut p = Program::new("anti");
        let a = p.add_array("a");
        let b = p.add_array("b");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Ref(ArrayRef::new(b, 1, 0)),
            }],
        );
        p.add_loop(
            "B",
            vec![Stmt {
                lhs: ArrayRef::new(b, 0, 0),
                rhs: Expr::Const(7),
            }],
        );
        let deps = analyze_dependences(&p).unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Anti);
        assert_eq!((deps[0].src, deps[0].dst), (0, 1));
        assert_eq!(deps[0].vector, v2(1, 0));
    }

    #[test]
    fn anti_dependence_same_iteration_textually_earlier_reader() {
        // Loop A reads b[i][j-3]; B (later) writes b[i][j]: within one outer
        // iteration A reads before B writes. Anti edge A -> B, vector
        // -(0, 0-(-3)) = (0, -3).
        let mut p = Program::new("anti2");
        let a = p.add_array("a");
        let b = p.add_array("b");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Ref(ArrayRef::new(b, 0, -3)),
            }],
        );
        p.add_loop(
            "B",
            vec![Stmt {
                lhs: ArrayRef::new(b, 0, 0),
                rhs: Expr::Const(7),
            }],
        );
        let deps = analyze_dependences(&p).unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Anti);
        assert_eq!((deps[0].src, deps[0].dst), (0, 1));
        assert_eq!(deps[0].vector, v2(0, -3));
    }

    #[test]
    fn intra_loop_conflict_rejected() {
        // a[i][j] = a[i][j-1] + 1 inside one DOALL loop: not DOALL.
        let mut p = Program::new("bad");
        let a = p.add_array("a");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::bin(
                    BinOp::Add,
                    Expr::Ref(ArrayRef::new(a, 0, -1)),
                    Expr::Const(1),
                ),
            }],
        );
        assert_eq!(
            analyze_dependences(&p),
            Err(AnalysisError::IntraLoopConflict {
                loop_index: 0,
                array: a,
                distance: 1
            })
        );
    }

    #[test]
    fn same_cell_same_instance_is_no_edge() {
        // a[i][j] = a[i][j] * 2 : in-place update, ordered by the body.
        let mut p = Program::new("inplace");
        let a = p.add_array("a");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::bin(
                    BinOp::Mul,
                    Expr::Ref(ArrayRef::new(a, 0, 0)),
                    Expr::Const(2),
                ),
            }],
        );
        assert_eq!(analyze_dependences(&p), Ok(vec![]));
    }

    #[test]
    fn validation_errors_propagate() {
        let p = Program::new("empty");
        assert!(matches!(
            analyze_dependences(&p),
            Err(AnalysisError::Program(_))
        ));
    }
}
