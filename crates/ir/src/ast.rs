//! The loop-nest IR matching the paper's program model (Figure 1):
//! one sequential outer loop `DO i = 0, n` whose body is a sequence of
//! innermost `DOALL j = 0, m` loops, each a list of assignments over 2-D
//! arrays with constant-offset subscripts `X[i+a][j+b]`.
//!
//! Loop bounds `n` and `m` are runtime parameters (the transformations are
//! independent of them), so the IR stores only the structure.

use std::fmt;

/// Index of an array in [`Program::arrays`].
pub type ArrayId = usize;

/// An array access `arrays[array][i + di][j + dj]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// Which array.
    pub array: ArrayId,
    /// Constant offset added to the outer index `i`.
    pub di: i64,
    /// Constant offset added to the inner index `j`.
    pub dj: i64,
}

impl ArrayRef {
    /// Creates a reference.
    pub const fn new(array: ArrayId, di: i64, dj: i64) -> Self {
        ArrayRef { array, di, dj }
    }

    /// The offset as a pair (outer, inner).
    pub const fn offset(&self) -> (i64, i64) {
        (self.di, self.dj)
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

impl BinOp {
    /// Applies the operator with wrapping semantics (the interpreter works
    /// over `i64` and transformation correctness is index-based, so
    /// wraparound is harmless and keeps execution total).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
        }
    }

    /// Display token.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        }
    }
}

/// Right-hand-side expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Array read.
    Ref(ArrayRef),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor: `a op b`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Collects every array read in evaluation order.
    pub fn collect_refs(&self, out: &mut Vec<ArrayRef>) {
        match self {
            Expr::Const(_) => {}
            Expr::Ref(r) => out.push(*r),
            Expr::Neg(e) => e.collect_refs(out),
            Expr::Bin(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// All array reads of the expression.
    pub fn refs(&self) -> Vec<ArrayRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    /// Number of operator nodes (used by cost models).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Ref(_) => 0,
            Expr::Neg(e) => 1 + e.op_count(),
            Expr::Bin(_, a, b) => 1 + a.op_count() + b.op_count(),
        }
    }
}

/// One assignment `lhs = rhs;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stmt {
    /// The written array cell.
    pub lhs: ArrayRef,
    /// The computed value.
    pub rhs: Expr,
}

/// One innermost DOALL loop (one MLDG node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InnerLoop {
    /// Label (`"A"`, `"B"`, ...), also the MLDG node label.
    pub label: String,
    /// Loop body, executed in order for each `j`.
    pub stmts: Vec<Stmt>,
}

/// A whole program: `DO i { DOALL j {..} DOALL j {..} ... }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Array names; [`ArrayId`]s index into this.
    pub arrays: Vec<String>,
    /// The innermost loops in textual order.
    pub loops: Vec<InnerLoop>,
}

/// Validation failures for a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// An [`ArrayRef`] indexes past [`Program::arrays`].
    UnknownArray {
        /// The offending id.
        array: ArrayId,
    },
    /// Two loops share a label.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
    /// An array is written by more than one statement. The paper's program
    /// model (and the soundness of flow-only dependence extraction) relies
    /// on a single producer per array: every cell is then written at most
    /// once, so no output dependences exist and anti-dependences only arise
    /// from reads of *future* writes, which extraction models explicitly.
    MultipleWriters {
        /// The multiply-written array.
        array: ArrayId,
    },
    /// A program must contain at least one loop, and loops at least one
    /// statement.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownArray { array } => write!(f, "unknown array id {array}"),
            ProgramError::DuplicateLabel { label } => write!(f, "duplicate loop label {label:?}"),
            ProgramError::MultipleWriters { array } => {
                write!(f, "array {array} has more than one writing statement")
            }
            ProgramError::Empty => write!(f, "program has no loops (or a loop has no statements)"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            arrays: Vec::new(),
            loops: Vec::new(),
        }
    }

    /// Declares an array, returning its id.
    pub fn add_array(&mut self, name: impl Into<String>) -> ArrayId {
        self.arrays.push(name.into());
        self.arrays.len() - 1
    }

    /// Appends an innermost loop.
    pub fn add_loop(&mut self, label: impl Into<String>, stmts: Vec<Stmt>) -> usize {
        self.loops.push(InnerLoop {
            label: label.into(),
            stmts,
        });
        self.loops.len() - 1
    }

    /// Looks an array up by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a == name)
    }

    /// Looks a loop up by label.
    pub fn loop_by_label(&self, label: &str) -> Option<usize> {
        self.loops.iter().position(|l| l.label == label)
    }

    /// The unique writing statement of `array`, as `(loop index, stmt
    /// index)`, if any. Assumes the program validated (single writer).
    pub fn writer_of(&self, array: ArrayId) -> Option<(usize, usize)> {
        for (li, l) in self.loops.iter().enumerate() {
            for (si, s) in l.stmts.iter().enumerate() {
                if s.lhs.array == array {
                    return Some((li, si));
                }
            }
        }
        None
    }

    /// Every `(loop index, ArrayRef)` read in the program.
    pub fn all_reads(&self) -> Vec<(usize, ArrayRef)> {
        let mut out = Vec::new();
        for (li, l) in self.loops.iter().enumerate() {
            for s in &l.stmts {
                for r in s.rhs.refs() {
                    out.push((li, r));
                }
            }
        }
        out
    }

    /// Every `(loop index, ArrayRef)` written in the program.
    pub fn all_writes(&self) -> Vec<(usize, ArrayRef)> {
        let mut out = Vec::new();
        for (li, l) in self.loops.iter().enumerate() {
            for s in &l.stmts {
                out.push((li, s.lhs));
            }
        }
        out
    }

    /// Structural validation; see [`ProgramError`].
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.loops.is_empty() || self.loops.iter().any(|l| l.stmts.is_empty()) {
            return Err(ProgramError::Empty);
        }
        let mut labels = std::collections::HashSet::new();
        for l in &self.loops {
            if !labels.insert(l.label.as_str()) {
                return Err(ProgramError::DuplicateLabel {
                    label: l.label.clone(),
                });
            }
        }
        let mut writers = vec![0usize; self.arrays.len()];
        for l in &self.loops {
            for s in &l.stmts {
                if s.lhs.array >= self.arrays.len() {
                    return Err(ProgramError::UnknownArray { array: s.lhs.array });
                }
                writers[s.lhs.array] += 1;
                for r in s.rhs.refs() {
                    if r.array >= self.arrays.len() {
                        return Err(ProgramError::UnknownArray { array: r.array });
                    }
                }
            }
        }
        if let Some(a) = writers.iter().position(|&w| w > 1) {
            return Err(ProgramError::MultipleWriters { array: a });
        }
        Ok(())
    }

    /// The maximum absolute subscript offset across the program, used to
    /// size array halos in the interpreter.
    pub fn max_offset(&self) -> i64 {
        let mut m = 0;
        for l in &self.loops {
            for s in &l.stmts {
                m = m.max(s.lhs.di.abs()).max(s.lhs.dj.abs());
                for r in s.rhs.refs() {
                    m = m.max(r.di.abs()).max(r.dj.abs());
                }
            }
        }
        m
    }

    /// Total statement count.
    pub fn stmt_count(&self) -> usize {
        self.loops.iter().map(|l| l.stmts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        let mut p = Program::new("tiny");
        let a = p.add_array("a");
        let b = p.add_array("b");
        p.add_loop(
            "A",
            vec![Stmt {
                lhs: ArrayRef::new(a, 0, 0),
                rhs: Expr::Const(1),
            }],
        );
        p.add_loop(
            "B",
            vec![Stmt {
                lhs: ArrayRef::new(b, 0, 0),
                rhs: Expr::bin(
                    BinOp::Add,
                    Expr::Ref(ArrayRef::new(a, -1, 0)),
                    Expr::Const(2),
                ),
            }],
        );
        p
    }

    #[test]
    fn build_and_validate() {
        let p = tiny();
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.arrays.len(), 2);
        assert_eq!(p.stmt_count(), 2);
        assert_eq!(p.array_by_name("b"), Some(1));
        assert_eq!(p.loop_by_label("B"), Some(1));
        assert_eq!(p.writer_of(0), Some((0, 0)));
        assert_eq!(p.writer_of(1), Some((1, 0)));
        assert_eq!(p.max_offset(), 1);
    }

    #[test]
    fn expr_refs_in_order() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Ref(ArrayRef::new(0, 1, 2)),
            Expr::Neg(Box::new(Expr::Ref(ArrayRef::new(1, -3, 0)))),
        );
        assert_eq!(
            e.refs(),
            vec![ArrayRef::new(0, 1, 2), ArrayRef::new(1, -3, 0)]
        );
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), -1);
        assert_eq!(BinOp::Mul.apply(i64::MAX, 2), i64::MAX.wrapping_mul(2));
    }

    #[test]
    fn multiple_writers_rejected() {
        let mut p = tiny();
        let a = 0;
        p.loops[1].stmts.push(Stmt {
            lhs: ArrayRef::new(a, 0, 1),
            rhs: Expr::Const(0),
        });
        assert_eq!(
            p.validate(),
            Err(ProgramError::MultipleWriters { array: a })
        );
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut p = tiny();
        p.loops[1].label = "A".into();
        assert!(matches!(
            p.validate(),
            Err(ProgramError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn unknown_array_rejected() {
        let mut p = tiny();
        p.loops[0].stmts[0].rhs = Expr::Ref(ArrayRef::new(99, 0, 0));
        assert_eq!(p.validate(), Err(ProgramError::UnknownArray { array: 99 }));
    }

    #[test]
    fn empty_rejected() {
        let p = Program::new("empty");
        assert_eq!(p.validate(), Err(ProgramError::Empty));
        let mut p2 = Program::new("emptyloop");
        p2.add_loop("A", vec![]);
        assert_eq!(p2.validate(), Err(ProgramError::Empty));
    }
}
