//! Recursive-descent parser for the loop-nest DSL.
//!
//! Grammar (keywords are contextual identifiers):
//!
//! ```text
//! program  ::= "program" IDENT "{" "arrays" IDENT ("," IDENT)* ";" outer "}"
//! outer    ::= "do" IDENT "{" inner+ "}"
//! inner    ::= "doall" IDENT ":" IDENT "{" stmt+ "}"
//! stmt     ::= access "=" expr ";"
//! access   ::= IDENT "[" sub "]" "[" sub "]"
//! sub      ::= IDENT (("+" | "-") INT)?       // outer/inner index ± const
//! expr     ::= term (("+" | "-") term)*
//! term     ::= factor ("*" factor)*
//! factor   ::= INT | "-" factor | "(" expr ")" | access
//! ```
//!
//! The first subscript of every access must use the outer index name, the
//! second the inner index name.

use crate::ast::{ArrayRef, BinOp, Expr, Program, Stmt};
use crate::lexer::{lex, Spanned, Tok};
use mdf_graph::MdfError;

/// A 1-based source location (line, column) of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrcLoc {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl std::fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source locations of one statement: the written access plus every read,
/// in evaluation (= parse) order, matching [`Expr::refs`](crate::ast::Expr::refs).
#[derive(Clone, Debug)]
pub struct StmtSpans {
    /// Location of the written (left-hand side) array reference.
    pub lhs: SrcLoc,
    /// Locations of the read references, in `rhs.refs()` order.
    pub reads: Vec<SrcLoc>,
}

/// Source locations of one inner loop: its label and its statements.
#[derive(Clone, Debug)]
pub struct LoopSpans {
    /// Location of the loop label identifier.
    pub label: SrcLoc,
    /// One entry per statement, in order.
    pub stmts: Vec<StmtSpans>,
}

/// A side table mapping AST positions back to source locations.
///
/// The AST itself is span-free (it is structurally compared in round-trip
/// tests), so the parser records locations out of band, indexed exactly
/// like [`Program::arrays`] and [`Program::loops`].
#[derive(Clone, Debug, Default)]
pub struct SpanTable {
    /// Declaration site of each array, indexed by `ArrayId`.
    pub arrays: Vec<SrcLoc>,
    /// Per-loop label and statement locations.
    pub loops: Vec<LoopSpans>,
}

/// A subscript that does not fit the uniform `index ± const` model,
/// recorded (rather than rejected) by the lenient parse mode.
#[derive(Clone, Debug)]
pub struct SubscriptIssue {
    /// Location of the offending subscript token.
    pub loc: SrcLoc,
    /// The index variable the grammar position requires.
    pub expected: String,
    /// What was found instead (a different identifier, or a constant).
    pub found: String,
}

/// A parsed program together with its span table and any subscript issues
/// tolerated by the lenient mode (always empty for strict parses).
#[derive(Clone, Debug)]
pub struct ParsedProgram {
    /// The program AST.
    pub program: Program,
    /// Source locations for arrays, loop labels, and array references.
    pub spans: SpanTable,
    /// Non-uniform subscripts observed in lenient mode.
    pub subscript_issues: Vec<SubscriptIssue>,
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    outer_index: String,
    lenient: bool,
    spans: SpanTable,
    issues: Vec<SubscriptIssue>,
    /// Locations of array references, pushed by `parse_access` in parse
    /// order; `parse_stmt` drains its window into a `StmtSpans`.
    ref_locs: Vec<SrcLoc>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        // At end of input, point just past the last token (or 1:1 for an
        // empty stream) so locations stay 1-based everywhere.
        self.toks.get(self.pos).map_or_else(
            || self.toks.last().map_or((1, 1), |s| (s.line, s.col + 1)),
            |s| (s.line, s.col),
        )
    }

    fn err(&self, message: impl Into<String>) -> MdfError {
        let (line, col) = self.here();
        MdfError::parse(line, col, message)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), MdfError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, MdfError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected {what}, found {t}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), MdfError> {
        let got = self.expect_ident(&format!("keyword '{kw}'"))?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}', found '{got}'")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn parse_program(&mut self) -> Result<Program, MdfError> {
        self.expect_keyword("program")?;
        let name = self.expect_ident("program name")?;
        let mut program = Program::new(name);
        self.expect(&Tok::LBrace)?;
        self.expect_keyword("arrays")?;
        loop {
            let loc = self.loc_here();
            let a = self.expect_ident("array name")?;
            if program.array_by_name(&a).is_some() {
                return Err(self.err(format!("array '{a}' declared twice")));
            }
            program.add_array(a);
            self.spans.arrays.push(loc);
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                Some(Tok::Semi) => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ';' in array list")),
            }
        }
        self.expect_keyword("do")?;
        self.outer_index = self.expect_ident("outer index name")?;
        self.expect(&Tok::LBrace)?;
        while self.at_keyword("doall") {
            self.parse_inner_loop(&mut program)?;
        }
        self.expect(&Tok::RBrace)?; // closes do
        self.expect(&Tok::RBrace)?; // closes program
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after program"));
        }
        if program.loops.is_empty() {
            return Err(self.err("program needs at least one doall loop"));
        }
        Ok(program)
    }

    fn loc_here(&self) -> SrcLoc {
        let (line, col) = self.here();
        SrcLoc { line, col }
    }

    fn parse_inner_loop(&mut self, program: &mut Program) -> Result<(), MdfError> {
        self.expect_keyword("doall")?;
        let label_loc = self.loc_here();
        let label = self.expect_ident("loop label")?;
        if program.loop_by_label(&label).is_some() {
            return Err(self.err(format!("loop label '{label}' used twice")));
        }
        self.expect(&Tok::Colon)?;
        let inner_index = self.expect_ident("inner index name")?;
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        let mut stmt_spans = Vec::new();
        while !matches!(self.peek(), Some(Tok::RBrace)) {
            let (stmt, spans) = self.parse_stmt(program, &inner_index)?;
            stmts.push(stmt);
            stmt_spans.push(spans);
        }
        self.expect(&Tok::RBrace)?;
        if stmts.is_empty() {
            return Err(self.err(format!("loop '{label}' has no statements")));
        }
        program.add_loop(label, stmts);
        self.spans.loops.push(LoopSpans {
            label: label_loc,
            stmts: stmt_spans,
        });
        Ok(())
    }

    fn parse_stmt(
        &mut self,
        program: &Program,
        inner: &str,
    ) -> Result<(Stmt, StmtSpans), MdfError> {
        let mark = self.ref_locs.len();
        let lhs = self.parse_access(program, inner)?;
        self.expect(&Tok::Eq)?;
        let rhs = self.parse_expr(program, inner)?;
        self.expect(&Tok::Semi)?;
        let lhs_loc = self.ref_locs[mark];
        let reads = self.ref_locs[mark + 1..].to_vec();
        self.ref_locs.truncate(mark);
        Ok((
            Stmt { lhs, rhs },
            StmtSpans {
                lhs: lhs_loc,
                reads,
            },
        ))
    }

    fn parse_access(&mut self, program: &Program, inner: &str) -> Result<ArrayRef, MdfError> {
        let loc = self.loc_here();
        let name = self.expect_ident("array name")?;
        let array = program
            .array_by_name(&name)
            .ok_or_else(|| self.err(format!("undeclared array '{name}'")))?;
        self.ref_locs.push(loc);
        let outer = self.outer_index.clone();
        let di = self.parse_subscript(&outer)?;
        let dj = self.parse_subscript(inner)?;
        Ok(ArrayRef::new(array, di, dj))
    }

    fn parse_subscript(&mut self, index_name: &str) -> Result<i64, MdfError> {
        self.expect(&Tok::LBracket)?;
        let loc = self.loc_here();
        if self.lenient {
            // Constant subscript, e.g. `x[0][j]`: outside the uniform model.
            // Record the issue and read the constant as the offset so the
            // rest of the program still parses.
            if let Some(Tok::Int(v)) = self.peek() {
                let v = *v;
                self.pos += 1;
                self.issues.push(SubscriptIssue {
                    loc,
                    expected: index_name.to_string(),
                    found: v.to_string(),
                });
                self.expect(&Tok::RBracket)?;
                return Ok(v);
            }
            // Negative constant subscript, e.g. `x[-1][j]`: same issue
            // class, with the sign folded into the recorded constant.
            if let (Some(Tok::Minus), Some(Tok::Int(v))) =
                (self.peek(), self.toks.get(self.pos + 1).map(|s| &s.tok))
            {
                let v = -*v;
                self.pos += 2;
                self.issues.push(SubscriptIssue {
                    loc,
                    expected: index_name.to_string(),
                    found: v.to_string(),
                });
                self.expect(&Tok::RBracket)?;
                return Ok(v);
            }
        }
        let got = self.expect_ident("index variable")?;
        if got != index_name {
            if self.lenient {
                self.issues.push(SubscriptIssue {
                    loc,
                    expected: index_name.to_string(),
                    found: got,
                });
            } else {
                return Err(self.err(format!(
                    "subscript must use index '{index_name}', found '{got}'"
                )));
            }
        }
        let offset = match self.peek() {
            Some(Tok::Plus) => {
                self.pos += 1;
                self.expect_int()?
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                -self.expect_int()?
            }
            _ => 0,
        };
        self.expect(&Tok::RBracket)?;
        Ok(offset)
    }

    fn expect_int(&mut self) -> Result<i64, MdfError> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            Some(t) => Err(self.err(format!("expected integer, found {t}"))),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    fn parse_expr(&mut self, program: &Program, inner: &str) -> Result<Expr, MdfError> {
        let mut lhs = self.parse_term(program, inner)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term(program, inner)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self, program: &Program, inner: &str) -> Result<Expr, MdfError> {
        let mut lhs = self.parse_factor(program, inner)?;
        while matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            let rhs = self.parse_factor(program, inner)?;
            lhs = Expr::bin(BinOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self, program: &Program, inner: &str) -> Result<Expr, MdfError> {
        match self.peek() {
            Some(Tok::Int(_)) => Ok(Expr::Const(self.expect_int()?)),
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.parse_factor(program, inner)?)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.parse_expr(program, inner)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(_)) => Ok(Expr::Ref(self.parse_access(program, inner)?)),
            Some(t) => Err(self.err(format!("expected expression, found {t}"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }
}

/// Parses a DSL source string into a validated [`Program`].
///
/// ```
/// let program = mdf_ir::parse_program(r#"
///     program blur {
///         arrays img, out;
///         do i {
///             doall A: j { out[i][j] = img[i][j-1] + img[i][j+1]; }
///         }
///     }
/// "#).unwrap();
/// assert_eq!(program.loops.len(), 1);
/// assert_eq!(program.arrays, vec!["img".to_string(), "out".to_string()]);
/// ```
pub fn parse_program(src: &str) -> Result<Program, MdfError> {
    Ok(parse_program_spanned(src)?.program)
}

/// As [`parse_program`], but also returns the [`SpanTable`] mapping arrays,
/// loop labels, and array references back to source locations.
pub fn parse_program_spanned(src: &str) -> Result<ParsedProgram, MdfError> {
    let parsed = parse_with_mode(src, false)?;
    parsed
        .program
        .validate()
        .map_err(|e| MdfError::invalid(format!("invalid program: {e}")))?;
    Ok(parsed)
}

/// Lenient parse for diagnostics: non-uniform subscripts (a wrong index
/// variable, or a bare constant) are recorded as [`SubscriptIssue`]s
/// instead of rejected, and [`Program::validate`] is *not* run — lint
/// passes map validation failures to diagnostics themselves. Structural
/// errors (bad syntax, undeclared arrays, duplicate labels) still fail.
pub fn parse_program_lenient(src: &str) -> Result<ParsedProgram, MdfError> {
    parse_with_mode(src, true)
}

fn parse_with_mode(src: &str, lenient: bool) -> Result<ParsedProgram, MdfError> {
    let toks = lex(src)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        outer_index: String::new(),
        lenient,
        spans: SpanTable::default(),
        issues: Vec::new(),
        ref_locs: Vec::new(),
    };
    let program = parser.parse_program()?;
    Ok(ParsedProgram {
        program,
        spans: parser.spans,
        subscript_issues: parser.issues,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Message of a `Parse` or `Invalid` rejection of `src`.
    fn reject(src: &str) -> String {
        match parse_program(src).unwrap_err() {
            MdfError::Parse { message, .. } | MdfError::Invalid { message } => message,
            other => panic!("unexpected error kind: {other}"),
        }
    }

    const FIG2: &str = r#"
        program figure2 {
            arrays a, b, c, d, e;
            do i {
                doall A: j { a[i][j] = e[i-2][j-1]; }
                doall B: j { b[i][j] = a[i-1][j-1] + a[i-2][j-1]; }
                doall C: j {
                    c[i][j] = b[i][j+2] - a[i][j-1] + b[i][j-1];
                    d[i][j] = c[i-1][j];
                }
                doall D: j { e[i][j] = c[i][j+1]; }
            }
        }
    "#;

    #[test]
    fn parses_figure2_identically_to_builder() {
        let parsed = parse_program(FIG2).unwrap();
        let built = crate::samples::figure2_program();
        assert_eq!(parsed, built);
    }

    #[test]
    fn expression_precedence() {
        let src = r#"
            program p { arrays a, b; do i {
                doall A: j { a[i][j] = 2 + b[i][j] * 3 - (1 + 1); }
                doall B: j { b[i][j] = -a[i-1][j] * -2; }
            } }
        "#;
        let p = parse_program(src).unwrap();
        use crate::ast::{BinOp::*, Expr::*};
        // 2 + b*3 - (1+1) parses as (2 + (b*3)) - (1+1).
        match &p.loops[0].stmts[0].rhs {
            Bin(Sub, l, r) => {
                assert!(matches!(l.as_ref(), Bin(Add, _, _)));
                assert!(matches!(r.as_ref(), Bin(Add, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
        // -a * -2 parses as (-a) * (-2).
        match &p.loops[1].stmts[0].rhs {
            Bin(Mul, l, r) => {
                assert!(matches!(l.as_ref(), Neg(_)));
                assert!(matches!(r.as_ref(), Neg(_)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn undeclared_array_rejected() {
        let msg = reject("program p { arrays a; do i { doall A: j { z[i][j] = 1; } } }");
        assert!(msg.contains("undeclared array 'z'"));
    }

    #[test]
    fn wrong_index_variable_rejected() {
        let msg = reject("program p { arrays a; do i { doall A: j { a[j][i] = 1; } } }");
        assert!(msg.contains("must use index 'i'"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let msg = reject(
            "program p { arrays a, b; do i { doall A: j { a[i][j] = 1; } doall A: j { b[i][j] = 2; } } }",
        );
        assert!(msg.contains("used twice"));
    }

    #[test]
    fn trailing_input_rejected() {
        let msg = reject("program p { arrays a; do i { doall A: j { a[i][j] = 1; } } } extra");
        assert!(msg.contains("trailing"));
    }

    #[test]
    fn multiple_writers_rejected_via_validation() {
        let msg = reject(
            "program p { arrays a; do i { doall A: j { a[i][j] = 1; } doall B: j { a[i][j+1] = 2; } } }",
        );
        assert!(msg.contains("more than one writing statement"));
    }

    #[test]
    fn error_positions_point_at_problem() {
        let err = parse_program(
            "program p {\n  arrays a;\n  do i {\n    doall A: j { a[i][j] == 1; }\n  }\n}",
        )
        .unwrap_err();
        match err {
            MdfError::Parse { line, col, .. } => {
                assert_eq!(line, 4);
                assert!(col > 1);
            }
            other => panic!("expected a parse error, got {other}"),
        }
    }
}
