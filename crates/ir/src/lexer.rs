//! Hand-written lexer for the loop-nest DSL (see [`crate::parser`] for the
//! grammar).

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (unsigned; the parser handles unary minus).
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Eq => write!(f, "="),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
        }
    }
}

/// A token with its 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line (1-based).
    pub line: usize,
    /// Column (1-based).
    pub col: usize,
}

/// A lexing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Line of the bad character.
    pub line: usize,
    /// Column of the bad character.
    pub col: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

impl From<LexError> for mdf_graph::MdfError {
    fn from(e: LexError) -> Self {
        mdf_graph::MdfError::parse(e.line, e.col, e.message)
    }
}

/// Tokenizes `src`. `//` comments run to end of line; whitespace is
/// insignificant.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(LexError {
                        line: tline,
                        col: tcol,
                        message: "'/' is only valid in '//' comments".into(),
                    });
                }
            }
            '{' | '}' | '[' | ']' | '(' | ')' | '+' | '-' | '*' | '=' | ';' | ',' | ':' => {
                bump!();
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '=' => Tok::Eq,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    _ => Tok::Colon,
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            '0'..='9' => {
                let mut value: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(digit as i64))
                            .ok_or(LexError {
                                line: tline,
                                col: tcol,
                                message: "integer literal overflows i64".into(),
                            })?;
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Int(value),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        ident.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(ident),
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(LexError {
                    line: tline,
                    col: tcol,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement() {
        let toks = lex("a[i-2][j+1] = b[i][j] * 3;").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("a".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::Minus,
                Tok::Int(2),
                Tok::RBracket,
                Tok::LBracket,
                Tok::Ident("j".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::RBracket,
                Tok::Eq,
                Tok::Ident("b".into()),
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::LBracket,
                Tok::Ident("j".into()),
                Tok::RBracket,
                Tok::Star,
                Tok::Int(3),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn positions_and_comments() {
        let toks = lex("ab // comment\n  cd").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_character_reported_with_position() {
        let err = lex("a = @;").unwrap_err();
        assert_eq!((err.line, err.col), (1, 5));
    }

    #[test]
    fn lone_slash_rejected() {
        assert!(lex("a / b").is_err());
    }

    #[test]
    fn overflow_rejected() {
        assert!(lex("99999999999999999999").is_err());
    }
}
