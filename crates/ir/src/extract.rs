//! Building the MLDG of a program (Definition 2.2) from its dependence
//! records: one node per innermost loop, one edge per dependent loop pair,
//! with the full dependence-vector set `D_L` on each edge.

use mdf_graph::mldg::{Mldg, NodeId};
use mdf_graph::MdfError;

use crate::ast::Program;
use crate::deps::{analyze_dependences, DepKind, Dependence};

/// A program's MLDG together with the dependence records it was built from.
/// `NodeId(k)` is loop `k` in textual order.
#[derive(Clone, Debug)]
pub struct ExtractedMldg {
    /// The loop dependence graph.
    pub graph: Mldg,
    /// The underlying dependence records (flow and anti).
    pub deps: Vec<Dependence>,
}

impl ExtractedMldg {
    /// The node of a loop index.
    pub fn node_of(&self, loop_index: usize) -> NodeId {
        NodeId(loop_index as u32)
    }

    /// Count of anti-dependence records (zero for programs that fit the
    /// paper's model exactly).
    pub fn anti_count(&self) -> usize {
        self.deps.iter().filter(|d| d.kind == DepKind::Anti).count()
    }
}

/// Analyzes `p` and builds its MLDG.
pub fn extract_mldg(p: &Program) -> Result<ExtractedMldg, MdfError> {
    let deps = analyze_dependences(p)?;
    let mut graph = Mldg::new();
    for l in &p.loops {
        graph.add_node(l.label.clone());
    }
    for d in &deps {
        graph.add_dep(NodeId(d.src as u32), NodeId(d.dst as u32), d.vector);
    }
    Ok(ExtractedMldg { graph, deps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdf_graph::v2;

    #[test]
    fn figure2_program_extracts_figure2_graph() {
        let p = crate::samples::figure2_program();
        let x = extract_mldg(&p).unwrap();
        let reference = mdf_graph::paper::figure2();
        assert_eq!(x.graph.node_count(), reference.node_count());
        assert_eq!(x.graph.edge_count(), reference.edge_count());
        assert_eq!(x.anti_count(), 0);
        for e in reference.edge_ids() {
            let ed = reference.edge(e);
            let mine = x
                .graph
                .edge_between(ed.src, ed.dst)
                .expect("edge missing from extraction");
            assert_eq!(
                x.graph.deps(mine).as_slice(),
                reference.deps(e).as_slice(),
                "edge {} -> {}",
                reference.label(ed.src),
                reference.label(ed.dst)
            );
        }
    }

    #[test]
    fn extraction_preserves_hard_edges() {
        let p = crate::samples::figure2_program();
        let x = extract_mldg(&p).unwrap();
        let b = x.graph.node_by_label("B").unwrap();
        let c = x.graph.node_by_label("C").unwrap();
        assert!(x.graph.is_hard(x.graph.edge_between(b, c).unwrap()));
    }

    #[test]
    fn image_pipeline_extracts_expected_shape() {
        let p = crate::samples::image_pipeline_program();
        let x = extract_mldg(&p).unwrap();
        assert_eq!(x.graph.node_count(), 4);
        let a = x.graph.node_by_label("A").unwrap();
        let b = x.graph.node_by_label("B").unwrap();
        let c = x.graph.node_by_label("C").unwrap();
        let d = x.graph.node_by_label("D").unwrap();
        // A -> B is hard: blur read at j+1 and j-1.
        let ab = x.graph.edge_between(a, b).unwrap();
        assert!(x.graph.is_hard(ab));
        assert_eq!(x.graph.deps(ab).as_slice(), &[v2(0, -1), v2(0, 1)]);
        // B -> C is fusion-preventing: (0,-2).
        assert_eq!(
            x.graph.delta(x.graph.edge_between(b, c).unwrap()),
            v2(0, -2)
        );
        // D has an outer-carried self-dependence (1,0).
        assert_eq!(x.graph.delta(x.graph.edge_between(d, d).unwrap()), v2(1, 0));
    }

    #[test]
    fn relaxation_extracts_two_hard_edges_cycle() {
        let p = crate::samples::relaxation_program();
        let x = extract_mldg(&p).unwrap();
        let a = x.graph.node_by_label("A").unwrap();
        let b = x.graph.node_by_label("B").unwrap();
        let ab = x.graph.edge_between(a, b).unwrap();
        let ba = x.graph.edge_between(b, a).unwrap();
        assert!(x.graph.is_hard(ab));
        assert!(x.graph.is_hard(ba));
        assert_eq!(x.graph.deps(ab).as_slice(), &[v2(0, -1), v2(0, 1)]);
        assert_eq!(x.graph.deps(ba).as_slice(), &[v2(1, -1), v2(1, 1)]);
    }
}
