#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # `mdf-ir` — the loop-nest IR substrate
//!
//! The paper's program model (Figure 1) as a small compiler stack:
//!
//! * [`ast`] — one outer `DO` loop over a sequence of innermost `DOALL`
//!   loops, statements over 2-D arrays with constant-offset subscripts;
//! * [`lexer`] / [`parser`] — a hand-written DSL front end;
//! * [`deps`] — dependence analysis producing loop dependence vectors
//!   (Definition 2.1), including anti-dependences for programs outside the
//!   strict paper model;
//! * [`extract`] — building the MLDG of a program;
//! * [`retgen`] — retimed + fused code generation (guarded semantics plus
//!   Figure-12-style prologue/kernel/epilogue rendering);
//! * [`pretty`] — DSL and Fortran-style printers;
//! * [`samples`] — Figure 2(b) and the suite kernels E4/E5;
//! * [`transform`] — loop distribution (maximal fission before fusion);
//! * [`emit`] — Rust code generation for the fused loop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod deps;
pub mod emit;
pub mod extract;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod retgen;
pub mod samples;
pub mod transform;

pub use ast::{ArrayId, ArrayRef, BinOp, Expr, InnerLoop, Program, ProgramError, Stmt};
pub use deps::{analyze_dependences, AnalysisError, DepKind, Dependence};
pub use emit::emit_rust_fn;
pub use extract::{extract_mldg, ExtractedMldg};
pub use mdf_graph::MdfError;
pub use parser::{
    parse_program, parse_program_lenient, parse_program_spanned, LoopSpans, ParsedProgram,
    SpanTable, SrcLoc, StmtSpans, SubscriptIssue,
};
pub use retgen::{FusedSpec, IRange};
pub use transform::{distribute, is_fully_distributed};
