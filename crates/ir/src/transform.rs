//! Source-level loop transformations that complement fusion.
//!
//! **Distribution** (loop fission) splits every multi-statement DOALL loop
//! into consecutive single-statement DOALL loops. Under this crate's
//! validated program model it is always semantics-preserving: the only
//! orderings distribution changes are between different statements at
//! different `j` within one loop, and dependence analysis rejects programs
//! where such pairs interact (that would make the loop non-DOALL).
//!
//! Distribution matters before fusion: it gives the retiming algorithms
//! one node per statement, so statements that shared a loop can be
//! retimed independently — strictly more freedom, at zero cost, since the
//! fusion pass merges everything back into one loop anyway. (Kennedy &
//! McKinley's classic pipeline — distribute maximally, then fuse — is the
//! same idea; the paper's contribution is what happens in the fuse step.)

use crate::ast::{InnerLoop, Program};

/// Splits every loop with more than one statement into consecutive
/// single-statement loops. Labels gain a `.k` suffix (`C` -> `C.1`,
/// `C.2`); single-statement loops keep their label and identity.
pub fn distribute(p: &Program) -> Program {
    let mut out = Program::new(p.name.clone());
    out.arrays = p.arrays.clone();
    for l in &p.loops {
        if l.stmts.len() == 1 {
            out.loops.push(l.clone());
        } else {
            for (k, s) in l.stmts.iter().enumerate() {
                out.loops.push(InnerLoop {
                    label: format!("{}.{}", l.label, k + 1),
                    stmts: vec![s.clone()],
                });
            }
        }
    }
    out
}

/// `true` when every loop holds exactly one statement (the fixed point of
/// [`distribute`]).
pub fn is_fully_distributed(p: &Program) -> bool {
    p.loops.iter().all(|l| l.stmts.len() == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_mldg;
    use crate::samples::figure2_program;

    #[test]
    fn distribution_splits_figure2s_c_loop() {
        let p = figure2_program();
        let d = distribute(&p);
        assert!(is_fully_distributed(&d));
        assert_eq!(d.loops.len(), 5); // A, B, C.1, C.2, D
        assert_eq!(d.validate(), Ok(()));
        let labels: Vec<&str> = d.loops.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, vec!["A", "B", "C.1", "C.2", "D"]);
    }

    #[test]
    fn distribution_is_idempotent() {
        let p = figure2_program();
        let once = distribute(&p);
        let twice = distribute(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn distributed_program_still_extracts_a_legal_mldg() {
        let p = distribute(&figure2_program());
        let x = extract_mldg(&p).unwrap();
        assert_eq!(x.graph.node_count(), 5);
        // The C.1 -> C.2 flow (d writes read c at (1,0)... in the original
        // this was the C -> C self-dependence (1,0); distributed it is an
        // ordinary edge.
        let c1 = x.graph.node_by_label("C.1").unwrap();
        let c2 = x.graph.node_by_label("C.2").unwrap();
        let e = x.graph.edge_between(c1, c2).unwrap();
        assert_eq!(x.graph.delta(e), mdf_graph::v2(1, 0));
    }
}
